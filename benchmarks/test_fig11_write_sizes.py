"""Figure 11 — performance with varying write sizes (§6.2.2).

Paper claims reproduced here (one thread, 4–64 KB ordered writes):

* asynchronous execution matters at every size: Rio beats Linux by up to
  two orders of magnitude and HORAE by a wide margin;
* even at 64 KB, HORAE reaches only about half of Rio's throughput (the
  synchronous control path costs a fixed per-request latency and CPU).
"""

from benchmarks.conftest import run_once
from repro.harness.figures import fig11_write_sizes

SIZES = (1, 2, 4, 8, 16)  # blocks: 4 KB .. 64 KB


def mbps(result, system, kb, pattern="seq"):
    return result.column("mb_per_sec", system=system, kb=kb,
                         pattern=pattern)[0]


def test_fig11_write_sizes_optane(benchmark, show):
    result = run_once(benchmark, fig11_write_sizes,
                      sizes_blocks=SIZES, ssd="optane", duration=4e-3)
    show(result)
    for pattern in ("seq", "rand"):
        for size in SIZES:
            kb = size * 4
            rio = mbps(result, "rio", kb, pattern)
            linux = mbps(result, "linux", kb, pattern)
            horae = mbps(result, "horae", kb, pattern)
            orderless = mbps(result, "orderless", kb, pattern)
            assert rio > 2 * linux, (pattern, kb)
            assert rio > 0.95 * horae, (pattern, kb)
            assert rio > 0.8 * orderless, (pattern, kb)
    # The gap over HORAE is largest at small writes (paper: up to 6.1x)
    # and narrows with size.  Known deviation (see EXPERIMENTS.md): at
    # >=32 KB our HORAE saturates the SSD, while the paper's stayed
    # CPU-bound at ~half of Rio.
    small_gap = mbps(result, "rio", 4) / mbps(result, "horae", 4)
    large_gap = mbps(result, "rio", 64) / mbps(result, "horae", 64)
    assert small_gap > large_gap
    assert small_gap > 3.0
    benchmark.extra_info["rio_over_horae_4k"] = small_gap
    benchmark.extra_info["rio_over_horae_64k"] = large_gap


def test_fig11_write_sizes_flash(benchmark, show):
    result = run_once(benchmark, fig11_write_sizes,
                      sizes_blocks=(1, 4, 16), ssd="flash", duration=4e-3)
    show(result)
    for size in (1, 4, 16):
        kb = size * 4
        assert mbps(result, "rio", kb) > 20 * mbps(result, "linux", kb)
