"""Ablations of Rio's design choices (DESIGN.md §4) and extension studies.

These go beyond the paper's figures: each isolates one design decision the
paper motivates and shows it earns its keep, or validates a forward-looking
claim (§3.1's faster-SSD prediction, §4.5's TCP portability, §4.9's
multi-initiator extension).
"""

from benchmarks.conftest import run_once
from repro.harness.extensions import (
    ablation_attribute_persistence,
    ablation_qp_affinity,
    barrier_comparison,
    multi_initiator_scaling,
    oltp_comparison,
    sensitivity_faster_ssd,
    transport_comparison,
)


def test_qp_affinity_ablation(benchmark, show):
    result = run_once(benchmark, ablation_qp_affinity, duration=3e-3)
    show(result)
    on = result.series(affinity=True)[0]
    off = result.series(affinity=False)[0]
    # Affinity inherits RC in-order delivery: fewer out-of-order arrivals
    # at the target's in-order submission gate (§4.3.1/§4.5).  The counts
    # are small either way (the gate makes stalls cheap); the claim is the
    # direction and the near-zero absolute level with affinity.
    assert on["ooo_arrivals"] < off["ooo_arrivals"]
    assert on["ooo_arrivals"] <= 5
    # Throughput unharmed by keeping affinity.
    assert on["kiops"] >= 0.95 * off["kiops"]
    benchmark.extra_info["ooo_with_affinity"] = on["ooo_arrivals"]
    benchmark.extra_info["ooo_without_affinity"] = off["ooo_arrivals"]


def test_attribute_persistence_overhead(benchmark, show):
    result = run_once(benchmark, ablation_attribute_persistence,
                      duration=3e-3)
    show(result)
    rio = result.series(system="rio")[0]
    orderless = result.series(system="orderless")[0]
    # §4.3.2: "storing ordering attributes does not introduce much
    # overhead" — same throughput, bounded extra target CPU.
    assert rio["kiops"] > 0.95 * orderless["kiops"]
    assert rio["tgt_cpu_per_100kiops"] < 2.0 * orderless["tgt_cpu_per_100kiops"]
    assert rio["pmr_writes"] > 0
    assert orderless["pmr_writes"] == 0


def test_faster_ssd_sensitivity(benchmark, show):
    result = run_once(benchmark, sensitivity_faster_ssd, duration=3e-3)
    show(result)

    def ratio(layout, system):
        return result.column("rio_ratio", ssd=layout, system=system)[0]

    # §3.1: the synchronous systems fall further behind on faster drives.
    assert ratio("p5800x", "linux") > ratio("optane", "linux")
    assert ratio("p5800x", "horae") > ratio("optane", "horae")
    benchmark.extra_info["rio_over_linux_905p"] = ratio("optane", "linux")
    benchmark.extra_info["rio_over_linux_p5800x"] = ratio("p5800x", "linux")


def test_tcp_transport_comparison(benchmark, show):
    result = run_once(benchmark, transport_comparison, duration=3e-3)
    show(result)
    for transport in ("rdma", "tcp"):
        rio = result.column("kiops", transport=transport, system="rio")[0]
        linux = result.column("kiops", transport=transport, system="linux")[0]
        # Rio's asynchronous ordering wins on both transports (§4.5:
        # "this principle can be applied to TCP networks").
        assert rio > 3 * linux, transport
    # TCP costs more CPU per op than RDMA for the same system.
    rio_tcp = result.series(transport="tcp", system="rio")[0]
    rio_rdma = result.series(transport="rdma", system="rio")[0]
    cpu_per_op_tcp = rio_tcp["initiator_cpu"] / max(rio_tcp["kiops"], 1e-9)
    cpu_per_op_rdma = rio_rdma["initiator_cpu"] / max(rio_rdma["kiops"], 1e-9)
    assert cpu_per_op_tcp > cpu_per_op_rdma


def test_barrier_interface_comparison(benchmark, show):
    """§2.2: strict intermediate order (BarrierFS-style) caps throughput;
    Rio relaxes it and scales to device saturation."""
    result = run_once(benchmark, barrier_comparison, duration=3e-3)
    show(result)
    barrier_1 = result.column("kiops", system="barrier", threads=1)[0]
    barrier_12 = result.column("kiops", system="barrier", threads=12)[0]
    rio_12 = result.column("kiops", system="rio", threads=12)[0]
    linux_1 = result.column("kiops", system="linux", threads=1)[0]
    # Barrier ordering beats synchronous Linux at one thread (no FLUSH,
    # no completion wait)...
    assert barrier_1 > 2 * linux_1
    # ...but cannot scale: the serialized in-order persistence flatlines.
    assert barrier_12 < 1.3 * barrier_1
    # Rio's relaxed intermediate order wins by a wide margin at scale.
    assert rio_12 > 3 * barrier_12
    benchmark.extra_info["barrier_12t_kiops"] = barrier_12
    benchmark.extra_info["rio_12t_kiops"] = rio_12


def test_oltp_comparison(benchmark, show):
    """MySQL-style OLTP (§3.1's motivating application class): redo group
    commit + IPU page cleaning favours the asynchronous ordering stack."""
    result = run_once(benchmark, oltp_comparison, threads=(1, 4),
                      duration=4e-3)
    show(result)
    for count in (1, 4):
        riofs = result.column("ktps", fs="riofs", threads=count)[0]
        ext4 = result.column("ktps", fs="ext4", threads=count)[0]
        assert riofs > ext4, count
    # The page cleaner (IPU path) actually ran.
    assert any(row["cleaner_runs"] > 0 for row in result.rows)


def test_multi_initiator_scaling(benchmark, show):
    result = run_once(benchmark, multi_initiator_scaling,
                      initiator_counts=(1, 2), duration=3e-3)
    show(result)
    one = result.series(initiators=1)[0]
    two = result.series(initiators=2)[0]
    # Two initiators drive the shared array at least as hard as one, and
    # ordering state never couples them (§4.9).
    assert two["total_kiops"] >= one["total_kiops"]
    benchmark.extra_info["total_kiops_2init"] = two["total_kiops"]
