"""Figure 3 — merging consecutive data blocks cuts CPU overhead (§3.2).

Paper claims reproduced here: with throughput held at device saturation,
increasing the mergeable batch size substantially reduces CPU cycles on
both the initiator and the target (fewer NVMe-oF commands → fewer two-sided
RDMA SENDs), even though merging itself costs some CPU.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import fig03_merging_cpu

BATCHES = (1, 2, 4, 8, 16)


def test_fig03_merging_cpu_flash(benchmark, show):
    result = run_once(benchmark, fig03_merging_cpu,
                      batches=BATCHES, ssd="flash", duration=4e-3)
    show(result)
    _assert_shape(result)


def test_fig03_merging_cpu_optane(benchmark, show):
    result = run_once(benchmark, fig03_merging_cpu,
                      batches=BATCHES, ssd="optane", duration=4e-3)
    show(result)
    _assert_shape(result)
    benchmark.extra_info["cpu_per_100kiops_batch1"] = result.column(
        "init_cpu_per_100kiops", batch=1)[0]
    benchmark.extra_info["cpu_per_100kiops_batch16"] = result.column(
        "init_cpu_per_100kiops", batch=16)[0]


def _assert_shape(result):
    base_init = result.column("init_cpu_per_100kiops", batch=1)[0]
    base_tgt = result.column("tgt_cpu_per_100kiops", batch=1)[0]
    deep_init = result.column("init_cpu_per_100kiops", batch=16)[0]
    deep_tgt = result.column("tgt_cpu_per_100kiops", batch=16)[0]
    # Merging decreases per-op CPU on both sides, substantially.
    assert deep_init < 0.5 * base_init
    assert deep_tgt < 0.5 * base_tgt
    # Fewer commands on the wire as the batch grows.
    commands = [row["commands"] for row in result.rows]
    assert commands[-1] < commands[0]
