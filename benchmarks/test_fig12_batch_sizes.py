"""Figure 12 — performance with varying batch sizes (§6.2.3).

Paper claims reproduced here (mergeable sequential 4 KB batches):

* (a) one thread (limited CPU): merging raises Rio's throughput over the
  "Rio w/o merge" ablation by cutting driver CPU per block;
* (b) 12 threads (CPU plentiful, SSD saturated): merging no longer buys
  throughput but keeps CPU efficiency high, freeing cycles;
* HORAE's *normalized* CPU efficiency decreases as the batch grows — its
  synchronous control path does not benefit from data-path merging.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import fig12_batch_sizes

BATCHES = (1, 2, 4, 8, 16)


def test_fig12a_single_thread(benchmark, show):
    result = run_once(benchmark, fig12_batch_sizes,
                      panel="a", batches=BATCHES, duration=4e-3)
    show(result)
    # Merging increases throughput when CPU is the bottleneck.
    rio16 = result.column("kiops", system="rio", batch=16)[0]
    nomerge16 = result.column("kiops", system="rio-nomerge", batch=16)[0]
    assert rio16 >= nomerge16
    # Rio with merging sends far fewer commands.
    rio_cmds = result.column("commands", system="rio", batch=16)[0]
    nomerge_cmds = result.column("commands", system="rio-nomerge", batch=16)[0]
    assert rio_cmds < 0.5 * nomerge_cmds
    # HORAE's normalized efficiency falls with batch size (its control
    # path cost is per group, unaffected by merging).
    horae_eff = [
        result.column("init_eff_norm", system="horae", batch=b)[0]
        for b in BATCHES
    ]
    assert horae_eff[-1] < horae_eff[0]
    benchmark.extra_info["rio_kiops_b16"] = rio16
    benchmark.extra_info["nomerge_kiops_b16"] = nomerge16


def test_fig12b_twelve_threads(benchmark, show):
    result = run_once(benchmark, fig12_batch_sizes,
                      panel="b", batches=(1, 4, 16), duration=3e-3)
    show(result)
    # SSD saturated: merging does not raise throughput much...
    rio16 = result.column("kiops", system="rio", batch=16)[0]
    rio1 = result.column("kiops", system="rio", batch=1)[0]
    assert rio16 < 1.5 * rio1
    # ...but Rio retains CPU efficiency close to the orderless.
    rio_eff = result.column("init_eff_norm", system="rio", batch=16)[0]
    assert rio_eff > 0.75
    # And merging still slashes the command count vs the ablation.
    rio_cmds = result.column("commands", system="rio", batch=16)[0]
    nomerge_cmds = result.column("commands", system="rio-nomerge", batch=16)[0]
    assert rio_cmds < 0.5 * nomerge_cmds
