"""The reproduction scorecard: every headline claim in one run.

Each figure benchmark asserts its own claims in detail; this benchmark
runs the compact claim suite (`python -m repro claims`) and requires that
*all* of the paper's headline claims hold simultaneously.
"""

from benchmarks.conftest import run_once
from repro.harness.claims import evaluate_claims


def test_all_headline_claims_hold(benchmark):
    report = run_once(benchmark, evaluate_claims, duration=2.5e-3)
    print()
    print(report.render())
    failed = [c for c in report.claims if not c.passed]
    assert not failed, "failed claims: " + "; ".join(
        f"{c.section}: {c.statement} ({c.measured})" for c in failed
    )
    assert report.total >= 15
    benchmark.extra_info["claims_passed"] = report.passed
    benchmark.extra_info["claims_total"] = report.total
