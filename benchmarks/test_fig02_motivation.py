"""Figure 2 — motivation: the cost of storage ordering guarantees (§3.1).

Paper claims reproduced here:

* orderless write requests saturate both SSDs with a single thread;
* ordered Linux NVMe-oF and HORAE perform significantly worse than the
  orderless, with the gap largest on the flash SSD (per-group FLUSH);
* HORAE needs many cores to approach device saturation.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import fig02_motivation

THREADS = (1, 2, 4, 8, 12)
DURATION = 4e-3


def kiops(result, system, threads):
    return result.column("kiops", system=system, threads=threads)[0]


def test_fig02a_flash(benchmark, show):
    result = run_once(benchmark, fig02_motivation,
                      ssd="flash", threads=THREADS, duration=DURATION)
    show(result)
    # Orderless saturates with one thread: adding threads gains little.
    assert kiops(result, "orderless", 12) < 1.3 * kiops(result, "orderless", 1)
    # Linux NVMe-oF is ~two orders of magnitude below orderless (FLUSH).
    assert kiops(result, "orderless", 1) > 50 * kiops(result, "linux", 1)
    # HORAE removes the FLUSH: far above Linux, still below orderless.
    assert kiops(result, "horae", 1) > 10 * kiops(result, "linux", 1)
    assert kiops(result, "horae", 1) < kiops(result, "orderless", 1)
    benchmark.extra_info["orderless_1t_kiops"] = kiops(result, "orderless", 1)
    benchmark.extra_info["linux_1t_kiops"] = kiops(result, "linux", 1)


def test_fig02b_optane(benchmark, show):
    result = run_once(benchmark, fig02_motivation,
                      ssd="optane", threads=THREADS, duration=DURATION)
    show(result)
    assert kiops(result, "orderless", 12) < 1.3 * kiops(result, "orderless", 1)
    # PLP: the FLUSH is marginal, but synchronous transfer still hurts.
    assert kiops(result, "orderless", 1) > 4 * kiops(result, "linux", 1)
    assert kiops(result, "horae", 1) > kiops(result, "linux", 1)
    # HORAE approaches saturation only at high thread counts (§3.1:
    # "needs more than 8 CPU cores to fully drive existing SSDs").
    assert kiops(result, "horae", 12) > 3 * kiops(result, "horae", 1)
