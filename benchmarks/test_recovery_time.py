"""§6.5 — recovery time.

Paper claims reproduced here (worst case: 36 threads issuing 4 KB ordered
writes continuously, two target servers, crash injected, then recovery):

* Rio reconstructs the global order from PMR ordering attributes; most of
  the time goes into reading PMR and shipping attributes over the network;
* HORAE reloads its (smaller) ordering metadata faster;
* data recovery (discarding out-of-order blocks) dominates the total for
  both, and runs concurrently per SSD/server.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import recovery_table


def test_recovery_time(benchmark, show):
    result = run_once(benchmark, recovery_table, trials=5, threads=36,
                      run_before_crash=2e-3)
    show(result)
    rio = result.series(system="rio")[0]
    horae = result.series(system="horae")[0]
    # Recovery is fast (tens of milliseconds in the paper's testbed; our
    # window is smaller, so bound it loosely but positively).
    assert 0 < rio["rebuild_ms"] < 100
    assert rio["records"] > 0
    # HORAE's reload of smaller metadata is faster than Rio's rebuild.
    assert horae["rebuild_ms"] < rio["rebuild_ms"]
    # Data recovery dominates the rebuild phase for Rio (paper: 125 ms vs
    # 55 ms) whenever there is anything to discard.
    if rio["discarded"] > 10:
        assert rio["data_recovery_ms"] > rio["rebuild_ms"] * 0.5
    benchmark.extra_info["rio_rebuild_ms"] = rio["rebuild_ms"]
    benchmark.extra_info["rio_data_recovery_ms"] = rio["data_recovery_ms"]
    benchmark.extra_info["rio_discarded"] = rio["discarded"]
