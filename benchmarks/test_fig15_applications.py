"""Figure 15 — application performance (§6.4).

Paper claims reproduced here:

* Varmail (metadata/fsync intensive): RioFS increases throughput by 2.3×
  over Ext4 and 1.3× over HoraeFS on average;
* RocksDB fillsync (CPU + I/O intensive): RioFS gives 1.9×/1.5× the ops/s
  of Ext4/HoraeFS on average, and leaves more CPU to the application.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import fig15a_varmail, fig15b_rocksdb

VARMAIL_THREADS = (1, 4, 8, 16)
ROCKSDB_THREADS = (1, 6, 12, 24)


def geomean_ratio(result, over, threads):
    product, n = 1.0, 0
    for count in threads:
        rio = result.column("kops", fs="riofs", threads=count)[0]
        other = result.column("kops", fs=over, threads=count)[0]
        if other > 0:
            product *= rio / other
            n += 1
    return product ** (1.0 / n)


def test_fig15a_varmail(benchmark, show):
    result = run_once(benchmark, fig15a_varmail,
                      threads=VARMAIL_THREADS, duration=5e-3)
    show(result)
    over_ext4 = geomean_ratio(result, "ext4", VARMAIL_THREADS)
    over_horaefs = geomean_ratio(result, "horaefs", VARMAIL_THREADS)
    assert over_ext4 > 1.4  # paper: 2.3x on average
    assert over_horaefs > 1.0  # paper: 1.3x on average
    benchmark.extra_info["riofs_over_ext4"] = over_ext4
    benchmark.extra_info["riofs_over_horaefs"] = over_horaefs


def test_fig15b_rocksdb_fillsync(benchmark, show):
    result = run_once(benchmark, fig15b_rocksdb,
                      threads=ROCKSDB_THREADS, duration=5e-3)
    show(result)
    over_ext4 = geomean_ratio(result, "ext4", ROCKSDB_THREADS)
    over_horaefs = geomean_ratio(result, "horaefs", ROCKSDB_THREADS)
    assert over_ext4 > 1.2  # paper: 1.9x on average
    assert over_horaefs > 1.0  # paper: 1.5x on average
    benchmark.extra_info["riofs_over_ext4"] = over_ext4
    benchmark.extra_info["riofs_over_horaefs"] = over_horaefs
