"""Figure 10 — block device performance (§6.2).

Paper claims reproduced here (4 KB random ordered writes):

* (a) flash: Rio is ~two orders of magnitude above Linux NVMe-oF and ~2.8×
  HORAE on average, with higher CPU efficiency on both servers;
* (b) Optane: Rio ≈ orderless; 9.4×/3.3× Linux/HORAE on average;
* (c)/(d) multi-SSD volumes and two target servers: Rio distributes
  ordered writes concurrently and saturates the array with few threads.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.figures import fig10_block_device

THREADS = (1, 2, 4, 8, 12)
DURATION = 3e-3


def geomean_ratio(result, over, threads):
    ratios = []
    for count in threads:
        rio = result.column("kiops", system="rio", threads=count)[0]
        other = result.column("kiops", system=over, threads=count)[0]
        if other > 0:
            ratios.append(rio / other)
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return product ** (1.0 / len(ratios))


def test_fig10a_flash(benchmark, show):
    result = run_once(benchmark, fig10_block_device,
                      panel="a", threads=THREADS, duration=DURATION)
    show(result)
    # Two orders of magnitude over Linux at low thread counts.
    rio1 = result.column("kiops", system="rio", threads=1)[0]
    linux1 = result.column("kiops", system="linux", threads=1)[0]
    assert rio1 > 50 * linux1
    # ~2.8x over HORAE on average in the paper; require > 1.5x geomean.
    assert geomean_ratio(result, "horae", THREADS) > 1.5
    # Rio tracks the orderless.
    for count in THREADS:
        rio = result.column("kiops", system="rio", threads=count)[0]
        orderless = result.column("kiops", system="orderless",
                                  threads=count)[0]
        assert rio > 0.85 * orderless
    benchmark.extra_info["rio_over_linux_1t"] = rio1 / max(linux1, 1e-9)


def test_fig10b_optane(benchmark, show):
    result = run_once(benchmark, fig10_block_device,
                      panel="b", threads=THREADS, duration=DURATION)
    show(result)
    rio1 = result.column("kiops", system="rio", threads=1)[0]
    linux1 = result.column("kiops", system="linux", threads=1)[0]
    assert rio1 > 5 * linux1  # paper: 9.4x on average
    assert geomean_ratio(result, "horae", THREADS) > 1.5  # paper: 3.3x
    for count in THREADS:
        rio = result.column("kiops", system="rio", threads=count)[0]
        orderless = result.column("kiops", system="orderless",
                                  threads=count)[0]
        assert rio > 0.85 * orderless
    # CPU efficiency: rio close to orderless, linux/horae well below.
    rio_eff = result.column("init_eff_norm", system="rio", threads=1)[0]
    linux_eff = result.column("init_eff_norm", system="linux", threads=1)[0]
    horae_eff = result.column("init_eff_norm", system="horae", threads=1)[0]
    assert rio_eff > 0.8
    assert linux_eff < 0.5
    assert horae_eff < 0.5
    benchmark.extra_info["rio_over_linux_1t"] = rio1 / max(linux1, 1e-9)


@pytest.mark.parametrize("panel", ["c", "d"])
def test_fig10cd_multi_ssd(panel, benchmark, show):
    result = run_once(benchmark, fig10_block_device,
                      panel=panel, threads=(1, 4, 12), duration=DURATION)
    show(result)
    # Rio reaches (near) array saturation with 4 threads: adding more
    # threads should gain little ("Rio fully drives the SSDs with 4
    # threads due to high CPU efficiency").
    rio4 = result.column("kiops", system="rio", threads=4)[0]
    rio12 = result.column("kiops", system="rio", threads=12)[0]
    assert rio12 < 1.5 * rio4
    # Linux cannot dispatch the next ordered write until the previous one
    # finishes: far below rio at every thread count.
    for count in (1, 4, 12):
        rio = result.column("kiops", system="rio", threads=count)[0]
        linux = result.column("kiops", system="linux", threads=count)[0]
        assert rio > 3 * linux
    # Rio above HORAE (synchronous control path) throughout.
    for count in (1, 4):
        rio = result.column("kiops", system="rio", threads=count)[0]
        horae = result.column("kiops", system="horae", threads=count)[0]
        assert rio > 1.3 * horae
