"""Figure 14 — fsync latency breakdown (§6.3).

Paper claims reproduced here: HoraeFS's dispatch of the journaled metadata
(JM) and commit record (JC) is delayed by the synchronous control path's
extra network round trips, while RioFS dispatches the following blocks
immediately after they reach the ORDER queue; Ext4 serializes everything.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import fig14_latency_breakdown


def row(result, fs):
    return result.series(fs=fs)[0]


def test_fig14_latency_breakdown(benchmark, show):
    result = run_once(benchmark, fig14_latency_breakdown, iterations=50)
    show(result)
    ext4 = row(result, "ext4")
    horaefs = row(result, "horaefs")
    riofs = row(result, "riofs")

    # RioFS dispatches JC almost immediately (no wait between groups).
    assert riofs["jc_dispatch_us"] < horaefs["jc_dispatch_us"]
    assert riofs["jc_dispatch_us"] < ext4["jc_dispatch_us"]
    # HoraeFS pays extra dispatch delay for JM/JC (control round trips).
    assert horaefs["jm_dispatch_us"] > riofs["jm_dispatch_us"]
    # Total fsync latency: RioFS < HoraeFS < Ext4.
    assert riofs["total_us"] < horaefs["total_us"] < ext4["total_us"]
    # Ext4's JC can only dispatch after the first group round-trips.
    assert ext4["jc_dispatch_us"] > 10  # microseconds
    benchmark.extra_info["riofs_total_us"] = riofs["total_us"]
    benchmark.extra_info["horaefs_total_us"] = horaefs["total_us"]
    benchmark.extra_info["ext4_total_us"] = ext4["total_us"]
