"""Meta-benchmark: how fast the simulator itself runs on the host.

Unlike the figure benchmarks (deterministic single runs), these use
pytest-benchmark the classic way — repeated timed rounds — to track the
host-side cost of the event engine and the full stack.  Useful when
optimizing the simulator or picking window sizes for high-fidelity runs.

The engine tests are *gated*: each asserts a throughput floor so a
regression on the hot path (``Event``/``Timeout`` allocation, the
``Environment.run`` dispatch loop) fails the suite instead of silently
slowing every sweep.  Floors are deliberately set well below healthy
dev-host numbers to absorb CI-host variance; override via
``REPRO_ENGINE_EVENTS_FLOOR`` (events/s) when tracking a faster baseline.
For reference, the ``__slots__``/inlined-run-loop fast path moved
``test_engine_event_throughput`` from ~630K to ~1.0M events/s on the
1-core dev container (a ~60% improvement; the PR that introduced it
required >=20%).
"""

import os

from repro.block.mq import BlockLayer
from repro.block.request import Bio
from repro.cluster import Cluster
from repro.hw.ssd import OPTANE_905P
from repro.sim import Environment

#: Safety-net floor for raw event dispatch, in events per host second.
#: The dev container does ~1.0M; pre-optimization code did ~630K; any
#: host dipping under this has a real engine regression (or is too slow
#: to produce meaningful figure runs at all).
ENGINE_EVENTS_FLOOR = float(os.environ.get("REPRO_ENGINE_EVENTS_FLOOR",
                                           "250000"))

#: Floor for full-stack simulated writes per host second (the end-to-end
#: cost includes the block layer, driver, fabric and SSD model on top of
#: the engine).
STACK_WRITES_FLOOR = float(os.environ.get("REPRO_STACK_WRITES_FLOOR",
                                          "1500"))


def test_engine_event_throughput(benchmark):
    """Raw timeout-event processing rate of the kernel (gated)."""

    EVENTS = 5000

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(EVENTS):
                yield env.timeout(1e-6)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result > 0
    events_per_sec = EVENTS / benchmark.stats.stats.mean
    benchmark.extra_info["events_per_sec"] = events_per_sec
    assert events_per_sec > ENGINE_EVENTS_FLOOR, (
        f"engine hot path regressed: {events_per_sec:,.0f} events/s "
        f"(floor {ENGINE_EVENTS_FLOOR:,.0f})"
    )


def test_engine_process_churn(benchmark):
    """Spawn/finish cost: many short-lived processes joining each other.

    Exercises the bootstrap-event, ``succeed`` and processed-target resume
    paths that figure workloads hit on every request completion.
    """

    PROCS = 1500

    def run():
        env = Environment()

        def leaf(env):
            yield env.timeout(1e-7)
            return 1

        def parent(env):
            total = 0
            for _ in range(PROCS):
                total += yield env.process(leaf(env))
            return total

        done = env.process(parent(env))
        env.run()
        assert done.value == PROCS
        return done.value

    result = benchmark(run)
    assert result == PROCS
    procs_per_sec = PROCS / benchmark.stats.stats.mean
    benchmark.extra_info["procs_per_sec"] = procs_per_sec
    # Each leaf is ~4 engine events; gate at 1/4 of the raw-event floor.
    assert procs_per_sec > ENGINE_EVENTS_FLOOR / 4, (
        f"process churn regressed: {procs_per_sec:,.0f} procs/s"
    )


def test_end_to_end_write_cost(benchmark):
    """Host cost of one simulated remote 4 KB write, full stack (gated)."""

    WRITES = 200

    def run():
        env = Environment()
        cluster = Cluster(env, target_ssds=((OPTANE_905P,),))
        layer = BlockLayer(env, cluster.driver, cluster.volume())
        core = cluster.initiator.cpus.pick(0)

        def proc(env):
            for i in range(WRITES):
                done = yield from layer.submit_bio(
                    core, Bio(op="write", lba=i, nblocks=1)
                )
                yield done

        env.run_until_event(env.process(proc(env)))
        return cluster.driver.commands_sent

    commands = benchmark(run)
    assert commands == WRITES
    writes_per_sec = WRITES / benchmark.stats.stats.mean
    benchmark.extra_info["writes_per_sec"] = writes_per_sec
    assert writes_per_sec > STACK_WRITES_FLOOR, (
        f"full-stack write cost regressed: {writes_per_sec:,.0f} writes/s "
        f"(floor {STACK_WRITES_FLOOR:,.0f})"
    )


def test_saturated_iops_simulation_rate(benchmark):
    """Simulated-IOPS-per-wall-second at device saturation (QD 32)."""

    def run():
        env = Environment()
        cluster = Cluster(env, target_ssds=((OPTANE_905P,),))
        layer = BlockLayer(env, cluster.driver, cluster.volume())
        core = cluster.initiator.cpus.pick(0)
        count = [0]

        def writer(env):
            inflight = []
            i = 0
            while env.now < 2e-3:
                done = yield from layer.submit_bio(
                    core, Bio(op="write", lba=i * 2, nblocks=1)
                )
                i += 1
                inflight.append(done)
                if len(inflight) >= 32:
                    yield env.any_of(inflight)
                    count[0] += sum(1 for e in inflight if e.triggered)
                    inflight = [e for e in inflight if not e.triggered]

        env.process(writer(env))
        env.run(until=2e-3)
        return count[0]

    ops = benchmark(run)
    assert ops > 500  # ~1000 simulated ops in the 2 ms window
    benchmark.extra_info["sim_ops_per_wall_sec"] = (
        ops / benchmark.stats.stats.mean
    )


# ---------------------------------------------------------------------------
# Batched / sharded engines (gated against the serial floors)
# ---------------------------------------------------------------------------

#: Floor for the calendar engine on its home turf: many processes ticking
#: in phase, so every dispatch drains a whole same-timestamp bucket with
#: the inlined resume path.  CI pins this at 2x the serial floor
#: (REPRO_CALENDAR_EVENTS_FLOOR=500000 in the engine-smoke job); the local
#: default matches the serial floor so 1-core dev hosts still gate real
#: regressions without asserting parallel-grade speedups.
CALENDAR_EVENTS_FLOOR = float(os.environ.get("REPRO_CALENDAR_EVENTS_FLOOR",
                                             "250000"))

#: Floor for *aggregate* events/s across forked shard workers.  Scales
#: with worker count on multi-core CI (where the 2x acceptance bar is
#: enforced); the local default only catches order-of-magnitude breakage.
PARALLEL_EVENTS_FLOOR = float(os.environ.get("REPRO_PARALLEL_EVENTS_FLOOR",
                                             "100000"))

#: Worker count for the parallel benchmark (CI sets 2 to match its
#: --jobs 2 bit-identity run; 0 means one worker per host core).
PARALLEL_JOBS = int(os.environ.get("REPRO_PARALLEL_JOBS", "0"))


def test_calendar_engine_batched_throughput(benchmark):
    """Batched same-timestamp dispatch rate of the calendar engine (gated).

    The workload is the serial gate's ticker scaled out to 50 in-phase
    processes: all 50 timeouts land in one bucket per tick, which is the
    shape saturation sweeps produce (one completion burst per arrival
    batch).
    """
    from repro.sim import CalendarEnvironment

    EVENTS = 5000
    PROCS = 50

    def run():
        env = CalendarEnvironment()

        def ticker(env):
            for _ in range(EVENTS // PROCS):
                yield env.timeout(1e-6)

        for _ in range(PROCS):
            env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result > 0
    events_per_sec = EVENTS / benchmark.stats.stats.mean
    benchmark.extra_info["events_per_sec"] = events_per_sec
    assert events_per_sec > CALENDAR_EVENTS_FLOOR, (
        f"calendar engine regressed: {events_per_sec:,.0f} events/s "
        f"(floor {CALENDAR_EVENTS_FLOOR:,.0f})"
    )


def test_parallel_engine_aggregate_throughput(benchmark):
    """Aggregate events/s across forked shard workers (gated).

    Eight independent ticker shards advanced in one infinite-lookahead
    window — the embarrassingly-parallel upper bound.  The metric is
    total events processed across all shards per wall second; on an
    N-core host it should approach N x the serial rate (the CI floor
    enforces the 2x bar on its multi-core runners).
    """
    from repro.sim import run_sharded
    from repro.sim.parallel import default_jobs, tick_shard

    EVENTS_PER_SHARD = 2000
    SHARDS = 8
    jobs = PARALLEL_JOBS or default_jobs()

    def run():
        results = run_sharded(
            [(lambda ctx: tick_shard(ctx, events=EVENTS_PER_SHARD))
             for _ in range(SHARDS)],
            lookahead=float("inf"),
            until=EVENTS_PER_SHARD * 1e-6,
            jobs=jobs,
            engine="calendar",
        )
        return sum(r["events"] for r in results)

    total = benchmark(run)
    assert total == EVENTS_PER_SHARD * SHARDS
    events_per_sec = total / benchmark.stats.stats.mean
    benchmark.extra_info["aggregate_events_per_sec"] = events_per_sec
    benchmark.extra_info["jobs"] = jobs
    assert events_per_sec > PARALLEL_EVENTS_FLOOR, (
        f"sharded engine regressed: {events_per_sec:,.0f} aggregate "
        f"events/s with jobs={jobs} (floor {PARALLEL_EVENTS_FLOOR:,.0f})"
    )
