"""Meta-benchmark: how fast the simulator itself runs on the host.

Unlike the figure benchmarks (deterministic single runs), these use
pytest-benchmark the classic way — repeated timed rounds — to track the
host-side cost of the event engine and the full stack.  Useful when
optimizing the simulator or picking window sizes for high-fidelity runs.
"""

from repro.block.mq import BlockLayer
from repro.block.request import Bio
from repro.cluster import Cluster
from repro.hw.ssd import OPTANE_905P
from repro.sim import Environment


def test_engine_event_throughput(benchmark):
    """Raw timeout-event processing rate of the kernel."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(5000):
                yield env.timeout(1e-6)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result > 0


def test_end_to_end_write_cost(benchmark):
    """Host cost of one simulated remote 4 KB write, full stack."""

    def run():
        env = Environment()
        cluster = Cluster(env, target_ssds=((OPTANE_905P,),))
        layer = BlockLayer(env, cluster.driver, cluster.volume())
        core = cluster.initiator.cpus.pick(0)

        def proc(env):
            for i in range(200):
                done = yield from layer.submit_bio(
                    core, Bio(op="write", lba=i, nblocks=1)
                )
                yield done

        env.run_until_event(env.process(proc(env)))
        return cluster.driver.commands_sent

    commands = benchmark(run)
    assert commands == 200


def test_saturated_iops_simulation_rate(benchmark):
    """Simulated-IOPS-per-wall-second at device saturation (QD 32)."""

    def run():
        env = Environment()
        cluster = Cluster(env, target_ssds=((OPTANE_905P,),))
        layer = BlockLayer(env, cluster.driver, cluster.volume())
        core = cluster.initiator.cpus.pick(0)
        count = [0]

        def writer(env):
            inflight = []
            i = 0
            while env.now < 2e-3:
                done = yield from layer.submit_bio(
                    core, Bio(op="write", lba=i * 2, nblocks=1)
                )
                i += 1
                inflight.append(done)
                if len(inflight) >= 32:
                    yield env.any_of(inflight)
                    count[0] += sum(1 for e in inflight if e.triggered)
                    inflight = [e for e in inflight if not e.triggered]

        env.process(writer(env))
        env.run(until=2e-3)
        return count[0]

    ops = benchmark(run)
    assert ops > 500  # ~1000 simulated ops in the 2 ms window
