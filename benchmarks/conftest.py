"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark runs its figure's harness entry point exactly once inside
pytest-benchmark (the simulation is deterministic — repeated rounds would
measure the host, not the system), prints the reproduced table, asserts the
paper's qualitative shape, and attaches the headline numbers as
``extra_info`` so they land in the benchmark JSON.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    holder = {}

    def call():
        holder["result"] = fn(*args, **kwargs)

    benchmark.pedantic(call, rounds=1, iterations=1)
    return holder["result"]


@pytest.fixture
def show():
    """Print a FigureResult table (visible with -s, kept in captured log)."""

    def _show(result):
        print()
        print(result.render())
        return result

    return _show
