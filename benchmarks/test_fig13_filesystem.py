"""Figure 13 — file system performance (§6.3).

Paper claims reproduced here (4 KB append + fsync, remote Optane 905P):

* RioFS reaches higher fsync throughput with fewer threads than Ext4 and
  HoraeFS (paper: +3.0x / +1.2x at 16 threads);
* RioFS cuts the average fsync latency (paper: −67% / −18%) and the p99
  (paper: −50% / −20%) — fsync becomes less variable.
"""

from benchmarks.conftest import run_once
from repro.harness.figures import fig13_filesystem

THREADS = (1, 4, 8, 16, 24)


def col(result, name, fs, threads):
    return result.column(name, fs=fs, threads=threads)[0]


def test_fig13_filesystem(benchmark, show):
    result = run_once(benchmark, fig13_filesystem,
                      threads=THREADS, duration=5e-3)
    show(result)
    # Throughput at 16 threads: RioFS well above Ext4 (paper: 3.0x) and at
    # or above HoraeFS (paper: 1.2x; ours converges once the SSD
    # saturates — see EXPERIMENTS.md).
    assert col(result, "kops", "riofs", 16) > 1.8 * col(result, "kops", "ext4", 16)
    assert col(result, "kops", "riofs", 16) >= col(result, "kops", "horaefs", 16)
    # Average fsync latency lower than both baselines at every count.
    for count in THREADS:
        rio_lat = col(result, "avg_latency_us", "riofs", count)
        ext4_lat = col(result, "avg_latency_us", "ext4", count)
        horae_lat = col(result, "avg_latency_us", "horaefs", count)
        assert rio_lat < 0.7 * ext4_lat, count
        assert rio_lat <= horae_lat * 1.02, count
    # Tail latency: RioFS makes fsync less variable (paper: p99 −50%/−20%
    # against Ext4/HoraeFS).
    assert (col(result, "p99_latency_us", "riofs", 16)
            < col(result, "p99_latency_us", "ext4", 16))
    assert (col(result, "p99_latency_us", "riofs", 16)
            < col(result, "p99_latency_us", "horaefs", 16))
    benchmark.extra_info["riofs_kops_16t"] = col(result, "kops", "riofs", 16)
    benchmark.extra_info["ext4_kops_16t"] = col(result, "kops", "ext4", 16)
