"""Chaos suite: 30 seeded trials per system under randomized transient
faults (message loss ≤5%, ≥1 QP breakdown and ≥1 target stall per trial).

Acceptance invariants per trial:

* zero deadlocks (liveness-watched completions + SimDeadlock);
* zero prefix/order violations — per-stream completion order (Rio, Linux)
  and per-stream SSD submission order (target audit log) both hold;
* zero duplicate applies despite retransmissions (target-side
  ``(stream, position)`` audit);
* forward progress: every group completes, no pending-table leaks.

Plus a graceful-degradation measurement: throughput dips during a timed
fault burst and recovers after it.
"""

from benchmarks.conftest import run_once
from repro.harness.chaos import (
    measure_degradation,
    run_chaos_suite,
    run_chaos_trial,
    run_scale_chaos_trial,
    run_tenant_chaos_trial,
)
from repro.sim.faults import FaultPlan

SYSTEMS = ("rio", "horae", "linux")


def assert_trial_ok(result, max_live_heap=4):
    assert not result.deadlocked, (
        f"{result.system} seed={result.seed}: {result.deadlock_reason}"
    )
    assert result.completed_groups == result.total_groups, result.summary()
    assert result.completion_order_violations == [], result.summary()
    assert result.duplicate_applies == [], result.summary()
    assert result.submission_order_violations == [], result.summary()
    assert result.errors == [], result.summary()
    assert result.leak_error == "", result.leak_error
    # Completed watchdog arms must disarm their expiry timers: a trial
    # used to end with dozens of stale armed timeouts still on the heap.
    # A small allowance remains because the final group's completion stops
    # the clock mid-tick: watchdogs for commands completing in that same
    # instant never get to run their disarm callbacks, so deep-queue
    # trials pass a proportionally larger ``max_live_heap``.
    assert result.heap_live_entries <= max_live_heap, (
        f"{result.system} seed={result.seed}: "
        f"{result.heap_live_entries} live heap entries leaked"
    )
    # Every trial met the chaos floor.
    assert result.fault_counts.get("qp_breakdown", 0) >= 1, result.summary()
    assert result.fault_counts.get("target_stall", 0) >= 1, result.summary()


def test_chaos_suite_30_trials_all_systems(benchmark):
    results = run_once(benchmark, run_chaos_suite, systems=SYSTEMS, trials=30)
    assert len(results) == 30 * len(SYSTEMS)
    for result in results:
        assert_trial_ok(result)
    # The suite actually exercised the fault plane, not a quiet network.
    total_drops = sum(r.messages_dropped for r in results)
    total_retries = sum(r.retries for r in results)
    total_reconnects = sum(r.reconnects for r in results)
    assert total_drops > 0
    assert total_retries > 0
    assert total_reconnects >= 30 * len(SYSTEMS)  # ≥1 breakdown per trial
    # Rio's duplicate suppression fired somewhere across the suite (lost
    # responses force retransmits of already-admitted writes).
    assert sum(r.duplicates_suppressed for r in results if r.system == "rio") > 0
    # Every fault and recovery action left a trace record.
    assert all(r.trace_events > 0 for r in results)
    benchmark.extra_info["trials"] = len(results)
    benchmark.extra_info["drops"] = total_drops
    benchmark.extra_info["retries"] = total_retries
    benchmark.extra_info["reconnects"] = total_reconnects


def test_chaos_smoke(benchmark):
    """CI smoke: 3 fixed-seed trials, one per system."""
    def smoke():
        return [
            run_chaos_trial(system=system, seed=1001) for system in SYSTEMS
        ]

    results = run_once(benchmark, smoke)
    for result in results:
        assert_trial_ok(result)


def test_qualification_crash_during_cache_drain(benchmark):
    """Seeded regression on the qualification layout: a deep ordered burst
    onto the small-cache PM981 variant prefilled into steady-state GC, with
    a QP breakdown, a target stall and a full target power cycle landing
    while the write cache is draining under eviction pressure.

    The crash drops the volatile cache mid-drain, so the driver's watchdog
    resubmits everything the target acknowledged but lost — the worst case
    for the target-side admission audit.  Every chaos invariant must
    survive the crash epoch: retransmits admitted exactly once, per-stream
    order intact, no leaks, no wedge.
    """
    def plan():
        return (
            FaultPlan(seed=9041, message_loss=0.02, corruption=0.005,
                      delay_probability=0.02, delay_range=(5e-6, 40e-6))
            .qp_breakdown(at=60e-6, qp_index=1)
            .target_stall(at=110e-6, target_index=0, duration=60e-6)
            .target_crash(at=220e-6, target_index=0, restart_after=150e-6)
        )

    def trials():
        return [
            run_chaos_trial(
                system=system, seed=9041, layout="flash-qual", prefill=0.92,
                threads=4, groups_per_thread=64, writes_per_group=4,
                depth=256, plan=plan(),
            )
            for system in SYSTEMS
        ]

    for result in run_once(benchmark, trials):
        # 4 threads x depth 256: allow one tick's worth of still-armed
        # watchdogs per thread at the stop instant (see assert_trial_ok).
        assert_trial_ok(result, max_live_heap=16)
        # The crash actually landed and forced recovery work.
        assert result.fault_counts.get("target_crash", 0) >= 1
        assert result.reconnects >= 1, result.summary()
        # Recovery work happened: command resubmits (rio/linux driver) or
        # RPC retries (horae's ordering-metadata path).
        assert result.commands_resubmitted + result.retries > 0, (
            result.summary()
        )
        # ... in the qualification regime, not on an idle fresh drive: the
        # device was GC-active with the cache under eviction pressure, and
        # it power-cycled mid-run.
        health = result.device_health["target0-ssd0"]
        assert health["gc_active"] == 1.0, health
        assert health["write_amp"] > 1.05, health
        assert health["cache_evictions"] > 0, health
        assert health["power_cycles"] >= 1.0, health
    benchmark.extra_info["systems"] = len(SYSTEMS)


def test_multi_initiator_qp_breakdown_spares_bystander(benchmark):
    """Blast-radius containment on the scale-out plane: a QP breakdown on
    initiator host 0 must not stall or reorder the streams owned by host 1.

    Each seeded trial runs twice — fault-free baseline, then with a
    breakdown-only plan confined to host 0's queue pairs — and the
    bystander host's streams (odd stream ids, since stream ``s`` lives on
    host ``s % 2``) must complete in the identical order and essentially
    the identical time, while host 0 visibly reconnects and recovers.
    """
    seeds = (4242, 2001, 2002)

    def trials():
        return [
            (
                run_scale_chaos_trial(system="rio", seed=seed, faults=False),
                run_scale_chaos_trial(system="rio", seed=seed, faults=True),
            )
            for seed in seeds
        ]

    def bystander_makespan(result):
        return max(
            (t for s, _g, t in result.completion_log if s % 2 == 1),
            default=0.0,
        )

    for baseline, faulted in run_once(benchmark, trials):
        # The faulted run upholds every chaos invariant cluster-wide.
        assert not faulted.deadlocked, faulted.deadlock_reason
        assert faulted.completed_groups == faulted.total_groups
        assert faulted.completion_order_violations == [], faulted.summary()
        assert faulted.duplicate_applies == [], faulted.summary()
        assert faulted.submission_order_violations == [], faulted.summary()
        assert faulted.errors == [], faulted.summary()
        assert faulted.leak_error == "", faulted.leak_error
        # RPC retries and command watchdogs must disarm superseded expiry
        # timers cluster-wide too — a leak here grows with command count.
        assert faulted.heap_live_entries <= 4, (
            f"seed={faulted.seed}: {faulted.heap_live_entries} live heap "
            "entries leaked"
        )
        # The fault actually landed — on the victim host only.
        assert faulted.fault_counts.get("qp_breakdown", 0) >= 1
        assert faulted.node_reconnects[0] >= 1, faulted.summary()
        assert faulted.node_reconnects[1] == 0, faulted.summary()
        assert faulted.node_retries[1] == 0, faulted.summary()
        # Bystander streams: identical per-stream completion sequences
        # (cross-stream interleave may shift — the hosts share targets —
        # but each stream's own order and contents must match) ...
        def per_stream(result):
            out = {}
            for s, g, _t in result.completion_log:
                if s % 2 == 1:
                    out.setdefault(s, []).append(g)
            return out

        assert per_stream(faulted) == per_stream(baseline)
        # ... and no stall:
        assert bystander_makespan(faulted) <= (
            bystander_makespan(baseline) * 1.10 + 20e-6
        )
    benchmark.extra_info["seeds"] = len(seeds)


def test_noisy_neighbor_storm_survives_transient_faults(benchmark):
    """Tenant-plane chaos regression: the seeded noisy-neighbor storm —
    a bronze aggressor of large writes at ~2x the media pipe's capacity
    vs. one quiet gold tenant — with a queue-pair breakdown on an
    aggressor lane and a target stall landing inside the measured window.

    With QoS on, the aggressor is paced/shed at admission and the gold
    tenant's p999 stays within its SLO *even while the faults land*;
    with QoS off the very same seeded storm starves gold (the violation
    direction still demonstrates, so the pass is not an artifact of the
    faults weakening the aggressor).  The target-side audits — no
    duplicate applies, no submission-order regressions — hold in both
    runs despite retransmissions and per-tenant sheds."""
    seed, slo_us = 3, 2_000.0

    def trials():
        return (
            run_tenant_chaos_trial(system="rio", seed=seed, qos=True),
            run_tenant_chaos_trial(system="rio", seed=seed, qos=False),
        )

    protected, unprotected = run_once(benchmark, trials)
    expected_gold = 20.0 * 1e3 * 3e-3  # gold_kiops x duration

    # Protected: the faults actually landed and the SLO still held.
    assert protected.fault_counts.get("qp_breakdown", 0) >= 1
    assert protected.fault_counts.get("target_stall", 0) >= 1
    assert protected.reconnects >= 1, protected.summary()
    gold = protected.class_latency["gold"]
    assert gold["count"] >= 0.5 * expected_gold, gold
    assert 0.0 < gold["p999_us"] <= slo_us, gold
    assert protected.sheds_by_reason.get("pace", 0.0) > 0, (
        protected.sheds_by_reason
    )
    assert protected.ok, protected.summary()

    # Unprotected, same seed, same faults: gold demonstrably violated
    # (starved behind the aggressor's media backlog, or past the SLO).
    starved = unprotected.class_latency["gold"]
    assert (starved["count"] < 0.5 * expected_gold
            or starved["p999_us"] > slo_us), starved
    assert unprotected.sheds_by_reason == {}, unprotected.sheds_by_reason
    # The ordering audits hold even for the unprotected storm.
    assert unprotected.duplicate_applies == []
    assert unprotected.submission_order_violations == []

    benchmark.extra_info["gold_p999_us"] = gold["p999_us"]
    benchmark.extra_info["gold_done"] = gold["count"] / expected_gold
    benchmark.extra_info["aggressor_sheds"] = sum(
        protected.sheds_by_reason.values())


def test_gray_target_spares_bystanders(benchmark):
    """Gray-failure containment: one target turns fail-slow (8x service
    inflation) mid-run and the health plane must confine the damage.

    The sick target's breaker trips and opens; every other breaker stays
    closed; unordered flows fail over to the healthy target; ordered
    streams pinned to the sick shard brown out explicitly instead of
    wedging; and the bystander shard's tail latency stays flat.
    """
    from repro.harness.overload import probe_gray

    r = run_once(benchmark, probe_gray, seed=42)
    assert r["breaker_trips"] >= 1, r
    assert r["sick_breaker_open"] == 1.0, r
    assert r["healthy_breakers_closed"] == 1.0, r
    assert r["failovers"] >= 1, r
    # Unordered traffic shifted off the sick target after the trip.
    assert r["unordered_on_healthy"] > r["unordered_on_sick"], r
    # Ordered sick-shard streams browned out (explicit, not a wedge) ...
    assert r["brownouts"] >= 1, r
    assert r["dead_streams"] >= 1, r
    # ... while the bystander shard's p999 stayed at its healthy level
    # (one 4KiB write on an idle Optane target completes in ~25us).
    assert r["bystander_p999_us"] < 60.0, r
    # Sub-capacity load on the healthy shard: no admission sheds at all.
    assert r["shed_rate"] == 0.0, r
    benchmark.extra_info["bystander_p999_us"] = r["bystander_p999_us"]
    benchmark.extra_info["brownouts"] = r["brownouts"]
    benchmark.extra_info["failovers"] = r["failovers"]


def test_graceful_degradation_and_recovery(benchmark):
    """Throughput dips during a timed breakdown+stall burst and recovers
    to at least half the pre-fault rate afterwards."""
    d = run_once(benchmark, measure_degradation, system="rio", seed=7)
    assert d["ok"] == 1.0
    assert d["completed"] == d["total"]
    assert d["during_rate"] < d["before_rate"], d
    assert d["after_rate"] > 0.5 * d["before_rate"], d
    benchmark.extra_info.update(
        {k: v for k, v in d.items() if k != "ok"}
    )
