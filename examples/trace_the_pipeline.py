#!/usr/bin/env python3
"""Watching the I/O pipeline work: tracing one journaling transaction.

Attaches a :class:`~repro.sim.trace.Tracer` and submits the classic
journal pattern through Rio, then prints the pipeline's internal events:
scheduler merges, PMR attribute appends, the target's in-order gate, SSD
service, and the sequencer's in-order releases — the whole §4 machinery in
one timeline.

Run:  python examples/trace_the_pipeline.py
"""

from repro.cluster import Cluster
from repro.core.api import RioDevice
from repro.hw.ssd import OPTANE_905P
from repro.sim import Environment, Tracer


def main():
    env = Environment()
    env.tracer = Tracer()
    cluster = Cluster(env, target_ssds=((OPTANE_905P,),))
    rio = RioDevice(cluster, num_streams=2)
    core = cluster.initiator.cpus.pick(0)

    def app(env):
        events = []
        # Transaction 1: journal blocks then a flushed commit record.
        e = yield from rio.write(core, 0, lba=0, nblocks=2,
                                 end_of_group=True, kick=False)
        events.append(e)
        e = yield from rio.write(core, 0, lba=2, nblocks=1,
                                 end_of_group=True, flush=True)
        events.append(e)
        # Transaction 2 on another stream, concurrently.
        e = yield from rio.write(core, 1, lba=100, nblocks=1,
                                 end_of_group=True)
        events.append(e)
        yield env.all_of(events)

    env.run_until_event(env.process(app(env)))

    print("pipeline timeline:")
    print(env.tracer.render(limit=60))
    print("\nevent counts:", env.tracer.counts())
    counts = env.tracer.counts()
    assert counts["rio.sched.merge"] >= 1   # JM+JC merged (Principle 3)
    assert counts["rio.seq.release"] == 3   # in-order completion (step 9)
    assert counts["ssd.write"] >= 2
    print("\nOK: merge -> attribute append -> SSD write -> ordered release.")


if __name__ == "__main__":
    main()
