#!/usr/bin/env python3
"""Quickstart: ordered remote writes through Rio in ~60 lines.

Builds a simulated testbed (one initiator, one target with an Optane SSD
and a PMR), opens a Rio ordered block device, and submits the classic
journaling pattern — a two-block journal write followed by a commit record
with an embedded FLUSH — then shows that:

* completions are delivered in submission order (in-order completion),
* the commit record is durable when its completion fires,
* consecutive requests were merged into fewer NVMe-oF commands.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster
from repro.core.api import RioDevice
from repro.hw.ssd import OPTANE_905P
from repro.sim import Environment


def main():
    env = Environment()
    cluster = Cluster(env, target_ssds=((OPTANE_905P,),))
    rio = RioDevice(cluster, num_streams=4)  # rio_setup(4 streams)
    core = cluster.initiator.cpus.pick(0)
    completions = []

    def application(env):
        # Group 1: journal description + journaled metadata (2 blocks).
        # Requests inside a group may persist in any order relative to
        # each other, but the whole group persists before group 2.
        # kick=False stages the request in the ORDER queue so it can merge
        # with the commit record that follows (Principle 3).
        jm_done = yield from rio.write(
            core, stream_id=0, lba=0, nblocks=2,
            payload=["journal-desc", "journaled-inode"],
            end_of_group=True, kick=False,
        )
        # Group 2: the commit record; flush=True embeds a FLUSH so the
        # completion also means durability (the fsync contract).
        jc_done = yield from rio.write(
            core, stream_id=0, lba=2, nblocks=1,
            payload=["commit-record"],
            end_of_group=True, flush=True,
        )
        for name, event in (("journal-write", jm_done), ("commit", jc_done)):
            env.process(watch(env, name, event))
        yield env.all_of([jm_done, jc_done])  # rio_wait

    def watch(env, name, event):
        yield event
        completions.append((env.now * 1e6, name))

    env.run_until_event(env.process(application(env)))

    ssd = cluster.targets[0].ssds[0]
    print("completion order (in-order, time in us):")
    for when, name in completions:
        print(f"  {when:8.2f}  {name}")
    print("\ndurable blocks on the remote SSD:")
    for lba in range(3):
        print(f"  lba {lba}: {ssd.durable_payload(lba)!r}")
    print(f"\nNVMe-oF commands sent: {cluster.driver.commands_sent} "
          f"(3 blocks, merged across the group boundary)")
    print(f"ordering attributes persisted in PMR: "
          f"{len(cluster.targets[0].pmr.records())}")
    assert [name for _t, name in completions] == ["journal-write", "commit"]
    assert all(ssd.is_durable(lba) for lba in range(3))
    print("\nOK: ordered, durable, merged.")


if __name__ == "__main__":
    main()
