#!/usr/bin/env python3
"""A write-ahead-logged key-value store built directly on the ordered
block device — the BlueStore-style use case of §4.6.

Applications that manage raw block storage (no file system) can use the
``librio`` programming model to order their on-disk transactions: every
``put`` appends a log record (group k) and a commit mark (group k+1, with
FLUSH).  The example runs the same application on Rio and on the ordered
Linux stack and compares transaction throughput and latency — the gap is
the cost of synchronous ordering.

Run:  python examples/journaled_kv_store.py
"""

from repro.cluster import Cluster
from repro.hw.ssd import OPTANE_905P
from repro.sim import Environment
from repro.systems import make_stack

TRANSACTIONS = 300


class BlockKVStore:
    """Put = log record + commit mark, ordered on one stream."""

    def __init__(self, stack, stream_id=0, log_base=0):
        self.stack = stack
        self.stream_id = stream_id
        self.cursor = log_base
        self.index = {}  # key -> log lba (in-memory index, as in KVell)

    def put(self, core, key, value):
        record_lba = self.cursor
        self.cursor += 2
        # Group k: the record itself.
        rec_done = yield from self.stack.write_ordered(
            core, self.stream_id, lba=record_lba, nblocks=1,
            payload=[("record", key, value)], end_of_group=True, kick=False,
        )
        # Group k+1: the commit mark, flushed for durability.
        mark_done = yield from self.stack.write_ordered(
            core, self.stream_id, lba=record_lba + 1, nblocks=1,
            payload=[("commit", key)], end_of_group=True, flush=True,
            kick=True,
        )
        yield rec_done
        yield mark_done
        self.index[key] = record_lba


def run(system_name):
    env = Environment()
    cluster = Cluster(env, target_ssds=((OPTANE_905P,),))
    stack = make_stack(system_name, cluster, num_streams=1)
    store = BlockKVStore(stack)
    core = cluster.initiator.cpus.pick(0)
    latencies = []

    def workload(env):
        for i in range(TRANSACTIONS):
            started = env.now
            yield from store.put(core, f"key{i}", f"value{i}")
            latencies.append(env.now - started)

    env.run_until_event(env.process(workload(env)))
    elapsed = env.now
    ssd = cluster.targets[0].ssds[0]
    # Verify every committed record is durable and correctly indexed.
    for key, lba in store.index.items():
        payload = ssd.durable_payload(lba)
        assert payload is not None and payload[1] == key, (key, payload)
    return {
        "system": system_name,
        "tps": TRANSACTIONS / elapsed,
        "avg_us": sum(latencies) / len(latencies) * 1e6,
        "commands": cluster.driver.commands_sent,
    }


def main():
    print(f"{TRANSACTIONS} synchronous transactions on a remote Optane SSD\n")
    print(f"{'system':10} {'txn/s':>12} {'avg latency':>12} {'commands':>9}")
    rows = [run("linux"), run("horae"), run("rio")]
    for row in rows:
        print(f"{row['system']:10} {row['tps']:>12,.0f} "
              f"{row['avg_us']:>10.1f}us {row['commands']:>9}")
    linux, _horae, rio = rows
    print(f"\nRio speedup over ordered Linux NVMe-oF: "
          f"{rio['tps'] / linux['tps']:.1f}x "
          f"(and {linux['commands'] / rio['commands']:.1f}x fewer commands "
          f"thanks to merging)")


if __name__ == "__main__":
    main()
