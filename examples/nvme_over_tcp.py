#!/usr/bin/env python3
"""Rio over NVMe/TCP: the same ordering guarantees without RDMA.

§4.5 Principle 2 notes that "each socket of the TCP stack has a similar
in-order delivery property", so Rio's design carries over to NVMe/TCP —
with a latency and CPU tax: data is copied through the socket stack on
both ends instead of being pulled by one-sided RDMA READs.

This example runs the same ordered workload on both transports and
contrasts throughput, latency and CPU — and shows that ordering,
durability and in-order completion hold identically on TCP.

Run:  python examples/nvme_over_tcp.py
"""

from repro.cluster import Cluster
from repro.core.api import RioDevice
from repro.hw.ssd import OPTANE_905P
from repro.sim import Environment

WRITES = 400


def run(transport):
    env = Environment()
    cluster = Cluster(env, target_ssds=((OPTANE_905P,),),
                      transport=transport)
    rio = RioDevice(cluster, num_streams=1)
    core = cluster.initiator.cpus.pick(0)
    release_order = []
    latencies = []

    def app(env):
        inflight = []
        for i in range(WRITES):
            started = env.now
            done = yield from rio.write(core, 0, lba=i * 2, nblocks=1,
                                        payload=[i])
            env.process(track(env, i, started, done))
            inflight.append(done)
            if len(inflight) >= 16:
                yield env.any_of(inflight)
                inflight = [e for e in inflight if not e.triggered]
        yield env.all_of(inflight)

    def track(env, i, started, done):
        yield done
        release_order.append(i)
        latencies.append(env.now - started)

    cluster.start_cpu_window()
    env.run_until_event(env.process(app(env)))
    cluster.stop_cpu_window()
    elapsed = env.now
    ssd = cluster.targets[0].ssds[0]
    assert release_order == list(range(WRITES)), "in-order completion broke!"
    assert all(ssd.durable_payload(i * 2) == i for i in range(WRITES))
    return {
        "transport": transport,
        "kiops": WRITES / elapsed / 1e3,
        "avg_us": sum(latencies) / len(latencies) * 1e6,
        "cpu": cluster.initiator.cpus.busy_time()
        + sum(t.cpus.busy_time() for t in cluster.targets),
    }


def main():
    print(f"{WRITES} ordered 4KB writes through Rio, QD 16\n")
    print(f"{'transport':10} {'kiops':>8} {'avg lat':>10} {'cpu-seconds':>12}")
    rows = [run("rdma"), run("tcp")]
    for row in rows:
        print(f"{row['transport']:10} {row['kiops']:>8.0f} "
              f"{row['avg_us']:>8.1f}us {row['cpu'] * 1e3:>10.2f}ms")
    rdma, tcp = rows
    print(f"\nTCP pays {tcp['avg_us'] / rdma['avg_us']:.1f}x the latency and "
          f"{tcp['cpu'] / rdma['cpu']:.1f}x the CPU for the same ordered,"
          f"\ndurable, in-order-completed semantics — Principle 2 at work.")


if __name__ == "__main__":
    main()
