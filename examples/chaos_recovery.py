#!/usr/bin/env python3
"""Surviving transient faults: retries, reconnects and duplicate
suppression in action.

Two Rio streams issue ordered writes while a seeded fault plan injects
3% message loss, a queue-pair breakdown and a 150us target stall.  The
hardened initiator driver retransmits expired commands (same CID, same
ordering attribute), reconnects the broken queue pair and resubmits its
in-flight commands in order; the target's duplicate suppression makes
re-execution idempotent.  The example prints the fault/recovery trace and
then proves, from the target's audit log, that despite every
retransmission each ordered write hit the SSD exactly once and in
per-stream order — and that completions stayed in order at the initiator.

Run:  python examples/chaos_recovery.py
"""

from repro.cluster import Cluster
from repro.core.api import RioDevice
from repro.hw.ssd import OPTANE_905P
from repro.nvmeof.initiator import DriverHardening
from repro.sim import Environment, FaultPlan
from repro.sim.trace import Tracer

STREAMS = 2
GROUPS_PER_STREAM = 25


def main():
    env = Environment()
    env.tracer = Tracer(categories={"fault", "driver"})
    cluster = Cluster(
        env,
        target_ssds=((OPTANE_905P,),),
        initiator_cores=4,
        target_cores=4,
        num_qps=4,
        hardening=DriverHardening(
            command_timeout=300e-6,
            rpc_timeout=300e-6,
            max_retries=8,
            backoff=1.5,
            watch_liveness=True,  # a silent hang becomes SimDeadlock
        ),
    )
    rio = RioDevice(cluster, num_streams=STREAMS)
    plan = (
        FaultPlan(seed=11, message_loss=0.03)
        .qp_breakdown(at=120e-6, qp_index=0)
        .target_stall(at=200e-6, target_index=0, duration=150e-6)
    )
    plan.install(cluster)

    completions = []

    def writer(stream_id):
        core = cluster.initiator.cpus.pick(stream_id)
        for group in range(GROUPS_PER_STREAM):
            event = yield from rio.write(
                core, stream_id, lba=stream_id * 1_000_000 + group * 2,
                nblocks=1, payload=[(stream_id, group)],
            )
            event.callbacks.append(
                lambda _e, s=stream_id, g=group: completions.append((s, g))
            )

    writers = [env.process(writer(s)) for s in range(STREAMS)]
    env.run_until_event(env.all_of(writers), limit=50e-3)
    env.run(until=env.now + 2e-3)  # drain trailing completions/retries

    print("fault & recovery trace:")
    for record in env.tracer.events:
        if record.event in ("qp_breakdown", "target_stall", "retry",
                            "reconnect", "resubmit"):
            print(f"  {record}")

    driver = cluster.driver
    target = cluster.targets[0]
    total = STREAMS * GROUPS_PER_STREAM
    print(f"\ncompleted {len(completions)}/{total} ordered writes")
    print(f"messages dropped      : {plan.messages_dropped}")
    print(f"command retries       : {driver.retries}")
    print(f"reconnects            : {driver.reconnects}")
    print(f"commands resubmitted  : {driver.commands_resubmitted}")
    print(f"duplicates suppressed : {target.duplicates_suppressed}")

    # -- prove the invariants held ------------------------------------
    assert len(completions) == total, "forward progress lost"
    assert driver.retries + driver.commands_resubmitted > 0, \
        "the fault plan never bit — tune the seed"
    for stream in range(STREAMS):
        order = [g for s, g in completions if s == stream]
        assert order == sorted(order), f"stream {stream} completed out of order"
    assert target.duplicate_applies() == [], "a retransmit was applied twice"
    assert target.submission_order_violations() == [], \
        "per-stream SSD submission order regressed"
    driver.assert_no_leaks()
    print("\nall invariants held: in-order completion, single apply per "
          "write, no leaks")


if __name__ == "__main__":
    main()
