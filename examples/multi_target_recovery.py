#!/usr/bin/env python3
"""Crash recovery across two target servers (§4.4, Figure 6).

Twelve streams issue ordered writes striped over two target servers; power
fails on both targets mid-flight.  After restart, Rio's recovery:

1. collects surviving ordering attributes from each target's PMR,
2. rebuilds per-server lists, merges them into the global order,
3. erases every data block beyond each stream's surviving prefix.

The example then *proves* the §4.8 prefix property against the simulated
SSDs' ground truth: for every stream there is a k such that groups 1..k
are fully durable and no later group left any data behind.

Run:  python examples/multi_target_recovery.py
"""

from repro.cluster import Cluster
from repro.core.api import RioDevice
from repro.hw.ssd import OPTANE_905P
from repro.sim import Environment

STREAMS = 12
WRITES_PER_STREAM = 60
CRASH_AT = 500e-6  # mid-flight


def main():
    env = Environment()
    cluster = Cluster(env, target_ssds=((OPTANE_905P,), (OPTANE_905P,)))
    rio = RioDevice(cluster, num_streams=STREAMS)

    def writer(stream_id):
        core = cluster.initiator.cpus.pick(stream_id)
        for i in range(WRITES_PER_STREAM):
            yield from rio.write(
                core, stream_id, lba=stream_id * 1_000_000 + i * 2,
                nblocks=1, payload=[(stream_id, i + 1)],
            )

    for stream_id in range(STREAMS):
        env.process(writer(stream_id))

    env.run(until=CRASH_AT)
    print(f"t={env.now * 1e6:.0f}us: power failure on both target servers")
    for target in cluster.targets:
        target.crash()
    env.run(until=env.now + 200e-6)
    for target in cluster.targets:
        target.restart()
    print("targets restarted; running initiator recovery...")

    holder = {}

    def recover(env):
        core = cluster.initiator.cpus.pick(0)
        holder["report"] = yield from rio.recovery().run_initiator_recovery(core)

    env.run_until_event(env.process(recover(env)))
    report = holder["report"]

    print(f"\nrecovery report:")
    print(f"  attributes scanned : {report.records_scanned}")
    print(f"  rebuild time       : {report.rebuild_seconds * 1e6:.0f} us")
    print(f"  data recovery time : {report.data_recovery_seconds * 1e6:.0f} us")
    print(f"  extents discarded  : {report.discarded_extents}")

    # ---- verify the prefix property against SSD ground truth ----
    violations = 0
    for stream_id in range(STREAMS):
        prefix = report.prefixes.get(stream_id, 0)
        for i in range(WRITES_PER_STREAM):
            seq = i + 1
            vol_lba = stream_id * 1_000_000 + i * 2
            ns, local = rio.volume.locate(vol_lba)
            payload = ns.target.ssds[ns.nsid].durable_payload(local)
            if seq <= prefix and payload != (stream_id, seq):
                violations += 1
            if seq > prefix and payload is not None:
                violations += 1
    print(f"\nper-stream surviving prefixes: "
          f"{[report.prefixes.get(s, 0) for s in range(STREAMS)]}")
    print(f"prefix-property violations: {violations}")
    assert violations == 0
    print("OK: every post-crash state is a valid ordered prefix (§4.8).")


if __name__ == "__main__":
    main()
