#!/usr/bin/env python3
"""Ext4 vs HoraeFS vs RioFS on an fsync-heavy workload (§6.3).

Mounts each of the three file systems on a remote Optane SSD, runs eight
threads of 4 KB append + fsync to private files, and prints throughput and
fsync latency plus the Figure-14-style dispatch breakdown — showing where
each stack loses time (Ext4: synchronous waits between D, JM and JC;
HoraeFS: control-path round trips; RioFS: everything flows through the
ORDER queue immediately).

Run:  python examples/filesystem_comparison.py
"""

from repro.fs import make_filesystem
from repro.harness.experiment import build_cluster

THREADS = 8
DURATION = 5e-3


def run(kind):
    cluster = build_cluster("optane")
    fs = make_filesystem(kind, cluster)
    env = cluster.env
    completed = [0]

    def worker(thread_id):
        core = cluster.initiator.cpus.pick(thread_id)
        file = yield from fs.create(core, f"file{thread_id}")
        while env.now < DURATION:
            yield from fs.append(core, file, nblocks=1)
            yield from fs.fsync(core, file, thread_id=thread_id)
            completed[0] += 1

    for thread_id in range(THREADS):
        env.process(worker(thread_id))
    env.run(until=DURATION)

    breakdowns = [b for j in fs.journals for b in j.breakdowns]
    n = max(1, len(breakdowns))
    return {
        "fs": kind,
        "kops": completed[0] / DURATION / 1e3,
        "avg_us": fs.fsync_latency.mean * 1e6,
        "p99_us": fs.fsync_latency.p99 * 1e6,
        "jm_us": sum(b.jm_dispatched - b.started for b in breakdowns) / n * 1e6,
        "jc_us": sum(b.jc_dispatched - b.started for b in breakdowns) / n * 1e6,
    }


def main():
    print(f"{THREADS} threads x (4KB append + fsync), remote Optane SSD\n")
    header = (f"{'fs':8} {'fsync/s':>9} {'avg':>9} {'p99':>9} "
              f"{'JM dispatch':>12} {'JC dispatch':>12}")
    print(header)
    print("-" * len(header))
    rows = [run(kind) for kind in ("ext4", "horaefs", "riofs")]
    for row in rows:
        print(f"{row['fs']:8} {row['kops'] * 1e3:>9,.0f} "
              f"{row['avg_us']:>7.1f}us {row['p99_us']:>7.1f}us "
              f"{row['jm_us']:>10.1f}us {row['jc_us']:>10.1f}us")
    ext4, horaefs, riofs = rows
    print(f"\nRioFS vs Ext4:    {riofs['kops'] / ext4['kops']:.1f}x "
          f"throughput, {100 * (1 - riofs['avg_us'] / ext4['avg_us']):.0f}% "
          f"lower fsync latency")
    print(f"RioFS vs HoraeFS: {riofs['kops'] / horaefs['kops']:.2f}x "
          f"throughput, {100 * (1 - riofs['p99_us'] / horaefs['p99_us']):.0f}% "
          f"lower p99")
    print("\nThe JC-dispatch column is the Figure 14 story: Ext4 waits for "
          "two full\nround trips before the commit record leaves the file "
          "system; HoraeFS waits\nfor its control path; RioFS dispatches it "
          "immediately into the ORDER queue.")


if __name__ == "__main__":
    main()
