"""Rio (EuroSys '23) full-stack reproduction.

A deterministic discrete-event simulation of order-preserving remote
storage access: the NVMe-over-Fabrics stack, RDMA/TCP fabric, SSD/PMR
device models, the compared ordering systems (orderless, Linux, HORAE,
BarrierFS-style, and Rio itself), journaling file systems, application
workloads, and a harness that regenerates every figure of the paper's
evaluation.

Quick tour::

    from repro.cluster import Cluster
    from repro.core.api import RioDevice
    from repro.hw.ssd import OPTANE_905P
    from repro.sim import Environment

    env = Environment()
    cluster = Cluster(env, target_ssds=((OPTANE_905P,),))
    rio = RioDevice(cluster, num_streams=4)

See README.md, DESIGN.md and ``python -m repro list``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
