"""The tenant traffic plane the load generators layer over.

:class:`TenantTrafficPlane` bundles the three tenant-facing concerns the
generators in :mod:`repro.scale.loadgen` accept as their ``plane`` hook:

* **who** — Zipf-skewed member pick within each generator lane's stream
  (:meth:`pick`), so a few hot tenants dominate each stream the way
  production multi-tenant arrival logs do;
* **when** — diurnal thinning of peak-rate Poisson arrivals
  (:meth:`keep`), an exact rate modulation;
* **how it went** — per-class tail-latency accounting (:meth:`record`),
  p50/p99/p999 per ``gold``/``silver``/``bronze`` class over the
  log-bucketed histograms of :mod:`repro.sim.obs`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.rng import DeterministicRNG
from repro.tenants.directory import (
    ClassAccountant,
    DiurnalProfile,
    TenantDirectory,
)

__all__ = ["TenantTrafficPlane"]


class TenantTrafficPlane:
    """Directory + diurnal profile + per-class accounting, as one hook."""

    def __init__(
        self,
        directory: TenantDirectory,
        diurnal: Optional[DiurnalProfile] = None,
        accountant: Optional[ClassAccountant] = None,
    ):
        self.directory = directory
        self.diurnal = diurnal if diurnal is not None else DiurnalProfile()
        self.accountant = (
            accountant if accountant is not None
            else ClassAccountant(directory.classes)
        )
        self.ops_by_class: Dict[str, int] = {}

    # -- generator hooks ---------------------------------------------------

    def peak_factor(self) -> float:
        return self.diurnal.peak_factor()

    def keep(self, rng: DeterministicRNG, now: float) -> bool:
        return self.diurnal.keep(rng, now)

    def pick(self, stream: int, rng: DeterministicRNG) -> int:
        return self.directory.pick_member(
            stream % self.directory.num_streams, rng)

    def record(self, tenant: int, latency_s: float) -> None:
        name = self.directory.class_name_of(tenant)
        self.accountant.record(name, latency_s)
        self.ops_by_class[name] = self.ops_by_class.get(name, 0) + 1

    # -- results -----------------------------------------------------------

    def class_summary(self) -> Dict[str, Dict[str, float]]:
        return self.accountant.summary()
