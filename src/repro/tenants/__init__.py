"""Multi-tenant traffic plane (ROADMAP item 1).

Maps large tenant populations onto the scale-out plane's streams, gives
each tenant a service class with an SLO, skews arrivals (Zipf) and
modulates rates over virtual time (diurnal), and accounts tail latency
per class.  QoS *enforcement* (token buckets + weighted-fair deficits)
lives in :mod:`repro.robust.admission`; this package provides the
directory those mechanisms consult.
"""

from repro.tenants.directory import (
    CLASS_NAMES,
    DEFAULT_CLASSES,
    ClassAccountant,
    DiurnalProfile,
    TenantClass,
    TenantDirectory,
    zipf_rank,
)
from repro.tenants.traffic import TenantTrafficPlane

__all__ = [
    "CLASS_NAMES",
    "DEFAULT_CLASSES",
    "ClassAccountant",
    "DiurnalProfile",
    "TenantClass",
    "TenantDirectory",
    "TenantTrafficPlane",
    "zipf_rank",
]
