"""Tenant directory: classes, stream placement, Zipf skew, diurnal rates.

The scale-out plane (PR 5) shards ordered streams across initiator
nodes by congruence; this module applies the same trick one level up and
maps a tenant population — thousands to millions — onto those streams
with a *seeded affine congruence*::

    stream(t) = (a * t + b) mod S        (a coprime with S)

so placement is a bijection per residue class, O(1) to evaluate, and
fully determined by the experiment seed.  Popularity is Zipfian over a
seeded rank permutation, rates breathe with a diurnal profile, and each
tenant belongs to one of a few service classes (``gold``/``silver``/
``bronze``) carrying an SLO target and a fair-share weight.

Everything here is pure bookkeeping: no simulation state, no I/O.  The
load generators consult the directory to pick and tag tenants; the
target-side QoS admission (:mod:`repro.robust.admission`) consults it to
resolve a tenant's class, weight and token-bucket parameters.
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_left
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim.obs.metrics import Histogram
from repro.sim.rng import DeterministicRNG

__all__ = [
    "CLASS_NAMES",
    "DEFAULT_CLASSES",
    "ClassAccountant",
    "DiurnalProfile",
    "TenantClass",
    "TenantDirectory",
    "zipf_rank",
]

#: Exact inverse-CDF head size; ranks past this use a closed-form tail.
_ZIPF_HEAD = 65536


@dataclass(frozen=True)
class TenantClass:
    """One service class: fair-share weight, SLO, and pacing parameters.

    ``weight``          — weighted-fair-queueing share (admission deficit
                          grows as 1/weight per admitted command).
    ``slo_p999_us``     — the class SLO: 99.9th percentile latency bound
                          in microseconds, asserted by the harness.
    ``share``           — fraction of the tenant population in this class.
    ``rate_iops``       — per-tenant token-bucket refill rate (None = no
                          per-tenant pacing for this class).
    ``burst``           — token-bucket depth in commands.
    """

    name: str
    weight: float = 1.0
    slo_p999_us: float = 10_000.0
    share: float = 1.0
    rate_iops: Optional[float] = None
    burst: float = 32.0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("class weight must be positive")
        if not 0.0 < self.share <= 1.0:
            raise ValueError("class share must be in (0, 1]")
        if self.burst < 1.0:
            raise ValueError("token-bucket burst must hold >= 1 command")


#: The default three-class split: a small gold population with a tight
#: SLO and a large weight, a silver middle, and a bronze bulk that the
#: fair scheduler may pace hard under contention.
DEFAULT_CLASSES: Tuple[TenantClass, ...] = (
    TenantClass("gold", weight=8.0, slo_p999_us=2_000.0, share=0.1),
    TenantClass("silver", weight=3.0, slo_p999_us=5_000.0, share=0.3),
    TenantClass("bronze", weight=1.0, slo_p999_us=20_000.0, share=0.6),
)

CLASS_NAMES: Tuple[str, ...] = tuple(c.name for c in DEFAULT_CLASSES)


@lru_cache(maxsize=32)
def _zipf_cdf(n: int, alpha: float) -> Tuple[Tuple[float, ...], float]:
    """Cumulative head weights and tail mass for Zipf(``alpha``, ``n``)."""
    head = min(n, _ZIPF_HEAD)
    cum: List[float] = []
    running = 0.0
    for rank in range(head):
        running += 1.0 / (rank + 1) ** alpha
        cum.append(running)
    return tuple(cum), _zipf_tail_mass(head, n, alpha)


def zipf_rank(u: float, n: int, alpha: float) -> int:
    """Inverse CDF of a Zipf(``alpha``) law over ranks ``0..n-1``.

    Exact for ranks below :data:`_ZIPF_HEAD`; the (vanishingly light)
    tail mass beyond the head is estimated in closed form and spread
    uniformly, which keeps huge populations O(head) in time and memory.
    """
    if n < 1:
        raise ValueError("need at least one rank")
    if not 0.0 <= u < 1.0:
        raise ValueError("u must be in [0, 1)")
    cum, tail = _zipf_cdf(n, alpha)
    head = len(cum)
    target = u * (cum[-1] + tail)
    if target < cum[-1]:
        return bisect_left(cum, target)
    if n <= head:
        return n - 1
    frac = (target - cum[-1]) / tail if tail > 0 else 0.0
    return min(n - 1, head + int(frac * (n - head)))


def _zipf_tail_mass(head: int, n: int, alpha: float) -> float:
    """Closed-form estimate of ``sum_{k=head+1}^{n} k**-alpha``."""
    if n <= head:
        return 0.0
    if alpha == 1.0:
        return math.log(n / head)
    return (n ** (1.0 - alpha) - head ** (1.0 - alpha)) / (1.0 - alpha)


@dataclass(frozen=True)
class DiurnalProfile:
    """Sinusoidal rate modulation: ``factor(t)`` in [1-A, 1+A].

    The generators draw arrivals at the *peak* rate and thin them by
    ``factor(t) / (1 + amplitude)`` — deterministic given a forked RNG,
    and exact (a thinned Poisson process is a Poisson process at the
    thinned rate).
    """

    amplitude: float = 0.0
    period: float = 1e-3
    phase: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("diurnal period must be positive")

    def factor(self, now: float) -> float:
        if self.amplitude == 0.0:
            return 1.0
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * now / self.period + self.phase)

    def peak_factor(self) -> float:
        return 1.0 + self.amplitude

    def keep(self, rng: DeterministicRNG, now: float) -> bool:
        """Thinning decision for an arrival drawn at the peak rate."""
        if self.amplitude == 0.0:
            return True
        return rng.random() < self.factor(now) / self.peak_factor()


class TenantDirectory:
    """Seeded map from a tenant population to streams and classes."""

    def __init__(
        self,
        num_tenants: int,
        num_streams: int,
        classes: Sequence[TenantClass] = DEFAULT_CLASSES,
        seed: int = 42,
        zipf_alpha: float = 1.1,
    ):
        if num_tenants < 1:
            raise ValueError("need at least one tenant")
        if num_streams < 1:
            raise ValueError("need at least one stream")
        if not classes:
            raise ValueError("need at least one tenant class")
        shares = sum(c.share for c in classes)
        if abs(shares - 1.0) > 1e-9:
            raise ValueError(f"class shares must sum to 1 (got {shares})")
        self.num_tenants = num_tenants
        self.num_streams = num_streams
        self.classes = tuple(classes)
        self.seed = int(seed)
        self.zipf_alpha = zipf_alpha
        rng = DeterministicRNG(seed).fork("tenant-directory")
        self._a = self._coprime(rng, num_streams)
        self._b = rng.randint(0, num_streams - 1)
        # Independent affine bijection tenant-id <-> popularity rank, so
        # the hottest tenants are scattered over streams and classes.
        self._ra = self._coprime(rng, num_tenants)
        self._rb = rng.randint(0, num_tenants - 1)
        self._by_name: Dict[str, TenantClass] = {
            c.name: c for c in self.classes}
        self._class_cdf: List[float] = []
        running = 0.0
        for c in self.classes:
            running += c.share
            self._class_cdf.append(running)
        self._class_cdf[-1] = 1.0

    @staticmethod
    def _coprime(rng: DeterministicRNG, modulus: int) -> int:
        """A seeded multiplier coprime with ``modulus`` (1 if modulus=1)."""
        if modulus == 1:
            return 1
        while True:
            a = rng.randint(1, modulus - 1)
            if math.gcd(a, modulus) == 1:
                return a

    # -- placement ---------------------------------------------------------

    def stream_of(self, tenant: int) -> int:
        """The global ShardedStack stream carrying ``tenant``'s I/O."""
        self._check(tenant)
        return (self._a * tenant + self._b) % self.num_streams

    def tenants_of_stream(self, stream: int, limit: int = 64) -> Iterator[int]:
        """Up to ``limit`` member tenants of ``stream`` (residue class)."""
        if not 0 <= stream < self.num_streams:
            raise ValueError(f"stream {stream} out of range")
        inv = pow(self._a, -1, self.num_streams)
        first = (inv * (stream - self._b)) % self.num_streams
        count = 0
        for tenant in range(first, self.num_tenants, self.num_streams):
            if count >= limit:
                return
            yield tenant
            count += 1

    def member_count(self, stream: int) -> int:
        inv = pow(self._a, -1, self.num_streams)
        first = (inv * (stream - self._b)) % self.num_streams
        if first >= self.num_tenants:
            return 0
        return 1 + (self.num_tenants - 1 - first) // self.num_streams

    # -- classes -----------------------------------------------------------

    def class_of(self, tenant: int) -> TenantClass:
        """Deterministic class assignment by seeded hash partition."""
        self._check(tenant)
        digest = hashlib.blake2b(
            f"{self.seed}:class:{tenant}".encode("ascii"),
            digest_size=8).digest()
        u = int.from_bytes(digest, "little") / 2 ** 64
        for cum, cls in zip(self._class_cdf, self.classes):
            if u < cum:
                return cls
        return self.classes[-1]

    def class_named(self, name: str) -> TenantClass:
        return self._by_name[name]

    def class_name_of(self, tenant: int) -> str:
        return self.class_of(tenant).name

    # -- popularity --------------------------------------------------------

    def tenant_at_rank(self, rank: int) -> int:
        """Popularity rank (0 = hottest) -> tenant id."""
        if not 0 <= rank < self.num_tenants:
            raise ValueError(f"rank {rank} out of range")
        return (self._ra * rank + self._rb) % self.num_tenants

    def pick(self, rng: DeterministicRNG) -> int:
        """Draw a tenant Zipf-skewed by popularity rank."""
        rank = zipf_rank(rng.random(), self.num_tenants, self.zipf_alpha)
        return self.tenant_at_rank(rank)

    def pick_member(self, stream: int, rng: DeterministicRNG) -> int:
        """Draw a tenant of ``stream``, Zipf-skewed within its members."""
        members = self.member_count(stream)
        if members == 0:
            raise ValueError(f"stream {stream} carries no tenants")
        rank = zipf_rank(rng.random(), members, self.zipf_alpha)
        inv = pow(self._a, -1, self.num_streams)
        first = (inv * (stream - self._b)) % self.num_streams
        return first + rank * self.num_streams

    def stream_weights(self) -> List[float]:
        """Per-stream popularity mass (normalized to sum 1).

        Exact over the Zipf head, with the tail mass spread uniformly —
        the same split :func:`zipf_rank` samples from.
        """
        head = min(self.num_tenants, _ZIPF_HEAD)
        masses = [0.0] * self.num_streams
        for rank in range(head):
            w = 1.0 / (rank + 1) ** self.zipf_alpha
            masses[self.stream_of(self.tenant_at_rank(rank))] += w
        tail = _zipf_tail_mass(head, self.num_tenants, self.zipf_alpha)
        if tail > 0:
            for stream in range(self.num_streams):
                masses[stream] += tail / self.num_streams
        total = sum(masses)
        return [m / total for m in masses]

    def _check(self, tenant: int) -> None:
        if not 0 <= tenant < self.num_tenants:
            raise ValueError(f"tenant {tenant} out of range")

    def __repr__(self) -> str:
        return (f"<TenantDirectory {self.num_tenants} tenants -> "
                f"{self.num_streams} streams, alpha={self.zipf_alpha}>")


class ClassAccountant:
    """Per-class tail-latency accounting over log-bucketed histograms."""

    def __init__(self, classes: Sequence[TenantClass] = DEFAULT_CLASSES):
        self.histograms: Dict[str, Histogram] = {
            c.name: Histogram() for c in classes}

    def record(self, class_name: str, latency_s: float) -> None:
        hist = self.histograms.get(class_name)
        if hist is None:
            hist = self.histograms[class_name] = Histogram()
        hist.observe(latency_s)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{class: {count, mean_us, p50_us, p99_us, p999_us}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            out[name] = {
                "count": float(hist.count),
                "mean_us": hist.mean * 1e6,
                "p50_us": hist.percentile(0.50) * 1e6,
                "p99_us": hist.percentile(0.99) * 1e6,
                "p999_us": hist.percentile(0.999) * 1e6,
            }
        return out
