"""Opt-in event tracing for the simulation.

Attach a :class:`Tracer` to an :class:`~repro.sim.engine.Environment`
(``env.tracer = Tracer()``) and instrumented components emit structured
events: SSD command service, the Rio target's in-order gate, scheduler
merges, sequencer releases.  With no tracer attached the instrumentation
is a single attribute check on the hot path.

Example::

    env = Environment()
    env.tracer = Tracer(categories={"rio.gate", "ssd"})
    ... run ...
    print(env.tracer.render(limit=50))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One instrumented occurrence."""

    time: float
    category: str
    event: str
    fields: tuple  # sorted (key, value) pairs

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"{self.time * 1e6:10.2f}us  {self.category:<12} {self.event:<18} {details}"


class Tracer:
    """Collects :class:`TraceEvent` records, optionally filtered."""

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 capacity: int = 100_000):
        #: None = record everything; otherwise only these categories.
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None
        )
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def emit(self, time: float, category: str, event: str, **fields) -> None:
        if not self.wants(category):
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(
                time=time,
                category=category,
                event=event,
                fields=tuple(sorted(fields.items())),
            )
        )

    # -- querying ----------------------------------------------------------

    def select(self, category: Optional[str] = None,
               event: Optional[str] = None) -> List[TraceEvent]:
        return [
            e
            for e in self.events
            if (category is None or e.category == category)
            and (event is None or e.event == event)
        ]

    def counts(self) -> Dict[str, int]:
        """Event counts keyed by 'category.event'."""
        out: Dict[str, int] = {}
        for e in self.events:
            key = f"{e.category}.{e.event}"
            out[key] = out.get(key, 0) + 1
        return out

    def render(self, limit: int = 100) -> str:
        """First ``limit`` events, one line each, e.g.::

                 12.40us  ssd          write              dev=ssd0 lba=8 n=1
                 13.10us  rio.gate     admit              pos=0 stream=1

        (microsecond timestamp, category, event, then sorted ``key=value``
        fields), followed by truncation/drop summaries when applicable.
        """
        lines = [str(e) for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (capacity)")
        return "\n".join(lines)
