"""Deterministic random number generation for reproducible experiments.

All stochastic behaviour in the simulation (device latency jitter, crash
injection points, workload key choice) draws from a
:class:`DeterministicRNG` seeded from the experiment configuration, so every
run of a benchmark produces identical virtual-time results.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["DeterministicRNG"]


class DeterministicRNG:
    """A seeded random source with named sub-streams.

    Sub-streams (``rng.fork("ssd0")``) let independent components draw
    numbers without perturbing each other's sequences, which keeps results
    stable when one component is reconfigured.
    """

    def __init__(self, seed: int = 42):
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def fork(self, name: str) -> "DeterministicRNG":
        """A new independent RNG derived from this seed and ``name``.

        The derivation hashes the full ``(seed, name)`` pair.  The old
        affine scheme (``seed * K + hash_str(name)``) was invertible in the
        seed, so for any two names there existed seed pairs whose forks
        collided exactly; two components could then share one latency
        stream and correlate "independent" jitter.
        """
        digest = hashlib.blake2b(
            str(self.seed).encode("ascii") + b"\0" + name.encode("utf-8"),
            digest_size=8,
        ).digest()
        derived = int.from_bytes(digest, "little") & 0x7FFF_FFFF_FFFF_FFFF
        return DeterministicRNG(derived)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Inclusive on both ends, like :func:`random.randint`."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def shuffle(self, items: List) -> None:
        self._random.shuffle(items)

    def jitter(self, base: float, fraction: float = 0.05) -> float:
        """``base`` perturbed by up to ±``fraction`` of itself."""
        if base == 0.0:
            return 0.0
        return base * self._random.uniform(1.0 - fraction, 1.0 + fraction)


def hash_str(text: str) -> int:
    """A stable (non-salted) string hash, unlike built-in ``hash``."""
    value = 1469598103934665603  # FNV-1a 64-bit offset basis
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) & 0xFFFF_FFFF_FFFF_FFFF
    return value
