"""Lifecycle spans: open/close intervals forming per-request trees.

A :class:`Span` is one timed interval of a request's life in one layer
(``fs.journal``, ``block.mq``, ``initiator.queue``, ``fabric.transfer``,
``target.admit``, ``ssd.service``, ``completion``).  Instrumented
components open a span when a request enters the layer and close it when
the layer is done with it; the ``parent`` link makes the collection a
forest of per-request trees.

The recorder enforces interval nesting *by construction* so the span tree
is always well-formed, even under fault injection:

* opening a child after its parent already closed detaches the child into
  a root span tagged ``late=1`` (e.g. a retransmitted command arriving at
  the target after a duplicate ack already completed the original);
* closing a child after its (closed) parent's end detaches it and tags it
  ``escaped=1`` (e.g. a gate-stalled twin that outlives the fabric span).

On fault-free runs neither tag ever appears — the property suite asserts
exactly that, which is what actually tests instrumentation ordering.

Every close feeds a ``span.<name>.seconds`` histogram in the owning
:class:`~repro.sim.obs.metrics.MetricsRegistry`, and both open and close
are mirrored through the existing ``env.tracer`` hook (category ``span``)
so span activity shows up in ordinary event traces.  With no observability
attached, the instrumentation in the hot paths is a single attribute
check (``env.obs is None``), schedules no events and draws no RNG — sim
timing is bit-identical to an uninstrumented run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "SpanRecorder"]


@dataclass
class Span:
    """One open/close interval in a request's lifecycle tree."""

    sid: int
    name: str
    start: float
    parent: Optional["Span"] = None
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    @property
    def parent_sid(self) -> int:
        return self.parent.sid if self.parent is not None else 0

    def __repr__(self) -> str:
        state = f"end={self.end!r}" if self.closed else "open"
        return f"<Span {self.sid} {self.name} start={self.start!r} {state}>"


class SpanRecorder:
    """Collects spans; capacity-bounded like :class:`repro.sim.trace.Tracer`.

    Beyond ``capacity`` spans the recorder stops *storing* (counting drops)
    but keeps returning live :class:`Span` objects so open/close chains and
    parent links of in-flight requests still work.
    """

    def __init__(self, env, capacity: int = 500_000, metrics=None):
        self.env = env
        self.capacity = capacity
        self.metrics = metrics
        self.spans: List[Span] = []
        self.dropped = 0
        self._sids = count(1)

    # -- recording ---------------------------------------------------------

    def open(self, name: str, parent: Optional[Span] = None, **attrs) -> Span:
        now = self.env.now
        if parent is not None and parent.closed and now > parent.end:
            # The parent interval is already over: a retransmission or
            # replay arriving late.  Root it so nesting stays invariant.
            attrs["late"] = 1
            parent = None
        span = Span(sid=next(self._sids), name=name, start=now,
                    parent=parent, attrs=attrs)
        if len(self.spans) < self.capacity:
            self.spans.append(span)
        else:
            self.dropped += 1
        self.env.trace("span", "open", sid=span.sid, name=name,
                       parent=span.parent_sid)
        return span

    def close(self, span: Optional[Span], **attrs) -> None:
        """Close ``span`` now (no-op for ``None`` or already-closed spans)."""
        if span is None or span.closed:
            return
        span.end = self.env.now
        if attrs:
            span.attrs.update(attrs)
        parent = span.parent
        if parent is not None and parent.closed and span.end > parent.end:
            # Outlived its parent (possible only under faults): detach so
            # child-nested-in-parent holds for every parented span.
            span.parent = None
            span.attrs["escaped"] = 1
        if self.metrics is not None:
            self.metrics.observe(f"span.{span.name}.seconds",
                                 span.end - span.start)
        self.env.trace("span", "close", sid=span.sid, name=span.name)

    # -- querying ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if not s.closed]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent is span]

    def walk(self, span: Span) -> Iterator[Span]:
        """Depth-first traversal of ``span``'s subtree (including itself)."""
        yield span
        for child in self.children_of(span):
            yield from self.walk(child)
