"""Metrics registry: counters, gauges and log-bucketed histograms.

Three metric kinds, mirroring the usual time-series vocabulary:

* **counters** — monotonically accumulated values (``inc``): messages
  delivered, journal commits, fabric bytes;
* **gauges** — instantaneous values.  Most gauges here are *provider*
  gauges: components register a zero-argument callable at construction
  time (``register_gauge``), so reading per-layer queue depth or per-CPU
  busy time costs nothing on the hot path and is always current at
  snapshot time;
* **histograms** — log-bucketed distributions (``observe``): span
  durations land here automatically via the
  :class:`~repro.sim.obs.spans.SpanRecorder`.

``snapshot()`` evaluates every provider at the current sim time and
returns a plain-dict view suitable for export (CSV/JSON) or assertions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

__all__ = ["Histogram", "MetricsRegistry"]


def _default_bounds() -> List[float]:
    # Quarter-decade geometric buckets from 1 ns to 100 s — wide enough
    # for any virtual-time duration this simulation produces.
    bounds = []
    value = 1e-9
    factor = 10 ** 0.25
    while value < 100.0:
        bounds.append(value)
        value *= factor
    return bounds


class Histogram:
    """A fixed-bucket log histogram with exact count/total/min/max."""

    def __init__(self, bounds: Optional[List[float]] = None):
        self.bounds = list(bounds) if bounds is not None else _default_bounds()
        self.counts = [0] * (len(self.bounds) + 1)  # last = overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bucket whose bound is >= value
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile: the upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("percentile q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0.0
        for index, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max if self.max is not None else 0.0
        return self.max if self.max is not None else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms for one environment.

    Registration is idempotent by name (last registration wins), so
    rebuilding a component on the same environment simply re-points the
    gauge at the live instance.
    """

    def __init__(self, env):
        self.env = env
        self.counters: Dict[str, float] = {}
        self._gauges: Dict[str, Union[float, Callable[[], float]]] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- counters ----------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    # -- gauges ------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def register_gauge(self, name: str, provider: Callable[[], float]) -> None:
        """Install a zero-argument callable evaluated at snapshot time."""
        self._gauges[name] = provider

    def gauge(self, name: str) -> float:
        value = self._gauges.get(name, 0.0)
        return value() if callable(value) else value

    def gauge_names(self) -> List[str]:
        return sorted(self._gauges)

    # -- histograms --------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Evaluate everything at the current sim time; plain-dict view."""
        return {
            "time": self.env.now,
            "counters": dict(sorted(self.counters.items())),
            "gauges": {name: self.gauge(name) for name in self.gauge_names()},
            "histograms": {
                name: hist.summary()
                for name, hist in sorted(self.histograms.items())
            },
        }
