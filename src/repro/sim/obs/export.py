"""Exporters: Chrome ``trace_event`` JSON and flat CSV/JSON metrics dumps.

The Chrome trace uses the JSON Object Format (``{"traceEvents": [...]}``)
with complete ("X") events — one per closed span, timestamps in
microseconds as the format requires — plus instant ("i") events for any
attached :class:`~repro.sim.trace.Tracer` and process-name metadata so
``chrome://tracing`` / Perfetto group rows by host (initiator vs each
target).  ``pid`` is the host a span ran on; ``tid`` is the stream or
queue pair when known.

``validate_chrome_trace`` checks a document against
:data:`CHROME_TRACE_SCHEMA` — via ``jsonschema`` when available, with an
equivalent manual structural check otherwise (the container image may not
ship ``jsonschema``).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Optional

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "metrics_rows",
    "metrics_csv",
    "metrics_json",
]

_EVENT_PHASES = ("X", "B", "E", "i", "I", "M", "C")

CHROME_TRACE_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "ts", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"type": "string", "enum": list(_EVENT_PHASES)},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "pid": {"type": ["string", "integer"]},
                    "tid": {"type": ["string", "integer"]},
                    "cat": {"type": "string"},
                    "s": {"type": "string"},
                    "args": {"type": "object"},
                },
                "if": {"properties": {"ph": {"const": "X"}}},
                "then": {"required": ["dur"]},
            },
        },
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
    },
}


def _span_pid(span) -> str:
    return str(span.attrs.get("host", "sim"))


def _span_tid(span) -> Any:
    for key in ("stream", "qp", "core", "dev"):
        if key in span.attrs:
            return f"{key}{span.attrs[key]}" if key != "dev" else str(span.attrs[key])
    return 0


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def chrome_trace(obs, tracer=None) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from an
    :class:`~repro.sim.obs.Observability` (open spans are skipped —
    export after the workload has quiesced)."""
    events: List[Dict[str, Any]] = []
    hosts = set()
    for span in obs.spans.spans:
        if not span.closed:
            continue
        pid = _span_pid(span)
        hosts.add(pid)
        args = {k: _jsonable(v) for k, v in sorted(span.attrs.items())
                if k != "host"}
        args["sid"] = span.sid
        args["parent"] = span.parent_sid
        events.append({
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": (span.end - span.start) * 1e6,
            "pid": pid,
            "tid": _span_tid(span),
            "args": args,
        })
    if tracer is not None:
        for event in tracer.events:
            events.append({
                "name": f"{event.category}.{event.event}",
                "cat": event.category,
                "ph": "i",
                "s": "g",
                "ts": event.time * 1e6,
                "pid": "sim",
                "tid": 0,
                "args": {k: _jsonable(v) for k, v in event.fields},
            })
        hosts.add("sim")
    metadata = [
        {"name": "process_name", "ph": "M", "ts": 0, "pid": host, "tid": 0,
         "args": {"name": host}}
        for host in sorted(hosts)
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(obs, path: str, tracer=None) -> Dict[str, Any]:
    doc = chrome_trace(obs, tracer=tracer)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return doc


def validate_chrome_trace(doc: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid trace_event document."""
    try:
        import jsonschema
    except ImportError:
        jsonschema = None
    if jsonschema is not None:
        try:
            jsonschema.validate(doc, CHROME_TRACE_SCHEMA)
        except jsonschema.ValidationError as exc:
            raise ValueError(f"invalid Chrome trace: {exc.message}") from exc
        return
    # Manual fallback mirroring CHROME_TRACE_SCHEMA.
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("invalid Chrome trace: missing traceEvents")
    if not isinstance(doc["traceEvents"], list):
        raise ValueError("invalid Chrome trace: traceEvents must be a list")
    for index, event in enumerate(doc["traceEvents"]):
        if not isinstance(event, dict):
            raise ValueError(f"invalid Chrome trace: event {index} not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(
                    f"invalid Chrome trace: event {index} missing {key!r}"
                )
        if event["ph"] not in _EVENT_PHASES:
            raise ValueError(
                f"invalid Chrome trace: event {index} has bad phase "
                f"{event['ph']!r}"
            )
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError(f"invalid Chrome trace: event {index} bad ts")
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError(f"invalid Chrome trace: event {index} X needs dur")


# ----------------------------------------------------------------------
# Flat metrics dumps
# ----------------------------------------------------------------------

_ROW_FIELDS = ["name", "kind", "value", "count", "total", "mean", "min",
               "max", "p50", "p99"]


def metrics_rows(registry, snapshot: Optional[Dict[str, Any]] = None
                 ) -> List[Dict[str, Any]]:
    """One flat row per metric (counters, gauges, histogram summaries)."""
    snap = snapshot if snapshot is not None else registry.snapshot()
    rows: List[Dict[str, Any]] = []
    for name, value in snap["counters"].items():
        rows.append({"name": name, "kind": "counter", "value": value})
    for name, value in snap["gauges"].items():
        rows.append({"name": name, "kind": "gauge", "value": value})
    for name, summary in snap["histograms"].items():
        row = {"name": name, "kind": "histogram"}
        row.update(summary)
        rows.append(row)
    return rows


def metrics_csv(registry, snapshot: Optional[Dict[str, Any]] = None) -> str:
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=_ROW_FIELDS, restval="")
    writer.writeheader()
    for row in metrics_rows(registry, snapshot):
        writer.writerow(row)
    return out.getvalue()


def metrics_json(registry, snapshot: Optional[Dict[str, Any]] = None) -> str:
    snap = snapshot if snapshot is not None else registry.snapshot()
    return json.dumps(snap, indent=1, sort_keys=True)
