"""Request-lifecycle observability: spans, metrics, exporters.

Attach an :class:`Observability` to an environment **before** building the
cluster/stack and every bio/command grows a lifecycle span tree::

    fs.journal
    └── block.mq                (one per bio)
        ├── initiator.queue     (one per request fragment; ends at dispatch)
        └── fabric.transfer     (one per NVMe-oF command)
            ├── target.admit    (target-side processing incl. gate stalls)
            │   └── ssd.service (one per DiskIO actually submitted)
            └── completion      (initiator completion-interrupt path)

while components publish counters/gauges/histograms into the attached
:class:`~repro.sim.obs.metrics.MetricsRegistry`.  Usage::

    env = Environment()
    obs = Observability(env)            # attaches as env.obs
    cluster = Cluster(env, ...)         # components register gauges
    ... run a workload ...
    obs.spans.by_name("ssd.service")    # query the span forest
    obs.metrics.snapshot()              # point-in-time metrics view

With no observability attached (``env.obs is None``, the default) every
instrumentation site is a single attribute check: no events, no RNG, no
allocation — simulation behavior is bit-identical to the uninstrumented
engine (the zero-overhead equivalence suite enforces this).

Exporters live in :mod:`repro.sim.obs.export` (Chrome ``trace_event``
JSON, CSV/JSON metrics) and are wired into ``python -m repro trace`` /
``python -m repro metrics``.
"""

from __future__ import annotations

from repro.sim.obs.metrics import Histogram, MetricsRegistry
from repro.sim.obs.spans import Span, SpanRecorder

__all__ = ["Observability", "Span", "SpanRecorder", "Histogram",
           "MetricsRegistry"]


class Observability:
    """Span recorder + metrics registry for one environment."""

    def __init__(self, env, capacity: int = 500_000, attach: bool = True):
        self.env = env
        self.metrics = MetricsRegistry(env)
        self.spans = SpanRecorder(env, capacity=capacity, metrics=self.metrics)
        if attach:
            env.obs = self

    def detach(self) -> None:
        if getattr(self.env, "obs", None) is self:
            self.env.obs = None
