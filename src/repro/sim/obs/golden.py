"""Canonical span serialization and golden-trace digests.

A golden trace is the sha256 over a canonical one-line-per-span rendering
of the recorder.  The digest is stable across pytest orderings and Python
versions because:

* spans are serialized in creation (sid) order, with parent references by
  sid — both are per-recorder, starting at 1;
* floats use ``repr`` (shortest round-trip form, stable since CPython 3.1);
* attributes are sorted by key, and *process-global* identifiers (bio ids,
  request ids, command ids — module-level counters whose values depend on
  what ran earlier in the process) are excluded by default.

What remains — span names, tree shape, virtual timestamps, LBAs, streams,
queue pairs, devices, roles — pins down the full request lifecycle: any
reordering, added/removed hop, or timing change in a fixed-seed run
changes the digest.
"""

from __future__ import annotations

import hashlib
from typing import Any, FrozenSet, Iterable, List

from repro.sim.obs.spans import SpanRecorder

__all__ = ["VOLATILE_ATTRS", "canonical_lines", "span_digest"]

#: Attribute keys backed by process-global counters (excluded by default).
VOLATILE_ATTRS: FrozenSet[str] = frozenset(
    {"bio", "bios", "req", "cid", "merged_into"}
)


def _canon(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "(" + ",".join(_canon(v) for v in value) + ")"
    return repr(value)


def canonical_lines(recorder: SpanRecorder,
                    exclude: Iterable[str] = VOLATILE_ATTRS) -> List[str]:
    """One deterministic line per span, in creation order."""
    excluded = frozenset(exclude)
    lines = []
    for span in recorder.spans:
        attrs = " ".join(
            f"{key}={_canon(value)}"
            for key, value in sorted(span.attrs.items())
            if key not in excluded
        )
        end = repr(span.end) if span.closed else "open"
        lines.append(
            f"{span.sid} {span.name} p={span.parent_sid} "
            f"s={span.start!r} e={end} {attrs}".rstrip()
        )
    return lines


def span_digest(recorder: SpanRecorder,
                exclude: Iterable[str] = VOLATILE_ATTRS) -> str:
    """sha256 hex digest of the canonical rendering."""
    payload = "\n".join(canonical_lines(recorder, exclude))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
