"""Span analysis: per-bio phase telescoping and the Fig. 14 breakdown.

Two consumers:

* :func:`bio_phase_breakdown` decomposes one ``block.mq`` span into
  telescoping phases (stage → queue → post → wire → fan-in) whose sum is
  *exactly* the bio's end-to-end latency — the differential test's 1e-9s
  invariant;
* :func:`fig14_commit_rows` / :func:`fig14_averages` reconstruct the
  Figure 14 fsync latency breakdown purely from spans, replacing the
  hand-maintained :class:`~repro.fs.journal.CommitBreakdown` accumulators
  as the source of truth for the harness cross-check.

The reconstruction leans on two exact alignments in the instrumentation:
an ``initiator.queue`` span closes at the moment
:meth:`~repro.block.mq.BlockLayer.dispatch` stamps ``bio.dispatched_at``,
and an ``fs.journal`` span opens/closes at the commit worker's
``CommitBreakdown.started``/``completed`` stamps.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sim.obs.spans import Span, SpanRecorder

__all__ = [
    "dispatch_times",
    "bio_phase_breakdown",
    "fig14_commit_rows",
    "fig14_averages",
]


def dispatch_times(recorder: SpanRecorder) -> Dict[int, float]:
    """bio_id -> first dispatch time, from dispatched ``initiator.queue``
    spans (merged-away staging spans are skipped: their close marks the
    merge, not a dispatch)."""
    out: Dict[int, float] = {}
    for span in recorder.by_name("initiator.queue"):
        if not span.closed or not span.attrs.get("dispatched"):
            continue
        for bio_id in span.attrs.get("bios", ()):
            current = out.get(bio_id)
            if current is None or span.end < current:
                out[bio_id] = span.end
    return out


def _covering(recorder: SpanRecorder, name: str, bio_id: int) -> List[Span]:
    return [
        span
        for span in recorder.by_name(name)
        if span.closed and bio_id in span.attrs.get("bios", ())
    ]


def bio_phase_breakdown(recorder: SpanRecorder, bio_span: Span
                        ) -> Optional[Dict[str, float]]:
    """Telescoping phase decomposition of one ``block.mq`` span.

    Returns None for bios that split or error-completed (several covering
    requests make the linear decomposition ambiguous).  For the common
    single-request case the phases are consecutive intervals::

        stage   submit      -> queue-span open   (split/stage CPU)
        queue   queue open  -> dispatch          (plug / ORDER-queue wait)
        post    dispatch    -> fabric-span open  (driver handoff)
        wire    fabric open -> fabric close      (command round trip)
        fanin   fabric close-> bio completion    (completion fan-out)

    and sum to ``bio_span.duration`` exactly (up to float addition).
    """
    if not bio_span.closed:
        return None
    bio_id = bio_span.attrs.get("bio")
    queue = [
        s for s in _covering(recorder, "initiator.queue", bio_id)
        if s.attrs.get("dispatched")
    ]
    fabric = _covering(recorder, "fabric.transfer", bio_id)
    if len(queue) != 1 or len(fabric) != 1:
        return None
    q, f = queue[0], fabric[0]
    covered = q.attrs.get("bios", ())
    if covered and covered[0] != bio_id:
        # The bio was merged into an earlier request: its covering queue
        # span opened before this bio existed (it belongs to the
        # survivor's lead bio), so the stage/queue attribution is
        # ambiguous here too.
        return None
    return {
        "stage": q.start - bio_span.start,
        "queue": q.end - q.start,
        "post": f.start - q.end,
        "wire": f.end - f.start,
        "fanin": bio_span.end - f.end,
    }


def fig14_commit_rows(recorder: SpanRecorder) -> List[Dict[str, float]]:
    """Per-commit timestamps reconstructed from the span forest.

    Each ``fs.journal`` span yields one row with the same semantics as
    :class:`~repro.fs.journal.CommitBreakdown`: ``data_dispatched`` is the
    latest first-dispatch among the commit's data bios (``started`` when
    there are none), ``jm``/``jc`` are those bios' first dispatches.
    """
    dispatched = dispatch_times(recorder)
    rows: List[Dict[str, float]] = []
    for commit in recorder.by_name("fs.journal"):
        if not commit.closed:
            continue
        roles: Dict[str, List[int]] = {}
        for child in recorder.children_of(commit):
            role = child.attrs.get("role")
            if role:
                roles.setdefault(role, []).append(child.attrs.get("bio"))
        started = commit.start

        def first_dispatch(bio_id: Any) -> float:
            return dispatched.get(bio_id, started)

        data = [first_dispatch(b) for b in roles.get("data", ())]
        jm = roles.get("jm", ())
        jc = roles.get("jc", ())
        rows.append({
            "started": started,
            "data_dispatched": max(data, default=started),
            "jm_dispatched": first_dispatch(jm[0]) if jm else started,
            "jc_dispatched": first_dispatch(jc[0]) if jc else started,
            "completed": commit.end,
        })
    return rows


def fig14_averages(recorder: SpanRecorder) -> Dict[str, float]:
    """Figure 14's four columns (microseconds), averaged over commits."""
    rows = fig14_commit_rows(recorder)
    count = max(1, len(rows))
    return {
        "d_dispatch_us": sum(
            r["data_dispatched"] - r["started"] for r in rows) / count * 1e6,
        "jm_dispatch_us": sum(
            r["jm_dispatched"] - r["started"] for r in rows) / count * 1e6,
        "jc_dispatch_us": sum(
            r["jc_dispatched"] - r["started"] for r in rows) / count * 1e6,
        "total_us": sum(
            r["completed"] - r["started"] for r in rows) / count * 1e6,
    }
