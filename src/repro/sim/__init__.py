"""Deterministic discrete-event simulation kernel.

This package provides the virtual-time substrate that every hardware and
software model in the reproduction runs on: a classic event-heap scheduler
(:class:`~repro.sim.engine.Environment`), generator-based cooperative
processes (:class:`~repro.sim.engine.Process`), synchronization primitives
(events, timeouts, ``all_of``/``any_of`` conditions), queueing primitives
(:class:`~repro.sim.resources.Store`, :class:`~repro.sim.resources.Resource`)
and measurement helpers (:mod:`repro.sim.stats`).

The design deliberately mirrors the SimPy programming model (``yield
env.timeout(...)``), implemented from scratch so the reproduction has no
dependencies beyond the standard library.
"""

from repro.sim.calendar import CalendarEnvironment
from repro.sim.engine import (
    Environment,
    Event,
    Interrupt,
    Process,
    SimDeadlock,
    SimulationError,
    Timeout,
)
from repro.sim.parallel import ShardContext, map_shards, run_sharded
from repro.sim.faults import FaultPlan, FaultRecord
from repro.sim.resources import Resource, Store
from repro.sim.rng import DeterministicRNG
from repro.sim.stats import BusyTracker, Counter, LatencyRecorder, ThroughputMeter
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Environment",
    "Event",
    "FaultPlan",
    "FaultRecord",
    "Interrupt",
    "Process",
    "SimDeadlock",
    "SimulationError",
    "Timeout",
    "CalendarEnvironment",
    "ShardContext",
    "map_shards",
    "run_sharded",
    "Resource",
    "Store",
    "DeterministicRNG",
    "BusyTracker",
    "Counter",
    "LatencyRecorder",
    "ThroughputMeter",
    "TraceEvent",
    "Tracer",
]
