"""Measurement helpers: throughput, latency distributions, CPU busy time.

The paper reports throughput (IOPS / MB/s / ops/s), average and 99th
percentile latency, and "CPU efficiency" defined in §6.1 as throughput
divided by CPU utilization where utilization is sampled the way ``top``
reports it.  :class:`BusyTracker` reproduces that definition by integrating
busy virtual time per core.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.sim.engine import Environment

__all__ = ["Counter", "LatencyRecorder", "ThroughputMeter", "BusyTracker"]


class Counter:
    """A named monotonically increasing event counter."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


class LatencyRecorder:
    """Collects individual operation latencies (seconds)."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self._samples.append(latency)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile out of range: {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0


class ThroughputMeter:
    """Counts completed operations/bytes over a measurement window."""

    def __init__(self, env: Environment):
        self.env = env
        self._ops = 0
        self._bytes = 0
        self._window_start: Optional[float] = None
        self._window_end: Optional[float] = None

    def start_window(self) -> None:
        """Begin measuring; completions before this are warm-up."""
        self._window_start = self.env.now
        self._ops = 0
        self._bytes = 0

    def stop_window(self) -> None:
        self._window_end = self.env.now

    def complete(self, nbytes: int = 0, ops: int = 1) -> None:
        if self._window_start is None or self._window_end is not None:
            return  # outside the measurement window
        self._ops += ops
        self._bytes += nbytes

    @property
    def elapsed(self) -> float:
        if self._window_start is None:
            return 0.0
        end = self._window_end if self._window_end is not None else self.env.now
        return max(0.0, end - self._window_start)

    @property
    def ops(self) -> int:
        return self._ops

    @property
    def ops_per_sec(self) -> float:
        return self._ops / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def bytes_per_sec(self) -> float:
        return self._bytes / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def mb_per_sec(self) -> float:
        return self.bytes_per_sec / 1e6


class BusyTracker:
    """Integrates busy time so utilization matches what ``top`` reports.

    Components call ``begin()``/``end()`` around CPU work.  Nested sections
    are allowed (a core running the block layer inside an interrupt handler)
    and count once — wall-clock busy time, not a sum over sections.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._depth = 0
        self._busy_since = 0.0
        self._busy_total = 0.0
        self._window_start: Optional[float] = None
        self._window_busy_base = 0.0
        self._window_end: Optional[float] = None
        self._window_end_busy: Optional[float] = None

    def begin(self) -> None:
        if self._depth == 0:
            self._busy_since = self.env.now
        self._depth += 1

    def end(self) -> None:
        if self._depth <= 0:
            raise RuntimeError("BusyTracker.end() without begin()")
        self._depth -= 1
        if self._depth == 0:
            self._busy_total += self.env.now - self._busy_since

    def _busy_now(self) -> float:
        running = self.env.now - self._busy_since if self._depth > 0 else 0.0
        return self._busy_total + running

    def start_window(self) -> None:
        self._window_start = self.env.now
        self._window_busy_base = self._busy_now()
        self._window_end = None
        self._window_end_busy = None

    def stop_window(self) -> None:
        self._window_end = self.env.now
        self._window_end_busy = self._busy_now()

    @property
    def busy_time(self) -> float:
        """Busy seconds inside the measurement window."""
        if self._window_start is None:
            return self._busy_now()
        end_busy = (
            self._window_end_busy
            if self._window_end_busy is not None
            else self._busy_now()
        )
        return end_busy - self._window_busy_base

    def utilization(self) -> float:
        """Busy fraction of the window (0..1)."""
        if self._window_start is None:
            if self.env.now <= 0:
                return 0.0
            return self._busy_now() / self.env.now
        end = self._window_end if self._window_end is not None else self.env.now
        elapsed = end - self._window_start
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed
