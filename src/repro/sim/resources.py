"""Queueing primitives: FIFO stores and counted resources.

These are the building blocks for hardware queues (NVMe submission queues,
NIC queue pairs) and for mutual exclusion (per-core run queues, the single
in-flight-request constraint of the synchronous baselines).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["Store", "Resource"]


class Store:
    """An unbounded (or bounded) FIFO channel between processes.

    ``put(item)`` returns an event that fires once the item is accepted
    (immediately unless the store is bounded and full).  ``get()`` returns an
    event that fires with the oldest item once one is available.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying blocked items

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            event._blocked_item = item  # type: ignore[attr-defined]
            self._putters.append(event)
        return event

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_blocked_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: the oldest item, or None if empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_blocked_putter()
        return item

    def _admit_blocked_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            putter = self._putters.popleft()
            self._items.append(putter._blocked_item)  # type: ignore[attr-defined]
            putter.succeed()


class Resource:
    """A counted resource with FIFO grant order (like a semaphore).

    ``request()`` yields an event that fires when a slot is granted;
    ``release()`` frees one slot.  Used to model limited hardware
    concurrency (e.g. flash chips, DMA engines).
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Request a slot; yield the returned event *immediately*.

        Abandoned waiters (e.g. interrupted processes) are detected by
        having no registered callbacks at grant time, so an event parked
        un-yielded across other waits would be mistaken for abandoned.
        """
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        # Grant the slot to the oldest waiter that is still listening.
        # A waiter whose process was interrupted has no callbacks left —
        # granting to it would leak the slot forever.
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.callbacks:
                waiter.succeed()
                return
        self._in_use -= 1

    def acquire(self):
        """Generator helper: ``yield from resource.acquire()``."""
        yield self.request()
