"""Conservative parallel DES: sharded models, lookahead-window barriers.

The engine's events-per-core is this repo's analogue of the paper's
CPU-per-IOPS claim, and one core is the serial engine's hard ceiling.
This module scales *out* instead, PADS-style (conservative / CMB):

* a model is split into **shards**, each owning a private
  :class:`~repro.sim.engine.Environment` (or the calendar engine) and a
  :class:`ShardContext` for cross-shard traffic;
* shards interact **only** through time-stamped messages whose delivery
  delay is at least the fabric's minimum latency — the **lookahead**;
* the run advances in windows of exactly one lookahead: every shard
  simulates ``[t, t + L)`` in isolation (no message sent inside the
  window can arrive inside it), then a barrier exchanges the messages
  produced, and the next window begins.

Determinism rule (the DESIGN.md invariant): at every barrier the
messages bound for a shard are injected in sorted
``(arrival_time, src_shard, seq)`` order *before* the next window runs,
so the destination allocates event ids identically no matter which
worker produced the messages or how windows interleaved in wall-clock
time.  Consequently ``jobs=N`` is **bit-identical** to ``jobs=1`` —
the in-process serial reference that runs the very same windowed
protocol on the serial engine.  ``tests/sim/test_parallel.py`` pins
this with message-coupled models; ``tests/harness/test_saturate.py``
pins the degenerate case (independent saturation cells as shards,
infinite lookahead) against the plain serial sweep.

Workers are forked processes (one pipe each); shards are assigned
round-robin.  Fork inheritance means shard builders may be closures —
only messages and shard results cross process boundaries and must
pickle.
"""

from __future__ import annotations

import multiprocessing
import os
from itertools import count
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from heapq import heappush

from repro.sim.engine import _TRIGGERED, Environment, Event

__all__ = [
    "ShardContext",
    "run_sharded",
    "map_shards",
    "tick_shard",
    "ring_shard",
    "default_jobs",
]


def default_jobs() -> int:
    """Worker count matched to the host (at least 1)."""
    return max(1, os.cpu_count() or 1)


def _make_env(engine: str) -> Environment:
    if engine == "heap":
        return Environment()
    if engine == "calendar":
        from repro.sim.calendar import CalendarEnvironment

        return CalendarEnvironment()
    raise ValueError(f"unknown engine {engine!r} (have: heap, calendar)")


class ShardContext:
    """One shard's handle on the fabric: its environment plus messaging.

    ``send(dst, payload, delay)`` queues a time-stamped message; ``delay``
    must be at least the run's lookahead (that bound is what makes the
    window barrier conservative rather than speculative).  ``on_message``
    registers the handler called as ``handler(src_shard, payload)`` at
    the message's arrival time.
    """

    def __init__(self, env: Environment, shard_id: int, num_shards: int,
                 lookahead: float):
        self.env = env
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.lookahead = lookahead
        self._outbox: List[Tuple[int, float, int, Any]] = []
        self._seq = count()
        self._handler: Optional[Callable[[int, Any], None]] = None

    def on_message(self, handler: Callable[[int, Any], None]) -> None:
        self._handler = handler

    def send(self, dst: int, payload: Any,
             delay: Optional[float] = None) -> None:
        if delay is None:
            delay = self.lookahead
        if delay < self.lookahead:
            raise ValueError(
                f"cross-shard delay {delay} is below the lookahead "
                f"{self.lookahead}: the conservative window barrier "
                "would miss it"
            )
        if not 0 <= dst < self.num_shards:
            raise ValueError(f"no such shard: {dst}")
        self._outbox.append(
            (dst, self.env.now + delay, next(self._seq), payload)
        )

    # -- runtime side -------------------------------------------------------

    def _drain_outbox(self) -> List[Tuple[int, float, int, Any]]:
        out = self._outbox
        self._outbox = []
        return out

    def _inject(self, messages: Sequence[Tuple[float, int, int, Any]]) -> None:
        """Schedule inbound messages, already sorted (arrival, src, seq).

        Event ids are allocated here, in that order, before the next
        window runs — the determinism rule.
        """
        env = self.env
        handler = self._handler
        for arrival, src, _seq, payload in messages:
            event = Event(env)
            event._ok = True
            event._value = payload
            event._state = _TRIGGERED
            heappush(env._heap, (arrival, next(env._eid), event))
            if handler is not None:
                event.callbacks.append(
                    lambda _ev, h=handler, s=src, p=payload: h(s, p)
                )


#: A shard builder: receives the context, registers processes/handlers on
#: ``ctx.env``, and returns a zero-arg ``finish`` callable producing the
#: shard's (picklable) result once the run completes.
ShardBuilder = Callable[[ShardContext], Callable[[], Any]]


class _ShardRun:
    """One live shard inside whichever process owns it."""

    def __init__(self, builder: ShardBuilder, shard_id: int, num_shards: int,
                 lookahead: float, engine: str):
        self.ctx = ShardContext(
            _make_env(engine), shard_id, num_shards, lookahead
        )
        finish = builder(self.ctx)
        self._finish = finish if callable(finish) else (lambda: None)

    def advance(self, window_end: float) -> List[Tuple[int, float, int, Any]]:
        self.ctx.env.run(until=window_end)
        return self.ctx._drain_outbox()

    def inject(self, messages) -> None:
        self.ctx._inject(messages)

    def result(self) -> Any:
        return self._finish()


def _route(num_shards: int, tagged) -> Dict[int, list]:
    """Group (dst, arrival, src, seq, payload) tuples per destination, in
    the injection order (arrival, src, seq)."""
    by_dst: Dict[int, list] = {}
    for dst, arrival, src, seq, payload in tagged:
        by_dst.setdefault(dst, []).append((arrival, src, seq, payload))
    for messages in by_dst.values():
        messages.sort(key=lambda m: (m[0], m[1], m[2]))
    return by_dst


def _windows(until: float, lookahead: float):
    t = 0.0
    while t < until:
        t = until if lookahead == float("inf") else min(t + lookahead, until)
        yield t


def _window_worker(conn, owned, num_shards, lookahead, engine):
    """Child process: own a set of shards, advance them window by window."""
    try:
        shards = {
            sid: _ShardRun(builder, sid, num_shards, lookahead, engine)
            for sid, builder in owned
        }
        while True:
            op, *rest = conn.recv()
            if op == "window":
                window_end, inbound = rest
                for sid, messages in inbound.items():
                    shards[sid].inject(messages)
                out = []
                for sid in sorted(shards):
                    out.extend(
                        (dst, arrival, sid, seq, payload)
                        for dst, arrival, seq, payload
                        in shards[sid].advance(window_end)
                    )
                conn.send(("ok", out))
            elif op == "finish":
                conn.send(
                    ("ok", {sid: s.result() for sid, s in shards.items()})
                )
                return
    except BaseException as exc:  # surface the failure in the parent
        try:
            conn.send(("err", exc))
        except (BrokenPipeError, OSError):
            pass  # parent already gone; nothing left to tell
    finally:
        conn.close()


def run_sharded(
    builders: Sequence[ShardBuilder],
    *,
    lookahead: float,
    until: float,
    jobs: int = 1,
    engine: str = "heap",
) -> List[Any]:
    """Run a sharded model to ``until``; returns results in shard order.

    ``jobs=1`` executes the identical windowed protocol in-process (the
    bit-identity reference); ``jobs>1`` forks workers and exchanges the
    barrier messages over pipes.  Results are whatever each builder's
    ``finish`` callable returns.
    """
    if lookahead <= 0:
        raise ValueError(f"lookahead must be positive, got {lookahead}")
    if until <= 0:
        raise ValueError(f"until must be positive, got {until}")
    num_shards = len(builders)
    if num_shards == 0:
        return []
    jobs = max(1, min(jobs, num_shards))

    if jobs == 1:
        shards = [
            _ShardRun(builder, sid, num_shards, lookahead, engine)
            for sid, builder in enumerate(builders)
        ]
        for window_end in _windows(until, lookahead):
            tagged = []
            for shard in shards:
                tagged.extend(
                    (dst, arrival, shard.ctx.shard_id, seq, payload)
                    for dst, arrival, seq, payload
                    in shard.advance(window_end)
                )
            for dst, messages in sorted(_route(num_shards, tagged).items()):
                shards[dst].inject(messages)
        return [shard.result() for shard in shards]

    ctx = multiprocessing.get_context("fork")
    workers = []  # (conn, process, owned shard ids)
    for w in range(jobs):
        owned = [(sid, builders[sid])
                 for sid in range(w, num_shards, jobs)]
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_window_worker,
            args=(child_conn, owned, num_shards, lookahead, engine),
        )
        proc.start()
        child_conn.close()
        workers.append((parent_conn, proc, [sid for sid, _ in owned]))

    def _recv(conn):
        status, value = conn.recv()
        if status == "err":
            raise value
        return value

    def _send(conn, message):
        # A worker that died mid-protocol closed its pipe end; the send
        # then breaks, but its ("err", exc) — if it managed one — is
        # still buffered in the socket.  Read it so the builder's real
        # exception surfaces instead of a bare BrokenPipeError.
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            _recv(conn)  # raises the worker's error, or EOFError
            raise

    completed = False
    try:
        inbound_by_worker: List[Dict[int, list]] = [{} for _ in workers]
        for window_end in _windows(until, lookahead):
            for (conn, _proc, _owned), inbound in zip(workers,
                                                      inbound_by_worker):
                _send(conn, ("window", window_end, inbound))
            tagged = []
            for conn, _proc, _owned in workers:
                tagged.extend(_recv(conn))
            by_dst = _route(num_shards, tagged)
            inbound_by_worker = [
                {sid: by_dst[sid] for sid in owned if sid in by_dst}
                for _conn, _proc, owned in workers
            ]
        # Deliver any final-barrier messages (they arrive >= until, so
        # they cannot change results, but keep the protocol uniform),
        # then collect.
        results: Dict[int, Any] = {}
        for (conn, _proc, _owned), inbound in zip(workers,
                                                  inbound_by_worker):
            _send(conn, ("finish",))
        for conn, _proc, _owned in workers:
            results.update(_recv(conn))
        completed = True
    finally:
        for conn, _proc, _owned in workers:
            conn.close()
        for _conn, proc, _owned in workers:
            # Closing our pipe end does not EOF a worker stuck in recv():
            # fork hands every worker an inherited copy of its own
            # parent-side fd, so the socket stays half-open.  On the
            # error path, terminate instead of waiting on a join that
            # can never return.
            if not completed:
                proc.terminate()
            proc.join()
    return [results[sid] for sid in range(num_shards)]


# ----------------------------------------------------------------------
# Degenerate sharding: independent cells, infinite lookahead
# ----------------------------------------------------------------------


def _cell_worker(conn, items):
    try:
        conn.send(("ok", [(i, fn()) for i, fn in items]))
    except BaseException as exc:
        conn.send(("err", exc))
    finally:
        conn.close()


def map_shards(fns: Sequence[Callable[[], Any]], jobs: int = 1) -> List[Any]:
    """Run independent zero-arg cells across forked workers.

    The infinite-lookahead degenerate case of :func:`run_sharded`: no
    cross-shard messages, one window spanning the whole run.  Results
    come back in input order, so a reduce over them is bit-identical to
    the serial in-process loop (each cell is itself the serial engine).
    """
    if jobs <= 1 or len(fns) <= 1:
        return [fn() for fn in fns]
    ctx = multiprocessing.get_context("fork")
    workers = []
    for w in range(min(jobs, len(fns))):
        items = [(i, fns[i]) for i in range(w, len(fns), jobs)]
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_cell_worker, args=(child_conn, items))
        proc.start()
        child_conn.close()
        workers.append((parent_conn, proc))
    results: Dict[int, Any] = {}
    error = None
    for conn, proc in workers:
        try:
            status, value = conn.recv()
        except EOFError as exc:  # worker died before reporting anything
            status, value = "err", exc
        if status == "err":
            error = error or value
        else:
            results.update(dict(value))
        conn.close()
        proc.join()
    if error is not None:
        raise error
    return [results[i] for i in range(len(fns))]


# ----------------------------------------------------------------------
# Stock shard models (benchmarks and tests)
# ----------------------------------------------------------------------


def tick_shard(ctx: ShardContext, events: int = 5000,
               interval: float = 1e-6) -> Callable[[], Any]:
    """A local ticker: ``events`` timeouts, no cross-shard traffic.

    The parallel counterpart of the gated serial benchmark's workload —
    aggregate events-per-second across shards is the scaling metric.
    """
    env = ctx.env

    def ticker():
        for _ in range(events):
            yield env.timeout(interval)
        return env.now

    proc = env.process(ticker())
    return lambda: {"shard": ctx.shard_id, "end": proc.value,
                    "events": events}


def ring_shard(ctx: ShardContext, tokens: int = 2, hops: int = 12,
               latency: float = 5e-6) -> Callable[[], Any]:
    """A message-coupled ring: tokens hop shard-to-shard at fabric
    latency.  Every shard logs (time, src, token, hop) — the log is the
    bit-identity witness for the windowed barrier protocol."""
    env = ctx.env
    log: List[Tuple[float, int, int, int]] = []

    def on_message(src: int, payload) -> None:
        token, hop = payload
        log.append((env.now, src, token, hop))
        if hop < hops:
            ctx.send((ctx.shard_id + 1) % ctx.num_shards,
                     (token, hop + 1), delay=latency)

    ctx.on_message(on_message)
    if ctx.shard_id == 0:
        for token in range(tokens):
            ctx.send(1 % ctx.num_shards, (token, 0),
                     delay=latency * (token + 1))
    return lambda: log
