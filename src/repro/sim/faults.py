"""Deterministic transient-fault injection (the chaos plane).

A :class:`FaultPlan` describes which transient faults to inject into a
simulated cluster and when:

* **message faults** — per-message drop / corruption / extra delay on the
  fabric's queue-pair pumps, drawn probabilistically from the plan's own
  RNG streams;
* **timed faults** — QP breakdown, target stall, and target crash(-restart)
  fired at configured virtual times.

Determinism: the plan owns a :class:`~repro.sim.rng.DeterministicRNG`
seeded independently of the cluster, with one forked sub-stream per
(queue pair, direction) lane.  Because each lane's pump processes messages
FIFO, the sequence of draws per lane — and therefore the whole fault
schedule — is a pure function of the plan seed, regardless of cross-lane
interleaving.  A cluster without an installed plan performs **zero** extra
RNG draws and no extra event scheduling: the fault plane is free when
inactive, and all pre-existing RNG streams are untouched either way.

Every injected fault is appended to :attr:`FaultPlan.injected` and emitted
on the tracer (category ``"fault"``) with its cause and virtual timestamp.

This module deliberately knows nothing about the upper layers: ``install``
takes any cluster-shaped object (``env``, ``fabric``, ``targets``) and the
per-message hook is called back by the fabric, so ``repro.sim`` stays at
the bottom of the dependency order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.rng import DeterministicRNG

__all__ = ["FaultPlan", "FaultRecord"]

#: Verdicts returned by :meth:`FaultPlan.message_verdict`.
DELIVER = "deliver"
DROP = "drop"
CORRUPT = "corrupt"
DELAY = "delay"


@dataclass
class FaultRecord:
    """One injected fault: what, when, and the details of the victim."""

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)


class FaultPlan:
    """A deterministic, seeded schedule of transient faults.

    Probabilistic message faults::

        plan = FaultPlan(seed=7, message_loss=0.03, corruption=0.01,
                         delay_probability=0.05)

    Timed faults (virtual-time triggers)::

        plan.qp_breakdown(at=2e-3, qp_index=1)
        plan.target_stall(at=3e-3, target_index=0, duration=500e-6)
        plan.target_crash(at=5e-3, target_index=0, restart_after=1e-3)

    then ``plan.install(cluster)`` arms everything.
    """

    def __init__(
        self,
        seed: int = 0,
        message_loss: float = 0.0,
        corruption: float = 0.0,
        delay_probability: float = 0.0,
        delay_range: Tuple[float, float] = (5e-6, 50e-6),
    ):
        for name, p in (
            ("message_loss", message_loss),
            ("corruption", corruption),
            ("delay_probability", delay_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if message_loss + corruption + delay_probability > 1.0:
            raise ValueError("fault probabilities must sum to at most 1")
        if delay_range[0] < 0 or delay_range[1] < delay_range[0]:
            raise ValueError(f"bad delay_range: {delay_range}")
        self.seed = seed
        self.message_loss = message_loss
        self.corruption = corruption
        self.delay_probability = delay_probability
        self.delay_range = delay_range
        self._rng = DeterministicRNG(seed)
        self._lane_rngs: Dict[Tuple[int, int], DeterministicRNG] = {}
        self._timed: List[Tuple[str, float, Dict[str, Any]]] = []
        self.env = None  # set by install()
        #: Every fault actually injected, in injection order.
        self.injected: List[FaultRecord] = []
        # Counters (cheap aggregate view for harnesses and tests).
        self.messages_seen = 0
        self.messages_dropped = 0
        self.messages_corrupted = 0
        self.messages_delayed = 0

    # ------------------------------------------------------------------
    # Timed-fault configuration
    # ------------------------------------------------------------------

    def qp_breakdown(self, at: float, qp_index: int) -> "FaultPlan":
        """Break one queue pair at virtual time ``at`` (epoch bump on both
        sides: in-flight messages are discarded, the initiator reconnects
        and resubmits)."""
        self._timed.append(("qp_breakdown", at, {"qp_index": qp_index}))
        return self

    def target_stall(
        self, at: float, target_index: int, duration: float
    ) -> "FaultPlan":
        """Freeze a target's message processing for ``duration`` seconds
        (a wedged/GC-pausing server: commands pile up unanswered)."""
        self._timed.append(
            ("target_stall", at,
             {"target_index": target_index, "duration": duration})
        )
        return self

    def target_crash(
        self,
        at: float,
        target_index: int,
        restart_after: Optional[float] = None,
    ) -> "FaultPlan":
        """Power-cycle a target at ``at``; restart it ``restart_after``
        seconds later (None = stays down)."""
        self._timed.append(
            ("target_crash", at,
             {"target_index": target_index, "restart_after": restart_after})
        )
        return self

    def degrade(
        self,
        at: float,
        target_index: int,
        factor: float,
        duration: Optional[float] = None,
    ) -> "FaultPlan":
        """Gray failure: multiply one target's service times (SSD media and
        NIC wire) by ``factor`` starting at ``at``; restore after
        ``duration`` seconds (None = stays degraded).  Nothing errors and
        nothing crashes — the target just gets slow."""
        if factor < 1.0:
            raise ValueError("degrade factor must be >= 1")
        self._timed.append(
            ("degrade", at,
             {"target_index": target_index, "factor": factor,
              "duration": duration})
        )
        return self

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self, cluster) -> "FaultPlan":
        """Arm the plan on a cluster: hook every queue pair and schedule
        the timed faults.  Idempotent per cluster is not supported — build
        one plan per cluster."""
        if self.env is not None:
            raise RuntimeError("a FaultPlan can only be installed once")
        self.env = cluster.env
        cluster.fabric.fault_plan = self
        for qp in cluster.fabric.queue_pairs:
            qp.fault_plan = self
        for kind, at, detail in self._timed:
            self.env.process(self._fire_timed(cluster, kind, at, dict(detail)))
        return self

    def _fire_timed(self, cluster, kind: str, at: float, detail: Dict[str, Any]):
        env = cluster.env
        if at > env.now:
            yield env.timeout(at - env.now)
        if kind == "qp_breakdown":
            qps = cluster.fabric.queue_pairs
            qp = qps[detail["qp_index"] % len(qps)]
            detail["qp_index"] = qp.index
            self.record(kind, **detail)
            qp.breakdown()
        elif kind == "target_stall":
            target = cluster.targets[detail["target_index"] % len(cluster.targets)]
            detail["target"] = target.name
            self.record(kind, **detail)
            target.stall(detail["duration"])
        elif kind == "degrade":
            target = cluster.targets[detail["target_index"] % len(cluster.targets)]
            detail["target"] = target.name
            self.record(kind, **detail)
            target.degrade(detail["factor"])
            duration = detail.get("duration")
            if duration is not None:
                yield env.timeout(duration)
                self.record("degrade_end", target=target.name)
                target.restore()
        elif kind == "target_crash":
            target = cluster.targets[detail["target_index"] % len(cluster.targets)]
            detail["target"] = target.name
            self.record(kind, **detail)
            target.crash()
            restart_after = detail.get("restart_after")
            if restart_after is not None:
                yield env.timeout(restart_after)
                self.record("target_restart", target=target.name)
                target.restart()

    # ------------------------------------------------------------------
    # Per-message hook (called by QueuePair._pump)
    # ------------------------------------------------------------------

    def message_verdict(self, qp, side: int, message) -> Tuple[str, float]:
        """Decide the fate of one message: ``(verdict, extra_delay)``.

        Called from the QP pump in FIFO order per (qp, side) lane, which
        makes the draw sequence — and so the verdicts — deterministic.
        """
        self.messages_seen += 1
        if self.env is None:
            # Hooked directly onto a QP (fabric-level tests) without
            # install(): adopt the QP's environment for timestamps/tracing.
            self.env = qp.env
        rng = self._lane_rngs.get((qp.index, side))
        if rng is None:
            rng = self._rng.fork(f"lane{qp.index}.{side}")
            self._lane_rngs[(qp.index, side)] = rng
        r = rng.random()
        if r < self.message_loss:
            self.messages_dropped += 1
            self.record("drop", qp=qp.index, side=side, msg=message.kind,
                        nbytes=message.nbytes)
            return DROP, 0.0
        if r < self.message_loss + self.corruption:
            self.messages_corrupted += 1
            self.record("corrupt", qp=qp.index, side=side, msg=message.kind,
                        nbytes=message.nbytes)
            return CORRUPT, 0.0
        if r < self.message_loss + self.corruption + self.delay_probability:
            extra = rng.uniform(*self.delay_range)
            self.messages_delayed += 1
            self.record("delay", qp=qp.index, side=side, msg=message.kind,
                        extra=extra)
            return DELAY, extra
        return DELIVER, 0.0

    # ------------------------------------------------------------------
    # Serialization (the ScenarioSpec ``faults`` sub-section)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form: construction parameters plus the timed
        schedule.  Runtime state (installed env, injected records,
        counters) is deliberately excluded — a plan round-tripped through
        :meth:`from_dict` is a *fresh* plan with the same schedule."""
        return {
            "seed": self.seed,
            "message_loss": self.message_loss,
            "corruption": self.corruption,
            "delay_probability": self.delay_probability,
            "delay_range": list(self.delay_range),
            "timed": [
                {"kind": kind, "at": at, **detail}
                for kind, at, detail in self._timed
            ],
        }

    @staticmethod
    def _as_mapping(value) -> Dict[str, Any]:
        """Accept a dict or the sweep runner's frozen ``(key, value)``
        pair form — dict-valued kwargs cross RunSpec boundaries as sorted
        pair tuples (see ``repro.harness.sweep``)."""
        if isinstance(value, dict):
            return value
        if isinstance(value, (list, tuple)) and all(
            isinstance(pair, (list, tuple)) and len(pair) == 2
            and isinstance(pair[0], str)
            for pair in value
        ):
            return dict(value)
        raise ValueError(f"expected a fault-plan mapping, got {value!r}")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (or the equivalent
        ScenarioSpec ``faults`` section).  Unknown timed kinds raise."""
        data = cls._as_mapping(data)
        plan = cls(
            seed=int(data.get("seed", 0)),
            message_loss=float(data.get("message_loss", 0.0)),
            corruption=float(data.get("corruption", 0.0)),
            delay_probability=float(data.get("delay_probability", 0.0)),
            delay_range=tuple(data.get("delay_range", (5e-6, 50e-6))),
        )
        builders = {
            "qp_breakdown": plan.qp_breakdown,
            "target_stall": plan.target_stall,
            "target_crash": plan.target_crash,
            "degrade": plan.degrade,
        }
        for i, entry in enumerate(data.get("timed") or []):
            detail = dict(cls._as_mapping(entry))
            kind = detail.pop("kind", None)
            if kind not in builders:
                raise ValueError(f"timed[{i}]: unknown fault kind {kind!r}")
            builders[kind](**detail)
        return plan

    # ------------------------------------------------------------------

    def record(self, kind: str, **detail) -> None:
        """Log one injected fault (list + tracer, with virtual timestamp)."""
        now = self.env.now if self.env is not None else 0.0
        self.injected.append(FaultRecord(time=now, kind=kind, detail=detail))
        if self.env is not None:
            self.env.trace("fault", kind, **detail)

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rec in self.injected:
            counts[rec.kind] = counts.get(rec.kind, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed} loss={self.message_loss} "
            f"corrupt={self.corruption} delay={self.delay_probability} "
            f"timed={len(self._timed)} injected={len(self.injected)}>"
        )
