"""Event-heap scheduler and generator-based processes.

The engine models virtual time in **seconds** (floats).  All hardware and
protocol latencies in the reproduction are expressed in seconds so that
throughput numbers come out directly in operations per second.

The programming model is cooperative coroutines::

    def worker(env):
        yield env.timeout(1e-6)          # wait 1 microsecond
        result = yield some_event        # wait for an event, receive value

    env = Environment()
    env.process(worker(env))
    env.run(until=1.0)

Events may *succeed* (carrying a value) or *fail* (carrying an exception,
which is re-raised inside every waiting process).  A :class:`Process` is
itself an event that fires when the generator returns, so processes can wait
on each other.

Performance notes
-----------------

This module is the host-side hot path of every experiment: a figure sweep
processes tens of millions of events, each of which allocates an
:class:`Event` (or :class:`Timeout`), pushes and pops a heap entry and runs
a callback.  The implementation therefore trades a little uniformity for
speed:

* every event class declares ``__slots__`` (no per-instance dict; faster
  attribute access and much less allocator pressure).  The ``bio`` and
  ``_blocked_item`` slots exist so higher layers (the ordered stacks and
  :mod:`repro.sim.resources`) can annotate events without re-introducing a
  ``__dict__``;
* :class:`Timeout` bypasses ``Event.__init__``/``succeed`` and schedules
  itself with one direct ``heappush`` — it is the single most-allocated
  object in the simulator;
* :meth:`Environment.run` inlines the pop-advance-dispatch loop (what
  :meth:`Environment.step` does once) with the heap and ``heappop`` bound
  to locals, and only swaps an event's callback list when it is non-empty.

The observable semantics are identical to the straightforward
implementation; ``tests/sim/test_engine.py`` and the serial-vs-parallel
bit-identity test in ``tests/harness/test_sweep.py`` pin that down.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "SimDeadlock",
    "Interrupt",
    "Event",
    "Timeout",
    "Condition",
    "Process",
    "Environment",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class SimDeadlock(SimulationError):
    """The event heap drained while liveness-watched waiters were pending.

    Virtual time has no external inputs: once the heap is empty nothing can
    ever fire a pending event, so a drained heap with registered waiters is
    a genuine deadlock (e.g. a completion orphaned by a dropped message).
    Components register must-fire events via
    :meth:`Environment.watch_liveness` to turn silent hangs into this
    diagnosable failure.
    """


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value given to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, callbacks not yet run
_PROCESSED = 2  # callbacks have run
_CANCELLED = 3  # heap entry is dead; the run loop skips it


class Event:
    """A one-shot occurrence in virtual time that processes can wait on."""

    __slots__ = (
        "env",
        "callbacks",
        "_state",
        "_ok",
        "_value",
        # Annotation slots for higher layers (see module docstring).
        "bio",
        "_blocked_item",
    )

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._state = _PENDING
        self._ok = True
        self._value: Any = None

    # -- inspection -------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (waiters have been resumed)."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or the failure exception)."""
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, delivering ``value`` to waiters."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        heappush(env._heap, (env._now, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event as a failure; ``exception`` is raised in waiters."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        env = self.env
        heappush(env._heap, (env._now, next(env._eid), self))
        return self

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x} state={self._state}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay.

    Timeouts are born triggered: the constructor writes the five event
    fields directly and pushes one heap entry, skipping the generic
    ``__init__``/``succeed`` path (this is the hottest allocation site in
    the whole simulator).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._state = _TRIGGERED
        self._ok = True
        self._value = value
        self.delay = delay
        if env._buckets is None:
            heappush(env._heap, (env._now + delay, next(env._eid), self))
        else:
            # Calendar scheduler (repro.sim.calendar): exact-timestamp
            # buckets instead of one heap entry per timeout.
            env._bucket_insert(self, env._now + delay)

    def cancel(self) -> None:
        """Disarm a timeout that lost a race (e.g. the other arm of an
        ``any_of`` fired first).

        The heap entry cannot be removed cheaply, so the timeout is marked
        dead and the run loop skips it without advancing the clock; once
        enough dead entries accumulate the environment compacts the heap in
        one pass.  Without this, every completed watchdog arm would stay a
        live heap entry until its expiry time — a real leak on long runs.
        No-op if the timeout already fired.

        Cancellation is a *condition-visible* terminal state: a
        :class:`Condition` watching this timeout is told the member can
        never fire (so an ``all_of`` over a cancelled arm fails loudly
        instead of hanging forever).  Other registered callbacks are
        dropped — a waiter that truly depends on the timeout should be
        liveness-watched, which turns the hang into :class:`SimDeadlock`.
        """
        if self._state != _TRIGGERED:
            return
        self._state = _CANCELLED
        callbacks = self.callbacks
        self.callbacks = []
        for callback in callbacks:
            owner = getattr(callback, "__self__", None)
            if isinstance(owner, Condition):
                owner._on_member_cancelled(self)
        self.env._note_cancelled()


class Condition(Event):
    """Fires when ``evaluate`` says enough of the watched events fired.

    Used for :meth:`Environment.all_of` and :meth:`Environment.any_of`.
    The condition value is a dict mapping each fired event to its value.
    """

    __slots__ = ("_events", "_evaluate", "_fired", "_dead")

    def __init__(
        self,
        env: "Environment",
        events: Iterable[Event],
        evaluate: Callable[[int, int], bool],
    ):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._fired = 0
        self._dead = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            state = event._state
            if state == _PROCESSED:
                self._on_event(event)
            elif state == _CANCELLED:
                self._on_member_cancelled(event)
            else:
                event.callbacks.append(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._fired += 1
        if self._evaluate(self._fired, len(self._events)):
            self.succeed(
                {ev: ev._value for ev in self._events if ev._state != _PENDING}
            )

    def _on_member_cancelled(self, event: Event) -> None:
        """A watched member was cancelled and can never fire.

        The condition stays pending while the remaining live members could
        still satisfy ``evaluate`` (an ``any_of`` with a live arm); once
        satisfaction is impossible (an ``all_of`` over any cancelled arm,
        or an ``any_of`` whose every arm died) it fails loudly instead of
        silently never firing.
        """
        if self._state != _PENDING:
            return
        self._dead += 1
        total = len(self._events)
        # Best case: every still-live member eventually fires.
        reachable = total - self._dead
        if not self._evaluate(reachable, total):
            self.fail(SimulationError(
                f"condition can never fire: {self._dead} of {total} "
                "watched event(s) were cancelled"
            ))


def _all_fired(fired: int, total: int) -> bool:
    return fired == total


def _any_fired(fired: int, total: int) -> bool:
    return fired >= 1


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    __slots__ = ("_generator", "_waiting_on", "_pending_resume")

    def __init__(self, env: "Environment", generator: Generator):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        #: The scheduled immediate-resume event while the process waits on
        #: an already-processed target; ``interrupt()`` must disarm it.
        self._pending_resume: Optional[Event] = None
        # Bootstrap: resume the generator at the current simulation time.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != _PENDING:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        pending = self._pending_resume
        if pending is not None:
            # The process was interrupted inside the processed-target
            # immediate-resume window: disarm the scheduled resume, or it
            # would deliver a spurious second wakeup after the Interrupt.
            self._pending_resume = None
            if pending._state == _TRIGGERED:
                pending._state = _CANCELLED
                pending.callbacks = []
                self.env._note_cancelled()
        wakeup = Event(self.env)
        wakeup.callbacks.append(
            lambda _ev: self._step(throw=Interrupt(cause))
        )
        wakeup.succeed()

    # -- internal ----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._pending_resume = None
        if event._ok:
            self._step(send=event._value)
        else:
            self._step(throw=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        if self._state != _PENDING:
            return
        env = self.env
        gen = self._generator
        while True:
            env._active_process = self
            try:
                if throw is not None:
                    target = gen.throw(throw)
                else:
                    target = gen.send(send)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except Interrupt:
                # Interrupt escaped the generator: treat as clean
                # termination.
                env._active_process = None
                self.succeed(None)
                return
            except BaseException:
                env._active_process = None
                raise
            env._active_process = None
            if isinstance(target, Event):
                break
            # Non-event yield: throw into the generator and loop, so a
            # generator that catches the error and returns (or yields a
            # real event next) goes through the same StopIteration /
            # registration paths as a plain send — no raw StopIteration
            # can leak out of callback dispatch.
            send = None
            throw = TypeError(f"process yielded a non-event: {target!r}")
        self._wait_for(target)

    def _wait_for(self, target: Event) -> None:
        """Park the process on ``target`` (the tail half of a step)."""
        if target._state == _PROCESSED:
            # Already fired and callbacks ran: resume immediately (same
            # time).  Tracked in _pending_resume so interrupt() can disarm.
            immediate = Event(self.env)
            self._pending_resume = immediate
            immediate.callbacks.append(
                lambda _ev: self._resume(target)
            )
            immediate.succeed()
        else:
            # Pending, triggered, or cancelled.  A cancelled target can
            # never fire: the process parks forever (pinned semantics —
            # liveness-watch the waiter to turn that into SimDeadlock).
            self._waiting_on = target
            target.callbacks.append(self._resume)


#: The unbound resume function, so batched dispatchers (repro.sim.calendar)
#: can recognize "this event's sole callback resumes a process" and inline
#: the generator step without the _resume/_step call frames.
_RESUME = Process._resume


class Environment:
    """The simulation clock plus the pending-event heap."""

    #: Calendar-scheduler hook: None on the heap engine.  When a subclass
    #: (repro.sim.calendar.CalendarEnvironment) sets an instance dict here,
    #: ``Timeout.__init__`` routes through ``_bucket_insert`` instead of
    #: pushing a heap entry.
    _buckets = None

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: List = []
        #: Dead (cancelled) entries still sitting in the heap; the run
        #: loops skip them and :meth:`_compact_heap` sweeps them in bulk.
        self._cancelled = 0
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Liveness registry: token -> (event, description).  Checked when
        #: the heap drains; see :class:`SimDeadlock`.
        self._liveness: dict = {}
        self._liveness_ids = count()
        #: Optional :class:`repro.sim.trace.Tracer`; instrumented
        #: components emit via :meth:`trace` when one is attached.
        self.tracer = None
        #: Optional :class:`repro.sim.obs.Observability`; when attached
        #: (``Observability(env)``) components record lifecycle spans and
        #: publish metrics.  None (the default) keeps every instrumentation
        #: site a single attribute check — behavior is bit-identical to an
        #: uninstrumented run.
        self.obs = None

    def trace(self, category: str, event: str, **fields) -> None:
        """Emit a trace event if a tracer is attached (cheap otherwise)."""
        if self.tracer is not None:
            self.tracer.emit(self._now, category, event, **fields)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing (None between steps)."""
        return self._active_process

    # -- factory helpers ----------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, events, _all_fired)

    def any_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, events, _any_fired)

    # -- liveness watching ---------------------------------------------------

    def watch_liveness(self, event: Event, description: str = "") -> int:
        """Register ``event`` as one that *must* eventually fire.

        Returns a token for :meth:`unwatch_liveness`.  If the event heap
        ever drains while a watched event is still pending, the run loop
        raises :class:`SimDeadlock` naming the stuck waiters instead of
        returning as if the simulation finished cleanly.
        """
        token = next(self._liveness_ids)
        self._liveness[token] = (event, description)
        return token

    def unwatch_liveness(self, token: int) -> None:
        self._liveness.pop(token, None)

    def _raise_if_deadlocked(self) -> None:
        if not self._liveness:
            return
        pending = [
            description or repr(event)
            for event, description in self._liveness.values()
            if not event.triggered
        ]
        if pending:
            shown = "; ".join(pending[:8])
            more = f" (+{len(pending) - 8} more)" if len(pending) > 8 else ""
            raise SimDeadlock(
                f"event heap drained at t={self._now} with "
                f"{len(pending)} pending waiter(s): {shown}{more}"
            )

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heappush(self._heap, (self._now + delay, next(self._eid), event))

    def _note_cancelled(self) -> None:
        """Account one newly-dead scheduled entry; compact when they pile
        up.  Subclasses with extra scheduling structures override this."""
        self._cancelled += 1
        if self._cancelled > 64 and self._cancelled * 2 > len(self._heap):
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Drop cancelled entries in one pass and re-heapify.

        Filters in place: the run loops bind ``self._heap`` to a local, so
        rebinding the attribute here would strand them on a stale list.
        """
        self._heap[:] = [entry for entry in self._heap
                         if entry[2]._state != _CANCELLED]
        heapify(self._heap)
        self._cancelled = 0

    def live_heap_size(self) -> int:
        """Number of heap entries that can still fire (excludes cancelled)."""
        return len(self._heap) - self._cancelled

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        heap = self._heap
        while heap and heap[0][2]._state == _CANCELLED:
            heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else float("inf")

    def step(self) -> None:
        """Process the single next (live) event."""
        heap = self._heap
        while heap:
            when, _eid, event = heappop(heap)
            if event._state == _CANCELLED:
                self._cancelled -= 1
                continue
            self._now = when
            event._state = _PROCESSED
            callbacks = event.callbacks
            if callbacks:
                event.callbacks = []
                for callback in callbacks:
                    callback(event)
            return
        raise SimulationError("no more events to step")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or virtual time reaches ``until``.

        When ``until`` is given the clock is advanced exactly to it even if
        the last event fires earlier, so throughput windows are exact.

        Both loops inline :meth:`step` (pop, advance the clock, run the
        event's callbacks) with the heap bound to a local — this is the
        innermost host-side loop of every experiment.
        """
        heap = self._heap
        pop = heappop
        if until is None:
            while heap:
                when, _eid, event = pop(heap)
                if event._state == _CANCELLED:
                    self._cancelled -= 1
                    continue
                self._now = when
                event._state = _PROCESSED
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
            self._raise_if_deadlocked()
            return
        if until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while heap and heap[0][0] <= until:
            when, _eid, event = pop(heap)
            if event._state == _CANCELLED:
                self._cancelled -= 1
                continue
            self._now = when
            event._state = _PROCESSED
            callbacks = event.callbacks
            if callbacks:
                event.callbacks = []
                for callback in callbacks:
                    callback(event)
        if not heap or self._cancelled >= len(heap):
            # The heap is empty, or every remaining entry is a cancelled
            # husk past `until`: nothing can ever fire again, so a watched
            # waiter is genuinely stuck.
            self._raise_if_deadlocked()
        self._now = until

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` fires; returns its value. Raises on failure."""
        while not event.triggered:
            upcoming = self.peek()
            if upcoming == float("inf"):
                self._raise_if_deadlocked()
                raise SimulationError("event can never fire: heap is empty")
            if upcoming > limit:
                raise SimulationError(f"event did not fire before t={limit}")
            self.step()
        # Drain same-timestamp callbacks so waiters observe the value too.
        while self.peek() <= self._now:
            self.step()
        if not event.ok:
            raise event.value
        return event.value
