"""Calendar-queue scheduler with batched same-timestamp dispatch.

:class:`CalendarEnvironment` is a drop-in :class:`~repro.sim.engine.
Environment` with a different scheduling core tuned for the shape of
storage workloads: huge numbers of timeouts, heavily clustered on shared
timestamps (every completion in an interrupt batch, every tenant arrival
in a tick).  Instead of one binary-heap entry per timeout it keeps

* ``_buckets``: a dict mapping each *exact* timestamp to the FIFO list of
  timeouts scheduled for it.  Event ids grow monotonically, so a bucket
  is eid-ordered by construction — batched dispatch walks it by index
  with no heap traffic at all;
* ``_times``: a small heap of distinct timestamps (one push per *new*
  timestamp, not per event);
* the inherited ``_heap`` for everything that is not a timeout
  (``succeed``/``fail`` wakeups, process completions), so non-timeout
  scheduling is byte-for-byte the engine's.

The run loop merges the two streams by ``(time, eid)`` — exactly the
order the heap engine dispatches in — so results are **bit-identical**
to :class:`~repro.sim.engine.Environment` (asserted against real
saturation cells in ``tests/sim/test_calendar.py``).  On top of the
bucketing, the loop inlines the overwhelmingly common dispatch case
(event's sole callback resumes a process) straight into the generator
``send``, eliminating the ``_resume``/``_step`` call frames that
dominate the serial profile.

Pick it via ``engine="calendar"`` on :func:`repro.harness.saturate.
probe_saturation` / ``repro saturate --engine calendar``, or construct
one directly.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import List, Optional

from repro.sim.engine import (
    _CANCELLED,
    _PENDING,
    _PROCESSED,
    _RESUME,
    Event,
    Interrupt,
    Environment,
    SimulationError,
    Timeout,
)

__all__ = ["CalendarEnvironment"]

_INF = float("inf")


class CalendarEnvironment(Environment):
    """Bucketed-timestamp scheduler behind the ``Environment`` API."""

    def __init__(self, initial_time: float = 0.0):
        super().__init__(initial_time)
        #: timestamp -> [(eid, Timeout), ...] in eid (arrival) order.
        self._buckets: dict = {}
        #: Heap of bucket timestamps (one entry per live bucket; stale
        #: entries from consumed buckets are stripped lazily).
        self._times: List[float] = []
        #: Total entries across all buckets (live + cancelled).
        self._bucket_count = 0

    # -- scheduling structures ---------------------------------------------

    def _bucket_insert(self, timeout: Timeout, when: float) -> None:
        """Called by ``Timeout.__init__`` instead of a heappush."""
        bucket = self._buckets.get(when)
        eid = next(self._eid)
        if bucket is None:
            self._buckets[when] = [(eid, timeout)]
            heappush(self._times, when)
        else:
            bucket.append((eid, timeout))
        self._bucket_count += 1

    def timeout(self, delay: float, value=None) -> Timeout:
        """Build + schedule a timeout in one frame.

        This is the single most-executed call in the simulator; the
        generic path costs three frames (factory, ``Timeout.__init__``,
        ``_bucket_insert``).  Field writes and bucket insert are identical
        to those paths — eid allocation order included, which is what
        keeps dispatch order bit-identical to the heap engine.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        t = Timeout.__new__(Timeout)
        t.env = self
        t.callbacks = []
        t._state = 1  # _TRIGGERED
        t._ok = True
        t._value = value
        t.delay = delay
        when = self._now + delay
        eid = next(self._eid)
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [(eid, t)]
            heappush(self._times, when)
        else:
            bucket.append((eid, t))
        self._bucket_count += 1
        return t

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (self._cancelled > 64
                and self._cancelled * 2 > len(self._heap) + self._bucket_count):
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Drop cancelled entries from the heap *and* the buckets.

        Bucket lists are filtered in place (the batched run loop walks the
        current bucket by index after popping it out of the dict, so dict
        surgery here can never touch the list being dispatched).
        """
        self._heap[:] = [entry for entry in self._heap
                         if entry[2]._state != _CANCELLED]
        heapify(self._heap)
        buckets = self._buckets
        for when in list(buckets):
            bucket = buckets[when]
            bucket[:] = [entry for entry in bucket
                         if entry[1]._state != _CANCELLED]
            if not bucket:
                del buckets[when]
        self._bucket_count = sum(len(b) for b in buckets.values())
        self._times[:] = buckets.keys()
        heapify(self._times)
        self._cancelled = 0

    def live_heap_size(self) -> int:
        return len(self._heap) + self._bucket_count - self._cancelled

    # -- single-step interface (run_until_event and friends) ---------------

    def _next_bucket(self):
        """(time, bucket) of the earliest live bucket entry, or (None,
        None).  Consumes cancelled prefixes and empty buckets."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets.get(t)
            while bucket and bucket[0][1]._state == _CANCELLED:
                del bucket[0]
                self._cancelled -= 1
                self._bucket_count -= 1
            if bucket:
                return t, bucket
            buckets.pop(t, None)
            heappop(times)
        return None, None

    def peek(self) -> float:
        heap = self._heap
        while heap and heap[0][2]._state == _CANCELLED:
            heappop(heap)
            self._cancelled -= 1
        b_t, _bucket = self._next_bucket()
        h_t = heap[0][0] if heap else None
        if h_t is None:
            return b_t if b_t is not None else _INF
        if b_t is None:
            return h_t
        return h_t if h_t < b_t else b_t

    def step(self) -> None:
        heap = self._heap
        while heap and heap[0][2]._state == _CANCELLED:
            heappop(heap)
            self._cancelled -= 1
        b_t, bucket = self._next_bucket()
        h_t = heap[0][0] if heap else None
        if h_t is None and b_t is None:
            raise SimulationError("no more events to step")
        if b_t is None or (h_t is not None
                           and (h_t < b_t
                                or (h_t == b_t
                                    and heap[0][1] < bucket[0][0]))):
            when, _eid, event = heappop(heap)
        else:
            when = b_t
            event = bucket[0][1]
            del bucket[0]
            self._bucket_count -= 1
            if not bucket:
                self._buckets.pop(when, None)
                heappop(self._times)
        self._now = when
        event._state = _PROCESSED
        callbacks = event.callbacks
        if callbacks:
            event.callbacks = []
            for callback in callbacks:
                callback(event)

    # -- the batched run loop ----------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Merge-dispatch both streams by ``(time, eid)``, one timestamp
        batch at a time, with the process-resume case inlined."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        heap = self._heap
        times = self._times
        buckets = self._buckets
        pop = heappop
        while True:
            while heap and heap[0][2]._state == _CANCELLED:
                pop(heap)
                self._cancelled -= 1
            h_t = heap[0][0] if heap else _INF
            while times and times[0] not in buckets:
                pop(times)  # stale: bucket consumed or compacted away
            b_t = times[0] if times else _INF
            t = h_t if h_t <= b_t else b_t
            if t == _INF or (until is not None and t > until):
                break
            self._now = t
            # Own the bucket for this timestamp: once out of the dict,
            # cancel()-triggered compaction cannot reshuffle it under the
            # index walk.  Same-timestamp arrivals during dispatch create
            # a fresh bucket (with strictly larger eids) that is adopted
            # when this one drains — merge order stays exact.
            bucket = buckets.pop(t, None)
            i = 0
            while True:
                while heap and heap[0][2]._state == _CANCELLED:
                    pop(heap)
                    self._cancelled -= 1
                h_ready = bool(heap) and heap[0][0] == t
                while bucket is not None:
                    if i < len(bucket):
                        if bucket[i][1]._state == _CANCELLED:
                            i += 1
                            self._cancelled -= 1
                            self._bucket_count -= 1
                            continue
                        break
                    bucket = buckets.pop(t, None)
                    i = 0
                b_ready = bucket is not None and i < len(bucket)
                if h_ready and (not b_ready or heap[0][1] < bucket[i][0]):
                    event = pop(heap)[2]
                elif b_ready:
                    event = bucket[i][1]
                    i += 1
                    self._bucket_count -= 1
                else:
                    break
                event._state = _PROCESSED
                cbs = event.callbacks
                if not cbs:
                    continue
                event.callbacks = []
                if (len(cbs) == 1
                        and getattr(cbs[0], "__func__", None) is _RESUME):
                    # Fast path: the sole callback resumes a process.
                    # Inline _resume + _step (send/throw, park on the next
                    # yielded event) without the two call frames.
                    cb = cbs[0]
                    proc = cb.__self__
                    if proc._state != _PENDING:
                        continue
                    proc._waiting_on = None
                    proc._pending_resume = None
                    self._active_process = proc
                    gen = proc._generator
                    try:
                        if event._ok:
                            target = gen.send(event._value)
                        else:
                            target = gen.throw(event._value)
                    except StopIteration as stop:
                        self._active_process = None
                        proc.succeed(stop.value)
                        continue
                    except Interrupt:
                        self._active_process = None
                        proc.succeed(None)
                        continue
                    except BaseException:
                        self._active_process = None
                        raise
                    self._active_process = None
                    if isinstance(target, Event):
                        if target._state != _PROCESSED:
                            proc._waiting_on = target
                            target.callbacks.append(cb)
                        else:
                            proc._wait_for(target)
                    else:
                        proc._step(throw=TypeError(
                            f"process yielded a non-event: {target!r}"))
                    continue
                for callback in cbs:
                    callback(event)
        if self.live_heap_size() == 0:
            # Nothing live can ever fire again: a watched waiter is stuck.
            self._raise_if_deadlocked()
        if until is not None:
            self._now = until
