"""Spec compilers: ScenarioSpec → sweep cells → one run → one outcome.

:func:`run_scenario` is the single execution path behind ``repro run
<spec.json>``: it dispatches a validated :class:`ScenarioSpec` to the
per-scenario compiler, which rebuilds exactly the cell list the legacy
kwargs entry point would have built (so spec-driven runs are
bit-identical to kwargs-driven runs — proved by the differential tests
in ``tests/spec/``), runs it on a :class:`~repro.harness.sweep`
runner with the caller's ``jobs``/``cache``, and wraps the native result
in a :class:`ScenarioOutcome`.

Two cache layers compose here:

* **cell level** — each sweep cell memoizes under its
  :meth:`~repro.harness.sweep.RunSpec.digest` exactly as before;
* **scenario level** — the reduced outcome memoizes under
  :meth:`ScenarioSpec.digest`, so a warm re-run of a whole spec is one
  cache read.  Both live in the same
  :class:`~repro.harness.cache.ResultCache` namespace (code version ×
  ``REPRO_*`` env fingerprint); the spec digest is domain-tagged so the
  two key spaces cannot collide.

Every failing scenario yields minimal replayable specs in
``outcome.reproducers`` — the same idea as ``repro check``'s shrunk
reproducers, generalized to all eight verbs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.spec.scenario import ScenarioSpec, upgrade_workload_spec

__all__ = ["ScenarioOutcome", "ChaosSuiteResult", "run_scenario"]


@dataclass
class ChaosSuiteResult:
    """A chaos suite's trials plus a render/verdict, mirroring the other
    planes' report objects (``repro run`` needs a uniform surface)."""

    results: List[Any] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[Any]:
        return [r for r in self.results if not r.ok]

    def render(self) -> str:
        lines = [r.summary() for r in self.results]
        bad = len(self.failures)
        verdict = ("all robustness invariants hold" if not bad
                   else f"{bad} trial(s) FAILING")
        lines.append(f"{len(self.results)} trial(s): {verdict}")
        return "\n".join(lines)


@dataclass
class ScenarioOutcome:
    """What one compiled scenario produced."""

    spec: ScenarioSpec
    result: Any
    ok: bool = True
    #: Minimal replayable specs for whatever failed (empty when ok).
    reproducers: List[ScenarioSpec] = field(default_factory=list)
    #: True when the whole outcome came from the scenario-level cache.
    cached: bool = False
    #: Sweep-runner statistics of the run that produced this outcome
    #: (``None`` until :func:`run_scenario` fills it in).
    stats: Any = None

    def render(self) -> str:
        return self.result.render()

    def dump_reproducers(self, out_dir) -> List[str]:
        """Write one ``<scenario>-<digest12>.json`` spec per reproducer."""
        os.makedirs(out_dir, exist_ok=True)
        paths = []
        for repro_spec in self.reproducers:
            path = os.path.join(
                out_dir,
                f"{repro_spec.scenario}-{repro_spec.digest()[:12]}.json",
            )
            with open(path, "w") as handle:
                json.dump(repro_spec.to_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            paths.append(path)
        return paths


# ----------------------------------------------------------------------
# Per-scenario compilers
# ----------------------------------------------------------------------


def _nondefault(values: dict, defaults: dict) -> dict:
    """Only the entries differing from the callee's defaults: cells built
    from a spec then share cache digests with kwargs-form callers that
    leave those arguments unset."""
    return {k: v for k, v in values.items() if v != defaults[k]}


def _run_figure(spec: ScenarioSpec) -> ScenarioOutcome:
    from repro.cli import FIGURES

    fn, _description, _takes_duration = FIGURES[spec.workload["figure"]]
    options = spec.workload["options"] or {}
    return ScenarioOutcome(spec=spec, result=fn(**options))


def _run_claims(spec: ScenarioSpec) -> ScenarioOutcome:
    from repro.harness.claims import evaluate_claims

    # jobs/cache left at None: the caller's ``configured`` runner (set up
    # by run_scenario) already carries them, and reusing it keeps all
    # sweep statistics on one runner.
    report = evaluate_claims(duration=spec.workload["duration"])
    ok = report.passed == report.total
    return ScenarioOutcome(
        spec=spec, result=report, ok=ok,
        reproducers=[] if ok else [spec],
    )


def _chaos_trial_kwargs(spec: ScenarioSpec) -> dict:
    workload = spec.workload
    return _nondefault(
        {
            "layout": spec.topology["layout"],
            "threads": workload["threads"],
            "groups_per_thread": workload["groups_per_thread"],
            "writes_per_group": workload["writes_per_group"],
            "depth": workload["depth"],
            "limit": workload["limit"],
        },
        {
            "layout": "optane", "threads": 4, "groups_per_thread": 12,
            "writes_per_group": 2, "depth": 4, "limit": 50e-3,
        },
    )


def _run_chaos(spec: ScenarioSpec) -> ScenarioOutcome:
    from repro.harness.chaos import (
        chaos_suite_sweep,
        run_scale_chaos_trial,
    )
    from repro.harness.sweep import RunSpec, get_runner

    workload = spec.workload
    trial_kwargs = _chaos_trial_kwargs(spec)
    runner = get_runner()
    if spec.topology["initiators"] > 1:
        specs = [
            RunSpec.make(
                run_scale_chaos_trial,
                label=f"chaos/{system}/x{spec.topology['initiators']}"
                      f"/seed{workload['base_seed'] + i}",
                system=system,
                seed=workload["base_seed"] + i,
                initiators=spec.topology["initiators"],
                victim=workload["victim"],
                **trial_kwargs,
            )
            for system in workload["systems"]
            for i in range(workload["trials"])
        ]
        results = runner.map(specs)
    else:
        if spec.devices["prefill"] > 0:
            trial_kwargs["prefill"] = spec.devices["prefill"]
        if spec.faults is not None:
            trial_kwargs["plan_spec"] = spec.faults
        sweep = chaos_suite_sweep(
            systems=tuple(workload["systems"]),
            trials=workload["trials"],
            base_seed=workload["base_seed"],
            **trial_kwargs,
        )
        results = runner.map(sweep.specs)

    suite = ChaosSuiteResult(results=results)
    reproducers = [
        spec.with_(
            name=f"failing chaos trial {r.system}/seed{r.seed}",
            workload={**workload, "systems": [r.system], "trials": 1,
                      "base_seed": r.seed},
        )
        for r in suite.failures
    ]
    return ScenarioOutcome(
        spec=spec, result=suite, ok=suite.ok, reproducers=reproducers,
    )


def _run_check(spec: ScenarioSpec,
               reproducer_dir: Optional[str]) -> ScenarioOutcome:
    from repro.check.runner import build_matrix_specs, run_check_matrix
    from repro.harness.sweep import get_runner

    workload = spec.workload
    shape = {
        "streams": workload["streams"],
        "groups_per_stream": workload["groups_per_stream"],
        "writes_per_group": workload["writes_per_group"],
        "depth": workload["depth"],
        "flush_every": workload["flush_every"],
        "max_points": spec.oracle["max_points"],
    }
    # Non-default topology/devices/faults require explicit layouts
    # (validated), so build_matrix_specs never double-passes initiators
    # through its SCALE_MATRIX loop.
    if spec.topology["initiators"] > 1:
        shape["initiators"] = spec.topology["initiators"]
    if spec.devices["prefill"] > 0:
        shape["prefill"] = spec.devices["prefill"]
    if spec.faults is not None:
        shape["faults"] = spec.faults
    cells = build_matrix_specs(
        systems=workload["systems"],
        layouts=workload["layouts"],
        seeds=workload["seeds"],
        **shape,
    )
    result = run_check_matrix(
        cells,
        runner=get_runner(),
        shrink=spec.oracle["shrink"],
        reproducer_dir=reproducer_dir,
    )
    reproducers = [
        upgrade_workload_spec(minimal.to_dict())
        for minimal in result.reproducers
    ]
    return ScenarioOutcome(
        spec=spec, result=result, ok=result.ok, reproducers=reproducers,
    )


def _run_saturate(spec: ScenarioSpec) -> ScenarioOutcome:
    from repro.harness.saturate import saturation_curves

    workload = spec.workload
    result = saturation_curves(
        systems=workload["systems"],
        loads_kiops=workload["loads_kiops"],
        layout=spec.topology["layout"],
        initiators=spec.topology["initiators"],
        tenants=workload["tenants"],
        duration=workload["duration"],
        steering=spec.topology["steering"],
        seed=workload["seed"],
        engine=workload["engine"],
    )
    return ScenarioOutcome(spec=spec, result=result)


def _run_overload(spec: ScenarioSpec) -> ScenarioOutcome:
    from repro.harness.overload import (
        PROTECTIONS,
        gray_result,
        overload_curves,
    )

    workload = spec.workload
    if workload["mode"] == "gray":
        result = gray_result(
            duration=workload["duration"],
            seed=workload["seed"],
            offered_kiops=workload["offered_kiops"],
            degrade_factor=workload["degrade_factor"],
        )
        return ScenarioOutcome(spec=spec, result=result)
    protections = spec.policies["protections"]
    result = overload_curves(
        systems=workload["systems"],
        protections=(protections if protections is not None
                     else list(PROTECTIONS)),
        loads_kiops=workload["loads_kiops"],
        layout=spec.topology["layout"],
        initiators=spec.topology["initiators"],
        tenants=workload["tenants"],
        duration=workload["duration"],
        seed=workload["seed"],
    )
    return ScenarioOutcome(spec=spec, result=result)


def _run_tenants(spec: ScenarioSpec) -> ScenarioOutcome:
    from repro.harness.tenants import noisy_neighbor_result, tenant_curves

    workload = spec.workload
    if workload["mode"] == "storm":
        result = noisy_neighbor_result(
            systems=workload["systems"],
            **_nondefault(
                {
                    "quantum": workload["quantum"],
                    "duration": workload["duration"],
                    "seed": workload["seed"],
                },
                {"quantum": 8.0, "duration": 3e-3, "seed": 42},
            ),
        )
        # The acceptance criterion, both directions: QoS on holds the
        # gold SLO on every system, QoS off demonstrably violates it.
        ok = all(
            (row["within_slo"] == "yes") == (row["qos"] == "on")
            for row in result.rows
        )
        return ScenarioOutcome(
            spec=spec, result=result, ok=ok,
            reproducers=[] if ok else [spec],
        )
    result = tenant_curves(
        systems=workload["systems"],
        loads_kiops=workload["loads_kiops"],
        layout=spec.topology["layout"],
        initiators=spec.topology["initiators"],
        streams=workload["streams"],
        num_tenants=workload["num_tenants"],
        zipf_alpha=workload["zipf_alpha"],
        diurnal_amplitude=workload["diurnal_amplitude"],
        diurnal_period=workload["diurnal_period"],
        qos=workload["qos"],
        quantum=workload["quantum"],
        duration=workload["duration"],
        steering=spec.topology["steering"],
        seed=workload["seed"],
    )
    return ScenarioOutcome(spec=spec, result=result)


def _run_qualify(spec: ScenarioSpec) -> ScenarioOutcome:
    from repro.harness.qualify import qualify_report

    workload = spec.workload
    report = qualify_report(
        profile=workload["profile"],
        systems=workload["systems"],
        blocks_kib=workload["blocks_kib"],
        queue_depths=workload["queue_depths"],
        patterns=workload["patterns"],
        layout=spec.topology["layout"],
        duration=workload["duration"],
        seed=workload["seed"],
        floors_override=spec.policies["floors"],
        oracle=spec.oracle["enabled"],
        sustained=workload["sustained"],
    )
    reproducers = []
    for cell in report.cells:
        if cell.ok:
            continue
        narrowed = dict(workload)
        narrowed["sustained"] = False
        if cell.phase == "matrix":
            narrowed.update(
                systems=[cell.system], blocks_kib=[cell.block_kib],
                queue_depths=[cell.queue_depth], patterns=[cell.pattern],
            )
            oracle = {**spec.oracle, "enabled": False}
        elif cell.phase == "sustained":
            narrowed.update(systems=[cell.system], blocks_kib=[],
                            sustained=True)
            oracle = {**spec.oracle, "enabled": False}
        else:  # oracle cells: the trio is profile-shaped, keep it whole
            narrowed["blocks_kib"] = []
            oracle = {**spec.oracle, "enabled": True}
        reproducers.append(spec.with_(
            name=f"failing qualify cell {cell.key}",
            workload=narrowed, oracle=oracle,
        ))
    return ScenarioOutcome(
        spec=spec, result=report, ok=report.ok, reproducers=reproducers,
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_scenario(
    spec: ScenarioSpec,
    jobs: int = 1,
    cache=None,
    reproducer_dir: Optional[str] = None,
) -> ScenarioOutcome:
    """Compile and run one spec; returns its :class:`ScenarioOutcome`.

    ``cache`` (a :class:`~repro.harness.cache.ResultCache`) memoizes at
    both the cell and the scenario level; a warm scenario-level hit
    skips compilation entirely and returns the stored outcome with
    ``cached=True``.  ``reproducer_dir`` is forwarded to the check
    matrix's shrink-and-dump pass.
    """
    from repro.harness.sweep import configured

    if cache is not None:
        hit, value = cache.get(spec.digest())
        if hit:
            value.cached = True
            return value

    with configured(jobs=jobs, cache=cache) as runner:
        if spec.scenario == "figure":
            outcome = _run_figure(spec)
        elif spec.scenario == "claims":
            outcome = _run_claims(spec)
        elif spec.scenario == "chaos":
            outcome = _run_chaos(spec)
        elif spec.scenario == "check":
            outcome = _run_check(spec, reproducer_dir)
        elif spec.scenario == "saturate":
            outcome = _run_saturate(spec)
        elif spec.scenario == "overload":
            outcome = _run_overload(spec)
        elif spec.scenario == "qualify":
            outcome = _run_qualify(spec)
        elif spec.scenario == "tenants":
            outcome = _run_tenants(spec)
        else:  # pragma: no cover - from_dict already rejects these
            raise ValueError(f"unknown scenario {spec.scenario!r}")
        outcome.stats = runner.stats

    if cache is not None:
        cache.put(spec.digest(), outcome)
    return outcome
