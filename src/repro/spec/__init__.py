"""repro.spec: the one declarative configuration surface.

A versioned, JSON-serializable :class:`ScenarioSpec` describes any
experiment in this repository — figure, claims scorecard, chaos suite,
crash-consistency check, saturation sweep, overload/gray scenario or
qualification matrix — as one document of normalized sections
(topology × devices × workload × faults × policies × oracle).
:func:`load_spec` also upgrades every legacy JSON shape (bare
``WorkloadSpec``, check reproducers, bare fault plans) to spec v1, and
:func:`run_scenario` compiles a spec onto the sweep runner with outputs
bit-identical to the legacy kwargs entry points.

See ``docs/scenario_spec.md`` for the field-by-field reference and
cookbook.
"""

from repro.spec.scenario import (
    SCENARIOS,
    SPEC_VERSION,
    ScenarioSpec,
    SpecError,
    diff_specs,
    load_spec,
    load_spec_file,
    upgrade_fault_plan,
    upgrade_workload_spec,
)
from repro.spec.compile import ChaosSuiteResult, ScenarioOutcome, run_scenario

__all__ = [
    "SCENARIOS",
    "SPEC_VERSION",
    "ScenarioSpec",
    "SpecError",
    "diff_specs",
    "load_spec",
    "load_spec_file",
    "upgrade_fault_plan",
    "upgrade_workload_spec",
    "ChaosSuiteResult",
    "ScenarioOutcome",
    "run_scenario",
]
