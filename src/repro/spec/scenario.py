"""The one declarative configuration surface: a versioned ScenarioSpec.

Every harness in this repository — figures, claims, chaos, check,
saturate, overload, qualify, tenants — used to be configured through its own
ad-hoc surface (kwargs here, ``WorkloadSpec`` JSON there, a hand-built
:class:`~repro.sim.faults.FaultPlan` elsewhere).  A :class:`ScenarioSpec`
replaces all of them: one versioned, JSON-serializable document of six
sections —

* ``topology``  — layout, initiator hosts, steering policy;
* ``devices``   — device-realism state (prefill fraction);
* ``workload``  — the scenario-specific shape (systems, loads, shapes);
* ``faults``    — an embedded fault plan (:class:`FaultPlan` sub-section);
* ``policies``  — robustness/qualification policies (protection profiles,
  floor overrides);
* ``oracle``    — crash-oracle configuration (crash-point budget, shrink).

— plus ``version`` (this module understands v1) and ``scenario`` (which
harness compiles it).  Validation is strict: unknown fields, unknown
scenarios, and sections a scenario cannot honor are all errors, never
silently ignored.

**Canonical form and digest.**  :meth:`ScenarioSpec.from_dict`
materializes every default (including per-scenario defaults such as
qualify's profile-derived matrix axes), so two documents that mean the
same scenario normalize to the same canonical JSON and therefore the same
:meth:`ScenarioSpec.digest` — the one content-address used by the result
cache.  The display-only ``name`` field is excluded from the digest.

**Legacy upgrade.**  :func:`load_spec` also accepts the pre-spec JSON
shapes — a bare :class:`~repro.check.workload.WorkloadSpec` dict, a
``repro check`` reproducer payload, or a bare fault-plan dict — and
upgrades each to an equivalent v1 spec, so every reproducer ever dumped
stays replayable via ``repro run``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SPEC_VERSION",
    "SCENARIOS",
    "SpecError",
    "ScenarioSpec",
    "load_spec",
    "load_spec_file",
    "diff_specs",
    "upgrade_workload_spec",
    "upgrade_fault_plan",
]

#: The spec version this module reads and writes.
SPEC_VERSION = 1

#: Every harness verb a spec can target.
SCENARIOS = (
    "figure", "claims", "chaos", "check", "saturate", "overload", "qualify",
    "tenants",
)

#: Domain tag mixed into the digest so a ScenarioSpec digest can never
#: collide with a :meth:`~repro.harness.sweep.RunSpec.digest` (both live
#: in the same :class:`~repro.harness.cache.ResultCache` namespace).
_DIGEST_DOMAIN = "repro-scenario-spec-v1"


class SpecError(ValueError):
    """A scenario spec failed validation."""


# ----------------------------------------------------------------------
# Field tables
# ----------------------------------------------------------------------

_REQUIRED = object()


@dataclass(frozen=True)
class _Field:
    """One validated spec field: type, default, constraints."""

    kind: str                     # int | float | number | bool | str | dict
    #                               | list:<scalar>  ("number" accepts int or
    #                               float and preserves which — used where
    #                               legacy kwargs defaults are ints, so
    #                               compiled cells stay bit-identical)
    default: Any = None
    required: bool = False
    nullable: bool = False
    choices: Tuple = ()
    minimum: Optional[float] = None
    maximum: Optional[float] = None


def _type_name(value: Any) -> str:
    return type(value).__name__


def _normalize_value(value: Any, spec: _Field, path: str) -> Any:
    """Coerce ``value`` to the field's canonical form (or raise)."""
    if value is None:
        if spec.nullable:
            return None
        raise SpecError(f"{path}: may not be null")
    scalar = {
        "int": int, "float": float, "number": float, "bool": bool, "str": str,
    }
    if spec.kind in scalar:
        expected = scalar[spec.kind]
        if spec.kind == "number":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(
                    f"{path}: expected number, got {_type_name(value)}"
                )
            # No coercion: int stays int, float stays float.
        elif expected is bool:
            if not isinstance(value, bool):
                raise SpecError(f"{path}: expected bool, got {_type_name(value)}")
        elif expected is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(f"{path}: expected int, got {_type_name(value)}")
        elif expected is float:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(
                    f"{path}: expected number, got {_type_name(value)}"
                )
            value = float(value)
        elif not isinstance(value, str):
            raise SpecError(f"{path}: expected str, got {_type_name(value)}")
        if spec.choices and value not in spec.choices:
            raise SpecError(
                f"{path}: {value!r} not one of {sorted(spec.choices)}"
            )
        if spec.minimum is not None and value < spec.minimum:
            raise SpecError(f"{path}: {value!r} below minimum {spec.minimum}")
        if spec.maximum is not None and value > spec.maximum:
            raise SpecError(f"{path}: {value!r} above maximum {spec.maximum}")
        return value
    if spec.kind.startswith("list:"):
        if not isinstance(value, (list, tuple)):
            raise SpecError(f"{path}: expected list, got {_type_name(value)}")
        item_field = _Field(kind=spec.kind[len("list:"):],
                            minimum=spec.minimum, maximum=spec.maximum,
                            choices=spec.choices)
        return [
            _normalize_value(item, item_field, f"{path}[{i}]")
            for i, item in enumerate(value)
        ]
    if spec.kind == "dict":
        if not isinstance(value, dict):
            raise SpecError(f"{path}: expected object, got {_type_name(value)}")
        return _normalize_json(value, path)
    raise AssertionError(f"unknown field kind {spec.kind!r}")


def _normalize_json(value: Any, path: str) -> Any:
    """Strict JSON normalization for free-form dict fields."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_normalize_json(v, f"{path}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, dict):
        return {
            str(k): _normalize_json(v, f"{path}.{k}")
            for k, v in value.items()
        }
    raise SpecError(f"{path}: {_type_name(value)} is not JSON-encodable")


def _normalize_section(name: str, data: Any,
                       table: Dict[str, _Field]) -> Dict[str, Any]:
    """Validate one section dict against its field table, fill defaults."""
    if data is None:
        data = {}
    if not isinstance(data, dict):
        raise SpecError(f"{name}: expected an object, got {_type_name(data)}")
    unknown = set(data) - set(table)
    if unknown:
        raise SpecError(
            f"{name}: unknown field(s) {sorted(unknown)} "
            f"(known: {sorted(table)})"
        )
    out: Dict[str, Any] = {}
    for key, spec in table.items():
        if key in data:
            out[key] = _normalize_value(data[key], spec, f"{name}.{key}")
        elif spec.required:
            raise SpecError(f"{name}.{key}: required field is missing")
        else:
            default = spec.default
            out[key] = list(default) if isinstance(default, tuple) else default
    return out


# -- shared sections ---------------------------------------------------

_TOPOLOGY = {
    "layout": _Field("str", default=None, nullable=True),
    "initiators": _Field("int", default=None, nullable=True, minimum=1),
    "steering": _Field("str", default="pin",
                       choices=("pin", "round-robin", "least-loaded",
                                "flow-hash")),
}

_DEVICES = {
    "prefill": _Field("float", default=0.0, minimum=0.0, maximum=1.0),
}

_POLICIES = {
    "protections": _Field("list:str", default=None, nullable=True),
    "floors": _Field("dict", default=None, nullable=True),
}

_ORACLE = {
    "enabled": _Field("bool", default=True),
    "max_points": _Field("int", default=0, minimum=0),
    "shrink": _Field("bool", default=True),
}

_FAULT_FIELDS = {
    "seed": _Field("int", default=0),
    "message_loss": _Field("float", default=0.0, minimum=0.0, maximum=1.0),
    "corruption": _Field("float", default=0.0, minimum=0.0, maximum=1.0),
    "delay_probability": _Field("float", default=0.0, minimum=0.0,
                                maximum=1.0),
    "delay_range": _Field("list:float", default=(5e-6, 50e-6), minimum=0.0),
    "timed": _Field("dict", default=None, nullable=True),  # list, see below
}

#: kind -> required detail fields for one timed fault entry.
_TIMED_KINDS: Dict[str, Dict[str, _Field]] = {
    "qp_breakdown": {
        "at": _Field("float", required=True, minimum=0.0),
        "qp_index": _Field("int", required=True, minimum=0),
    },
    "target_stall": {
        "at": _Field("float", required=True, minimum=0.0),
        "target_index": _Field("int", required=True, minimum=0),
        "duration": _Field("float", required=True, minimum=0.0),
    },
    "target_crash": {
        "at": _Field("float", required=True, minimum=0.0),
        "target_index": _Field("int", required=True, minimum=0),
        "restart_after": _Field("float", default=None, nullable=True,
                                minimum=0.0),
    },
    "degrade": {
        "at": _Field("float", required=True, minimum=0.0),
        "target_index": _Field("int", required=True, minimum=0),
        "factor": _Field("float", required=True, minimum=1.0),
        "duration": _Field("float", default=None, nullable=True,
                           minimum=0.0),
    },
}


def _normalize_faults(data: Any) -> Optional[Dict[str, Any]]:
    """Validate the ``faults`` section (an embedded fault plan)."""
    if data is None:
        return None
    if not isinstance(data, dict):
        raise SpecError(f"faults: expected an object, got {_type_name(data)}")
    timed_raw = data.get("timed")
    without_timed = {k: v for k, v in data.items() if k != "timed"}
    out = _normalize_section("faults", without_timed,
                             {k: v for k, v in _FAULT_FIELDS.items()
                              if k != "timed"})
    if len(out["delay_range"]) != 2 or out["delay_range"][1] < out["delay_range"][0]:
        raise SpecError(f"faults.delay_range: bad range {out['delay_range']}")
    if out["message_loss"] + out["corruption"] + out["delay_probability"] > 1.0:
        raise SpecError("faults: probabilities must sum to at most 1")
    timed: List[Dict[str, Any]] = []
    if timed_raw is not None:
        if not isinstance(timed_raw, (list, tuple)):
            raise SpecError("faults.timed: expected a list")
        for i, entry in enumerate(timed_raw):
            if not isinstance(entry, dict):
                raise SpecError(f"faults.timed[{i}]: expected an object")
            kind = entry.get("kind")
            if kind not in _TIMED_KINDS:
                raise SpecError(
                    f"faults.timed[{i}].kind: {kind!r} not one of "
                    f"{sorted(_TIMED_KINDS)}"
                )
            detail = {k: v for k, v in entry.items() if k != "kind"}
            normalized = _normalize_section(
                f"faults.timed[{i}]", detail, _TIMED_KINDS[kind]
            )
            timed.append({"kind": kind, **normalized})
    out["timed"] = timed
    return out


# -- per-scenario workload tables --------------------------------------

_WORKLOADS: Dict[str, Dict[str, _Field]] = {
    "figure": {
        "figure": _Field("str", required=True),
        "options": _Field("dict", default=None, nullable=True),
    },
    "claims": {
        "duration": _Field("float", default=2.5e-3, minimum=0.0),
    },
    "chaos": {
        "systems": _Field("list:str", default=("rio", "horae", "linux")),
        "trials": _Field("int", default=30, minimum=1),
        "base_seed": _Field("int", default=1000),
        "threads": _Field("int", default=4, minimum=1),
        "groups_per_thread": _Field("int", default=12, minimum=1),
        "writes_per_group": _Field("int", default=2, minimum=1),
        "depth": _Field("int", default=4, minimum=1),
        "limit": _Field("float", default=50e-3, minimum=0.0),
        "victim": _Field("int", default=0, minimum=0),
    },
    "check": {
        "systems": _Field("list:str", default=None, nullable=True),
        "layouts": _Field("list:str", default=None, nullable=True),
        "seeds": _Field("list:int", default=(0, 1, 2)),
        "streams": _Field("int", default=2, minimum=1),
        "groups_per_stream": _Field("int", default=4, minimum=1),
        "writes_per_group": _Field("int", default=2, minimum=1),
        "depth": _Field("int", default=2, minimum=1),
        "flush_every": _Field("int", default=2, minimum=0),
    },
    "saturate": {
        "systems": _Field("list:str",
                          default=("linux", "horae", "rio", "barrier")),
        "loads_kiops": _Field("list:number",
                              default=(25, 50, 100, 200, 400, 800),
                              minimum=0.0),
        "tenants": _Field("int", default=4, minimum=1),
        "duration": _Field("float", default=2e-3, minimum=0.0),
        "seed": _Field("int", default=42),
        "engine": _Field("str", default="heap",
                         choices=("heap", "calendar")),
    },
    "overload": {
        "mode": _Field("str", default="metastable",
                       choices=("metastable", "gray")),
        "systems": _Field("list:str", default=("rio",)),
        "loads_kiops": _Field("list:number", default=(400, 1100, 2200),
                              minimum=0.0),
        "tenants": _Field("int", default=4, minimum=1),
        "duration": _Field("float", default=None, nullable=True,
                           minimum=0.0),
        "seed": _Field("int", default=42),
        "offered_kiops": _Field("number", default=120, minimum=0.0),
        "degrade_factor": _Field("float", default=8.0, minimum=1.0),
    },
    "qualify": {
        "profile": _Field("str", default="smoke", choices=("smoke", "full")),
        "systems": _Field("list:str", default=None, nullable=True),
        "blocks_kib": _Field("list:int", default=None, nullable=True),
        "queue_depths": _Field("list:int", default=None, nullable=True),
        "patterns": _Field("list:str", default=None, nullable=True),
        "duration": _Field("float", default=None, nullable=True,
                           minimum=0.0),
        "seed": _Field("int", default=7),
        "sustained": _Field("bool", default=True),
    },
    "tenants": {
        "mode": _Field("str", default="curves", choices=("curves", "storm")),
        "systems": _Field("list:str", default=("linux", "horae", "rio")),
        "loads_kiops": _Field("list:number",
                              default=(25, 50, 100, 200, 400, 800),
                              minimum=0.0),
        "streams": _Field("int", default=4, minimum=1),
        "num_tenants": _Field("int", default=64, minimum=1),
        "zipf_alpha": _Field("float", default=1.1, nullable=True,
                             minimum=0.0),
        "diurnal_amplitude": _Field("float", default=0.0, minimum=0.0),
        "diurnal_period": _Field("float", default=1e-3, minimum=0.0),
        "qos": _Field("bool", default=False),
        "quantum": _Field("float", default=8.0, minimum=0.0),
        "duration": _Field("float", default=None, nullable=True,
                           minimum=0.0),
        "seed": _Field("int", default=42),
    },
}

#: Per-scenario default for ``topology.layout`` (``None`` = the scenario
#: spans layouts itself: check's matrix lives in ``workload.layouts``).
_DEFAULT_LAYOUT: Dict[str, Optional[str]] = {
    "figure": None,
    "claims": None,
    "chaos": "optane",
    "check": None,
    "saturate": "optane",
    "overload": "optane",
    "qualify": "flash-qual",
    "tenants": "optane",
}

#: Per-scenario default for ``topology.initiators`` — saturate and
#: overload drive a 2-initiator shard by default, matching the legacy
#: kwargs entry points.
_DEFAULT_INITIATORS: Dict[str, int] = {
    "figure": 1,
    "claims": 1,
    "chaos": 1,
    "check": 1,
    "saturate": 2,
    "overload": 2,
    "qualify": 1,
    "tenants": 2,
}

#: Sections a scenario's compiler honors beyond ``workload``; any other
#: section left non-default is a validation error, never a silent no-op.
_ALLOWED_SECTIONS: Dict[str, Tuple[str, ...]] = {
    "figure": (),
    "claims": (),
    "chaos": ("topology", "devices", "faults"),
    "check": ("topology", "devices", "faults", "oracle"),
    "saturate": ("topology",),
    "overload": ("topology", "policies"),
    "qualify": ("topology", "policies", "oracle"),
    "tenants": ("topology",),
}

_SECTION_TABLES = {
    "topology": _TOPOLOGY,
    "devices": _DEVICES,
    "policies": _POLICIES,
    "oracle": _ORACLE,
}

_TOP_LEVEL_KEYS = {
    "version", "scenario", "name", "topology", "devices", "workload",
    "faults", "policies", "oracle",
}


def _section_defaults(name: str) -> Dict[str, Any]:
    return _normalize_section(name, {}, _SECTION_TABLES[name])


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class ScenarioSpec:
    """One fully-normalized v1 scenario (always build via
    :meth:`from_dict` / :func:`load_spec`, never the constructor)."""

    scenario: str
    name: str = ""
    version: int = SPEC_VERSION
    topology: Dict[str, Any] = field(default_factory=dict)
    devices: Dict[str, Any] = field(default_factory=dict)
    workload: Dict[str, Any] = field(default_factory=dict)
    faults: Optional[Dict[str, Any]] = None
    policies: Dict[str, Any] = field(default_factory=dict)
    oracle: Dict[str, Any] = field(default_factory=dict)

    # -- construction --------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Validate + normalize a raw document into a canonical spec."""
        if not isinstance(data, dict):
            raise SpecError(f"spec: expected an object, got {_type_name(data)}")
        unknown = set(data) - _TOP_LEVEL_KEYS
        if unknown:
            raise SpecError(
                f"spec: unknown top-level key(s) {sorted(unknown)}"
            )
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SpecError(
                f"spec.version: {version!r} is not supported "
                f"(this build reads v{SPEC_VERSION})"
            )
        scenario = data.get("scenario")
        if scenario not in SCENARIOS:
            raise SpecError(
                f"spec.scenario: {scenario!r} not one of {sorted(SCENARIOS)}"
            )
        name = data.get("name", "")
        if not isinstance(name, str):
            raise SpecError("spec.name: expected str")

        topology = _normalize_section("topology", data.get("topology"),
                                      _TOPOLOGY)
        devices = _normalize_section("devices", data.get("devices"), _DEVICES)
        policies = _normalize_section("policies", data.get("policies"),
                                      _POLICIES)
        oracle = _normalize_section("oracle", data.get("oracle"), _ORACLE)
        faults = _normalize_faults(data.get("faults"))
        workload = _normalize_section(
            "workload", data.get("workload"), _WORKLOADS[scenario]
        )

        # Materialize per-scenario defaults so equivalent documents share
        # one canonical form (and therefore one digest).
        if topology["layout"] is None:
            topology["layout"] = _DEFAULT_LAYOUT[scenario]
        if topology["initiators"] is None:
            topology["initiators"] = _DEFAULT_INITIATORS[scenario]

        # Reject sections the scenario's compiler would ignore.  Topology
        # compares against its materialized defaults so canonical output
        # (which spells those defaults out) always re-loads.
        allowed = _ALLOWED_SECTIONS[scenario]
        section_defaults = {
            "topology": {**_section_defaults("topology"),
                         "layout": _DEFAULT_LAYOUT[scenario],
                         "initiators": _DEFAULT_INITIATORS[scenario]},
            "devices": _section_defaults("devices"),
            "policies": _section_defaults("policies"),
            "oracle": _section_defaults("oracle"),
        }
        for section_name, value in (
            ("topology", topology), ("devices", devices),
            ("policies", policies), ("oracle", oracle),
        ):
            if section_name in allowed:
                continue
            if value != section_defaults[section_name]:
                raise SpecError(
                    f"{section_name}: the {scenario!r} scenario does not "
                    f"use this section; remove it (or leave every field "
                    "at its default)"
                )
        if faults is not None and "faults" not in allowed:
            raise SpecError(
                f"faults: the {scenario!r} scenario does not support an "
                "embedded fault plan"
            )
        spec = cls(
            scenario=scenario, name=name, version=SPEC_VERSION,
            topology=topology, devices=devices, workload=workload,
            faults=faults, policies=policies, oracle=oracle,
        )
        _validate_scenario(spec)
        return _resolve_scenario_defaults(spec)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "scenario": self.scenario,
            "name": self.name,
            "topology": dict(self.topology),
            "devices": dict(self.devices),
            "workload": json.loads(json.dumps(self.workload)),
            "faults": (json.loads(json.dumps(self.faults))
                       if self.faults is not None else None),
            "policies": json.loads(json.dumps(self.policies)),
            "oracle": dict(self.oracle),
        }

    def canonical_json(self) -> str:
        """Canonical serialization: sorted keys, compact separators,
        every default materialized.  Parsing it back yields an equal
        spec (idempotence is property-tested)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Stable content address (``name`` excluded: it is display-only).

        This digest is the spec's key in the result cache; together with
        the cache namespace (source-tree digest + ``REPRO_*`` env
        fingerprint, see :func:`repro.harness.cache.code_version`) it is
        the *entire* cache-invalidation rule.
        """
        payload = self.to_dict()
        del payload["name"]
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(
            f"{_DIGEST_DOMAIN}\0{encoded}".encode()
        ).hexdigest()

    def with_(self, **changes) -> "ScenarioSpec":
        """A normalized copy with top-level sections replaced."""
        data = self.to_dict()
        data.update(changes)
        return ScenarioSpec.from_dict(data)

    # -- equality (by canonical content, not object identity) ----------

    def __eq__(self, other) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.canonical_json())

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (f"<ScenarioSpec v{self.version} {self.scenario}{label} "
                f"digest={self.digest()[:12]}>")


# ----------------------------------------------------------------------
# Cross-field validation + per-scenario default resolution
# ----------------------------------------------------------------------

#: Timed-fault kinds the (unhardened) check testbed tolerates: faults
#: that only slow things down.  Message loss / corruption / QP breakdown
#: need the chaos plane's retrying driver and would deadlock the checker
#: workload, so they are rejected at validation time.
_CHECK_SAFE_TIMED = ("target_stall", "degrade")


def _validate_scenario(spec: ScenarioSpec) -> None:
    scenario, workload = spec.scenario, spec.workload
    if scenario == "figure":
        from repro.cli import FIGURES  # lazy: repro.cli imports lazily too

        figure = workload["figure"]
        if figure not in FIGURES:
            raise SpecError(
                f"workload.figure: unknown figure {figure!r} "
                f"(see `python -m repro list`)"
            )
    elif scenario == "check":
        if spec.faults is not None:
            plan = spec.faults
            if plan["message_loss"] or plan["corruption"]:
                raise SpecError(
                    "faults: the check scenario runs an unhardened driver; "
                    "message_loss/corruption would deadlock the workload — "
                    "use delay_probability and timed stall/degrade faults, "
                    "or a chaos scenario"
                )
            for i, entry in enumerate(plan["timed"]):
                if entry["kind"] not in _CHECK_SAFE_TIMED:
                    raise SpecError(
                        f"faults.timed[{i}]: {entry['kind']!r} is not "
                        f"supported under the crash oracle (allowed: "
                        f"{list(_CHECK_SAFE_TIMED)})"
                    )
        needs_layouts = (
            spec.topology["initiators"] > 1
            or spec.devices["prefill"] > 0
            or spec.faults is not None
        )
        if needs_layouts and workload["layouts"] is None:
            raise SpecError(
                "workload.layouts: explicit layouts are required when "
                "initiators > 1, prefill > 0 or a fault plan is embedded "
                "(the default per-system matrix already includes its own "
                "multi-initiator cells)"
            )
        if spec.topology["layout"] is not None:
            raise SpecError(
                "topology.layout: the check scenario spans layouts via "
                "workload.layouts; leave topology.layout null"
            )
        if spec.topology["steering"] != "pin":
            raise SpecError(
                "topology.steering: the check testbed does not steer "
                "completions; leave it at 'pin'"
            )
    elif scenario == "chaos":
        if spec.topology["initiators"] > 1:
            if spec.faults is not None:
                raise SpecError(
                    "faults: multi-initiator chaos trials build their own "
                    "victim-confined plan; remove the faults section or "
                    "set topology.initiators to 1"
                )
            if spec.devices["prefill"] > 0:
                raise SpecError(
                    "devices.prefill: not supported for multi-initiator "
                    "chaos trials"
                )
        if spec.topology["steering"] != "pin":
            raise SpecError(
                "topology.steering: chaos trials pin completions; leave "
                "it at 'pin'"
            )
    elif scenario == "overload":
        if workload["mode"] == "gray":
            defaults = _WORKLOADS["overload"]
            for key in ("systems", "loads_kiops", "tenants"):
                default = defaults[key].default
                default = (list(default) if isinstance(default, tuple)
                           else default)
                if workload[key] != default:
                    raise SpecError(
                        f"workload.{key}: the gray scenario is a fixed "
                        "single-cell experiment; only duration, seed, "
                        "offered_kiops and degrade_factor apply"
                    )
            if (spec.topology != {**_section_defaults("topology"),
                                  "layout": _DEFAULT_LAYOUT["overload"],
                                  "initiators":
                                      _DEFAULT_INITIATORS["overload"]}):
                raise SpecError(
                    "topology: the gray scenario runs on its own fixed "
                    "2-target layout; leave the topology section out"
                )
        if spec.policies["floors"] is not None:
            raise SpecError("policies.floors: only the qualify scenario "
                            "takes floor overrides")
        protections = spec.policies["protections"]
        if protections is not None:
            bad = [p for p in protections if p not in ("off", "full")]
            if bad:
                raise SpecError(
                    f"policies.protections: unknown profile(s) {bad}"
                )
    elif scenario == "tenants":
        if workload["diurnal_amplitude"] >= 1.0:
            raise SpecError(
                "workload.diurnal_amplitude: must be below 1 (the trough "
                "rate 1 - amplitude has to stay positive)"
            )
        if workload["zipf_alpha"] is not None and workload["zipf_alpha"] == 0:
            raise SpecError(
                "workload.zipf_alpha: use null for an unskewed population, "
                "not 0"
            )
        if workload["mode"] == "storm":
            defaults = _WORKLOADS["tenants"]
            for key in ("loads_kiops", "streams", "num_tenants",
                        "zipf_alpha", "diurnal_amplitude", "diurnal_period",
                        "qos"):
                default = defaults[key].default
                default = (list(default) if isinstance(default, tuple)
                           else default)
                if workload[key] != default:
                    raise SpecError(
                        f"workload.{key}: the storm mode is the fixed "
                        "noisy-neighbor acceptance experiment (it sweeps "
                        "QoS on/off itself); only systems, quantum, "
                        "duration and seed apply"
                    )
            if (spec.topology != {**_section_defaults("topology"),
                                  "layout": _DEFAULT_LAYOUT["tenants"],
                                  "initiators":
                                      _DEFAULT_INITIATORS["tenants"]}):
                raise SpecError(
                    "topology: the storm mode runs on its own fixed "
                    "single-initiator testbed; leave the topology "
                    "section out"
                )
    elif scenario == "qualify":
        if spec.policies["protections"] is not None:
            raise SpecError("policies.protections: only the overload "
                            "scenario takes protection profiles")
        floors = spec.policies["floors"]
        if floors is not None:
            for cell_key, cell_floors in floors.items():
                if not isinstance(cell_floors, dict):
                    raise SpecError(
                        f"policies.floors[{cell_key!r}]: expected an "
                        "object of floor-name -> value"
                    )
                for floor_name, value in cell_floors.items():
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        raise SpecError(
                            f"policies.floors[{cell_key!r}][{floor_name!r}]"
                            ": expected a number"
                        )
    if scenario in ("saturate", "overload") or (
        scenario == "tenants" and workload["mode"] == "curves"
    ):
        loads = workload["loads_kiops"]
        if not loads:
            raise SpecError("workload.loads_kiops: need at least one load")


def _resolve_scenario_defaults(spec: ScenarioSpec) -> ScenarioSpec:
    """Materialize scenario-dependent nullable defaults in place."""
    workload = dict(spec.workload)
    changed = False
    if spec.scenario == "overload" and workload["duration"] is None:
        workload["duration"] = 2e-3 if workload["mode"] == "metastable" else 4e-3
        changed = True
    if spec.scenario == "tenants" and workload["duration"] is None:
        workload["duration"] = 2e-3 if workload["mode"] == "curves" else 3e-3
        changed = True
    if spec.scenario == "qualify":
        from repro.harness.qualify import PROFILES

        shape = PROFILES[workload["profile"]]
        resolved = {
            "systems": list(shape.systems),
            "blocks_kib": list(shape.blocks_kib),
            "queue_depths": list(shape.queue_depths),
            "patterns": list(shape.patterns),
            "duration": shape.duration,
        }
        for key, value in resolved.items():
            if workload[key] is None:
                workload[key] = value
                changed = True
    if spec.scenario == "check" and workload["systems"] is None:
        from repro.check.runner import DEFAULT_MATRIX

        workload["systems"] = list(DEFAULT_MATRIX)
        changed = True
    if not changed:
        return spec
    return ScenarioSpec(
        scenario=spec.scenario, name=spec.name, version=spec.version,
        topology=spec.topology, devices=spec.devices, workload=workload,
        faults=spec.faults, policies=spec.policies, oracle=spec.oracle,
    )


# ----------------------------------------------------------------------
# Loaders (v1 + legacy upgrade)
# ----------------------------------------------------------------------

_WORKLOAD_SPEC_KEYS = {
    "system", "layout", "seed", "streams", "groups_per_stream",
    "writes_per_group", "depth", "flush_every", "max_points", "initiators",
    "prefill", "faults",
}

_FAULT_PLAN_KEYS = set(_FAULT_FIELDS)


def upgrade_workload_spec(data: Dict[str, Any]) -> ScenarioSpec:
    """A legacy :class:`~repro.check.workload.WorkloadSpec` dict as an
    equivalent single-cell v1 check spec (replays bit-identically)."""
    from repro.check.workload import WorkloadSpec

    legacy = WorkloadSpec.from_dict(data)
    return ScenarioSpec.from_dict({
        "version": SPEC_VERSION,
        "scenario": "check",
        "name": f"upgraded legacy WorkloadSpec ({legacy.system}/"
                f"{legacy.layout}/seed{legacy.seed})",
        "topology": {"initiators": legacy.initiators},
        "devices": {"prefill": legacy.prefill},
        "workload": {
            "systems": [legacy.system],
            "layouts": [legacy.layout],
            "seeds": [legacy.seed],
            "streams": legacy.streams,
            "groups_per_stream": legacy.groups_per_stream,
            "writes_per_group": legacy.writes_per_group,
            "depth": legacy.depth,
            "flush_every": legacy.flush_every,
        },
        "faults": legacy.faults,
        "oracle": {"max_points": legacy.max_points},
    })


def upgrade_fault_plan(data: Dict[str, Any]) -> ScenarioSpec:
    """A bare fault-plan dict as a v1 chaos spec carrying that plan."""
    return ScenarioSpec.from_dict({
        "version": SPEC_VERSION,
        "scenario": "chaos",
        "name": "upgraded legacy FaultPlan",
        "workload": {"trials": 1},
        "faults": data,
    })


def load_spec(data: Dict[str, Any]) -> ScenarioSpec:
    """Load any supported document shape as a v1 spec.

    Accepts, in order of detection:

    1. a v1 :class:`ScenarioSpec` document (has ``scenario``);
    2. a ``repro check`` reproducer payload
       (``kind == "repro-check-reproducer"``), via its embedded spec;
    3. a bare legacy :class:`~repro.check.workload.WorkloadSpec` dict;
    4. a bare legacy fault-plan dict.
    """
    if not isinstance(data, dict):
        raise SpecError(f"spec: expected an object, got {_type_name(data)}")
    if "scenario" in data or "version" in data:
        return ScenarioSpec.from_dict(data)
    if data.get("kind") == "repro-check-reproducer":
        return upgrade_workload_spec(data["spec"])
    if "system" in data and set(data) <= _WORKLOAD_SPEC_KEYS:
        return upgrade_workload_spec(data)
    if data and set(data) <= _FAULT_PLAN_KEYS:
        return upgrade_fault_plan(data)
    raise SpecError(
        "unrecognized document: not a v1 ScenarioSpec, a check "
        "reproducer, a legacy WorkloadSpec, or a fault plan"
    )


def load_spec_file(path) -> ScenarioSpec:
    """:func:`load_spec` on a JSON file."""
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path}: not valid JSON ({exc})") from exc
    try:
        return load_spec(data)
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from exc


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------


def diff_specs(a: ScenarioSpec, b: ScenarioSpec) -> List[Tuple[str, Any, Any]]:
    """Field-level differences between two canonical specs.

    Returns ``(dotted_path, a_value, b_value)`` triples, sorted by path;
    empty means the specs are canonically identical (``name`` included —
    diff is a human tool, unlike the digest).
    """
    out: List[Tuple[str, Any, Any]] = []

    def walk(path: str, left: Any, right: Any) -> None:
        if isinstance(left, dict) and isinstance(right, dict):
            for key in sorted(set(left) | set(right)):
                sub = f"{path}.{key}" if path else key
                walk(sub, left.get(key, "<absent>"), right.get(key, "<absent>"))
            return
        if isinstance(left, list) and isinstance(right, list):
            if left != right:
                out.append((path, left, right))
            return
        if left != right:
            out.append((path, left, right))

    walk("", a.to_dict(), b.to_dict())
    return sorted(out)
