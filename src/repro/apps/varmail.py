"""Filebench Varmail personality (Figure 15(a)).

Varmail models a mail server: a loop of metadata-heavy, fsync-intensive
operations per thread.  Following the Filebench default personality, each
iteration performs:

1. delete an old mail file (directory + inode metadata),
2. create a new mail file, append ~16 KB, **fsync**,
3. open another mail, read it whole, append ~16 KB, **fsync**,
4. open a mail and read it whole.

Filebench counts each primitive as one operation; we do the same, so the
reported ops/s is comparable in shape to the paper's Figure 15(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cluster import Cluster
from repro.fs.filesystem import SimFileSystem
from repro.sim.engine import Environment
from repro.sim.rng import DeterministicRNG

__all__ = ["VarmailResult", "run_varmail", "run_fileserver"]

#: Varmail default: ~16 KB mean append size = 4 blocks.
APPEND_BLOCKS = 4


@dataclass
class VarmailResult:
    threads: int
    ops: int = 0
    elapsed: float = 0.0
    fsyncs: int = 0

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.elapsed if self.elapsed else 0.0


def run_fileserver(
    cluster: Cluster,
    fs,
    threads: int = 1,
    duration: float = 10e-3,
    warmup: float = 1e-3,
    files_per_thread: int = 32,
    seed: int = 17,
) -> VarmailResult:
    """Filebench *fileserver* personality: create/append/read/delete with
    no per-operation fsync.

    The contrast workload to Varmail: with few ordering points, the gap
    between the compared file systems nearly vanishes — which is itself a
    paper-consistent observation (the cost under study is the cost of
    *ordering*, not of I/O).
    """
    env: Environment = cluster.env
    result = VarmailResult(threads=threads)
    end_time = warmup + duration

    def count(n: int) -> None:
        if warmup <= env.now <= end_time:
            result.ops += n

    def thread_body(thread_id: int):
        rng = DeterministicRNG(seed).fork(f"fileserver{thread_id}")
        core = cluster.initiator.cpus.pick(thread_id)
        pool: List = []
        serial = 0
        for _ in range(files_per_thread):
            name = f"fs{thread_id}-{serial}"
            serial += 1
            file = yield from fs.create(core, name)
            yield from fs.append(core, file, nblocks=APPEND_BLOCKS)
            pool.append(file)
        # One initial sync so the dataset exists on the device.
        yield from fs.fsync(core, pool[-1], thread_id=thread_id)

        while env.now < end_time:
            # create + whole-file write (buffered).
            name = f"fs{thread_id}-{serial}"
            serial += 1
            file = yield from fs.create(core, name)
            yield from fs.append(core, file, nblocks=APPEND_BLOCKS)
            pool.append(file)
            count(2)
            # read a file.
            victim = pool[rng.randint(0, len(pool) - 1)]
            if victim.size_blocks:
                yield from fs.read(core, victim, 0,
                                   min(victim.size_blocks, APPEND_BLOCKS))
            count(1)
            # append to a file.
            victim = pool[rng.randint(0, len(pool) - 1)]
            yield from fs.append(core, victim, nblocks=1)
            count(1)
            # delete a file.
            victim = pool.pop(rng.randint(0, len(pool) - 1))
            yield from fs.unlink(core, victim.name)
            count(1)

    for thread_id in range(threads):
        env.process(thread_body(thread_id))
    env.run(until=end_time)
    result.elapsed = duration
    result.fsyncs = fs.fsyncs
    return result


def run_varmail(
    cluster: Cluster,
    fs: SimFileSystem,
    threads: int = 1,
    duration: float = 10e-3,
    warmup: float = 1e-3,
    files_per_thread: int = 32,
    seed: int = 99,
) -> VarmailResult:
    """Run the Varmail loop on ``fs`` and report steady-state ops/s."""
    env: Environment = cluster.env
    result = VarmailResult(threads=threads)
    end_time = warmup + duration

    def count(n: int) -> None:
        if warmup <= env.now <= end_time:
            result.ops += n

    def thread_body(thread_id: int):
        rng = DeterministicRNG(seed).fork(f"varmail{thread_id}")
        core = cluster.initiator.cpus.pick(thread_id)
        mailbox: List = []
        serial = 0

        # Pre-populate the per-thread mailbox.
        for i in range(files_per_thread):
            name = f"t{thread_id}-mail{serial}"
            serial += 1
            file = yield from fs.create(core, name)
            yield from fs.append(core, file, nblocks=APPEND_BLOCKS)
            mailbox.append(file)
        yield from fs.fsync(core, mailbox[-1], thread_id=thread_id)

        while env.now < end_time:
            # 1. delete an old mail.
            victim = mailbox.pop(rng.randint(0, len(mailbox) - 1))
            yield from fs.unlink(core, victim.name)
            count(1)

            # 2. deliver a mail: create under a temporary name, append,
            # fsync, then rename into place (the classic maildir dance).
            name = f"t{thread_id}-mail{serial}"
            serial += 1
            file = yield from fs.create(core, f"{name}.tmp")
            yield from fs.append(core, file, nblocks=APPEND_BLOCKS)
            yield from fs.fsync(core, file, thread_id=thread_id)
            yield from fs.rename(core, f"{name}.tmp", name)
            mailbox.append(file)
            count(4)

            # 3. read-modify-append-fsync an existing mail.
            file = mailbox[rng.randint(0, len(mailbox) - 1)]
            if file.size_blocks:
                yield from fs.read(core, file, 0, min(file.size_blocks, 4))
            yield from fs.append(core, file, nblocks=APPEND_BLOCKS)
            yield from fs.fsync(core, file, thread_id=thread_id)
            count(3)

            # 4. read a whole mail.
            file = mailbox[rng.randint(0, len(mailbox) - 1)]
            if file.size_blocks:
                yield from fs.read(core, file, 0, min(file.size_blocks, 4))
            count(1)

    for thread_id in range(threads):
        env.process(thread_body(thread_id))
    env.run(until=end_time)
    result.elapsed = duration
    result.fsyncs = fs.fsyncs
    return result
