"""A MySQL-style OLTP workload: redo logging plus in-place page updates.

The paper motivates storage order with database transactions ("Applications
(e.g., MySQL) that require strong consistency and durability issue fsync to
trigger the metadata journaling", §3.1).  This workload models the storage
behaviour of an InnoDB-like engine:

* each transaction reads and modifies a few *pages* of a data file,
  appends a redo record to the log file, and commits with **fsync**
  (group commit batches concurrent committers);
* a background page cleaner periodically writes dirty pages back to the
  data file **in place** — exercising Rio's normal-IPU path (§4.4.2)
  under a realistic producer.

Transactions per second is the reported metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster import Cluster
from repro.fs.filesystem import File, SimFileSystem
from repro.hw.cpu import Core
from repro.sim.engine import Environment, Event
from repro.sim.rng import DeterministicRNG

__all__ = ["OltpDatabase", "OltpResult", "run_oltp"]

#: CPU cost of executing one transaction's logic (index lookups, locking).
TXN_EXECUTE_COST = 3.0e-6
#: Pages touched per transaction.
PAGES_PER_TXN = 3
#: Dirty-page threshold that wakes the page cleaner.
CLEANER_THRESHOLD = 64
#: Redo record size: transactions share log blocks via group commit.
REDO_BLOCKS_PER_GROUP = 1


@dataclass
class _CommitGroup:
    count: int = 0
    done: Optional[Event] = None


class OltpDatabase:
    """Redo log + data file + page cache + background cleaner."""

    def __init__(self, cluster: Cluster, fs: SimFileSystem,
                 data_pages: int = 1024, name: str = "oltp"):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.fs = fs
        self.name = name
        self.data_pages = data_pages
        self.dirty_pages: Set[int] = set()
        self.page_versions: Dict[int, int] = {}
        self.commits = 0
        self.cleaner_runs = 0
        self._redo: Optional[File] = None
        self._data: Optional[File] = None
        self._group: Optional[_CommitGroup] = None
        self._leader_active = False
        self._cleaner_active = False

    def open(self, core: Core):
        """Generator: create the redo log and pre-allocate the data file."""
        self._redo = yield from self.fs.create(core, f"{self.name}-redo")
        self._data = yield from self.fs.create(core, f"{self.name}-data")
        yield from self.fs.append(core, self._data, nblocks=self.data_pages)
        yield from self.fs.fsync(core, self._data)
        return self

    def transaction(self, core: Core, rng: DeterministicRNG,
                    thread_id: int = 0):
        """Generator: execute and durably commit one transaction."""
        yield from core.run(TXN_EXECUTE_COST)
        for _ in range(PAGES_PER_TXN):
            page = rng.randint(0, self.data_pages - 1)
            self.page_versions[page] = self.page_versions.get(page, 0) + 1
            self.dirty_pages.add(page)

        # Group commit of the redo record.
        if self._group is None:
            self._group = _CommitGroup(done=Event(self.env))
        group = self._group
        group.count += 1
        if not self._leader_active:
            self._leader_active = True
            try:
                while self._group is not None and self._group.count:
                    current, self._group = self._group, None
                    yield from self.fs.append(core, self._redo,
                                              nblocks=REDO_BLOCKS_PER_GROUP)
                    yield from self.fs.fsync(core, self._redo,
                                             thread_id=thread_id)
                    current.done.succeed()
            finally:
                self._leader_active = False
        else:
            yield group.done
        self.commits += 1

        if len(self.dirty_pages) >= CLEANER_THRESHOLD and not self._cleaner_active:
            self._cleaner_active = True
            self.env.process(self._page_cleaner())

    def _page_cleaner(self):
        """Write dirty pages back in place (normal IPUs, §4.4.2)."""
        core = self.cluster.initiator.cpus.least_loaded()
        pages = sorted(self.dirty_pages)
        self.dirty_pages = set()
        # Overwrite each page in place, then make the batch durable.
        for page in pages:
            yield from self.fs.overwrite(core, self._data, page, 1)
        yield from self.fs.fsync(core, self._data)
        self.cleaner_runs += 1
        self._cleaner_active = False


@dataclass
class OltpResult:
    threads: int
    commits: int = 0
    elapsed: float = 0.0
    cleaner_runs: int = 0

    @property
    def tps(self) -> float:
        return self.commits / self.elapsed if self.elapsed else 0.0


def run_oltp(
    cluster: Cluster,
    fs: SimFileSystem,
    threads: int = 4,
    duration: float = 10e-3,
    warmup: float = 1e-3,
    seed: int = 31,
) -> OltpResult:
    """Run the OLTP loop and report steady-state transactions/s."""
    env: Environment = cluster.env
    result = OltpResult(threads=threads)
    end_time = warmup + duration
    holder: Dict[str, OltpDatabase] = {}

    def setup(env):
        core = cluster.initiator.cpus.pick(0)
        db = OltpDatabase(cluster, fs)
        yield from db.open(core)
        holder["db"] = db

    env.run_until_event(env.process(setup(env)))
    db = holder["db"]

    def worker(thread_id):
        rng = DeterministicRNG(seed).fork(f"oltp{thread_id}")
        core = cluster.initiator.cpus.pick(thread_id)
        while env.now < end_time:
            started = env.now
            yield from db.transaction(core, rng, thread_id=thread_id)
            if started >= warmup and env.now <= end_time:
                result.commits += 1

    for thread_id in range(threads):
        env.process(worker(thread_id))
    env.run(until=end_time)
    result.elapsed = duration
    result.cleaner_runs = db.cleaner_runs
    return result
