"""FIO-style block-device workload driver.

Drives an :class:`~repro.systems.base.OrderedStack` with the write patterns
of the paper's block-level experiments:

* ``pattern="rand" | "seq" | "mixed"`` with configurable write size
  (Figures 10, 11; ``mixed`` is the qualification matrix's 50/50
  seeded blend of sequential and random ops);
* ``batch`` — groups of LBA-consecutive writes staged together so merging
  can fire (Figures 3 and 12);
* ``journal_pattern=True`` — the motivation workload of §3.1: each
  iteration issues a 2-block ordered write followed by a 1-block ordered
  write (journal description + metadata, then the commit record);
* per-thread private SSD areas and per-thread streams, like the paper's
  FIO jobs.

Returns throughput, latency and the §6.1 CPU-efficiency metric computed
from the initiator's and targets' busy cores during the measured window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster import Cluster
from repro.sim.engine import Environment
from repro.sim.rng import DeterministicRNG
from repro.sim.stats import LatencyRecorder
from repro.systems.base import OrderedStack

__all__ = ["BlockWorkloadResult", "run_block_workload"]

#: Private LBA area per thread, in blocks (far apart so threads never merge
#: with each other).
THREAD_AREA_BLOCKS = 16_000_000


@dataclass
class BlockWorkloadResult:
    """Measured outcome of one block-workload run."""

    system: str
    threads: int
    ops: int = 0
    bytes_written: int = 0
    elapsed: float = 0.0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    initiator_busy_cores: float = 0.0
    target_busy_cores: float = 0.0
    commands_sent: int = 0

    @property
    def iops(self) -> float:
        return self.ops / self.elapsed if self.elapsed else 0.0

    @property
    def mb_per_sec(self) -> float:
        return self.bytes_written / self.elapsed / 1e6 if self.elapsed else 0.0

    @property
    def initiator_efficiency(self) -> float:
        """Throughput per busy initiator core (§6.1 CPU efficiency)."""
        if self.initiator_busy_cores <= 0:
            return 0.0
        return self.iops / self.initiator_busy_cores

    @property
    def target_efficiency(self) -> float:
        if self.target_busy_cores <= 0:
            return 0.0
        return self.iops / self.target_busy_cores


def run_block_workload(
    cluster: Cluster,
    stack: OrderedStack,
    threads: int = 1,
    duration: float = 5e-3,
    warmup: float = 0.5e-3,
    write_blocks: int = 1,
    pattern: str = "rand",
    batch: int = 1,
    queue_depth: int = 32,
    journal_pattern: bool = False,
    durable: bool = False,
    seed: int = 1234,
) -> BlockWorkloadResult:
    """Run the workload to completion of the measurement window."""
    if pattern not in ("rand", "seq", "mixed"):
        raise ValueError(f"pattern must be rand|seq|mixed, got {pattern!r}")
    if threads < 1 or batch < 1 or queue_depth < 1:
        raise ValueError("threads, batch and queue_depth must be >= 1")
    env: Environment = cluster.env
    result = BlockWorkloadResult(system=stack.name, threads=threads)
    end_time = warmup + duration
    commands_at_start = [0]

    def thread_body(thread_id: int):
        rng = DeterministicRNG(seed).fork(f"fio{thread_id}")
        core = cluster.initiator.cpus.pick(thread_id)
        base = thread_id * THREAD_AREA_BLOCKS
        seq_cursor = 0
        inflight: List = []

        def next_lba(size: int) -> int:
            nonlocal seq_cursor
            # "mixed" picks seq/rand per op from the seeded RNG (50/50).
            mode = pattern
            if pattern == "mixed":
                mode = "seq" if rng.randint(0, 1) else "rand"
            if mode == "seq":
                lba = base + seq_cursor
                seq_cursor += size
                if seq_cursor > THREAD_AREA_BLOCKS - size:
                    seq_cursor = 0
                return lba
            slot = rng.randint(0, THREAD_AREA_BLOCKS // (size + 2) - 1)
            return base + slot * (size + 2)  # +2: never LBA-consecutive

        while env.now < end_time:
            issued_at = env.now
            events = []
            if journal_pattern:
                # §3.1: 2-block ordered write, then a 1-block ordered write
                # (journal description+metadata, then the commit record).
                lba = next_lba(3)
                e1 = yield from stack.write_ordered(
                    core, thread_id, lba=lba, nblocks=2,
                    end_of_group=True, kick=False,
                )
                e2 = yield from stack.write_ordered(
                    core, thread_id, lba=lba + 2, nblocks=1,
                    end_of_group=True, flush=durable, kick=True,
                )
                events = [e1, e2]
                op_blocks = 3
            elif batch > 1:
                # A mergeable batch of LBA-consecutive writes (Figures 3/12).
                lba = next_lba(batch * write_blocks)
                for i in range(batch):
                    last = i == batch - 1
                    done = yield from stack.write_ordered(
                        core, thread_id, lba=lba + i * write_blocks,
                        nblocks=write_blocks, end_of_group=True,
                        flush=durable and last, kick=last,
                    )
                    events.append(done)
                op_blocks = batch * write_blocks
            else:
                lba = next_lba(write_blocks)
                done = yield from stack.write_ordered(
                    core, thread_id, lba=lba, nblocks=write_blocks,
                    end_of_group=True, flush=durable,
                )
                events = [done]
                op_blocks = write_blocks

            tracker = env.all_of(events)
            env.process(watch(issued_at, len(events), op_blocks, tracker))
            inflight.append(tracker)
            while len(inflight) >= max(1, queue_depth // max(1, batch)):
                yield env.any_of(inflight)
                inflight = [t for t in inflight if not t.triggered]

    def watch(issued_at, nops, op_blocks, tracker):
        yield tracker
        if warmup <= env.now <= end_time:
            result.ops += nops
            result.bytes_written += op_blocks * 4096
            if issued_at >= warmup:
                result.latency.record(env.now - issued_at)

    def measurement(env):
        yield env.timeout(warmup)
        cluster.start_cpu_window()
        commands_at_start[0] = cluster.driver.commands_sent
        yield env.timeout(duration)
        cluster.stop_cpu_window()

    env.process(measurement(env))
    for thread_id in range(threads):
        env.process(thread_body(thread_id))
    env.run(until=end_time)

    result.elapsed = duration
    result.initiator_busy_cores = cluster.initiator_busy_cores(duration)
    result.target_busy_cores = cluster.target_busy_cores(duration)
    result.commands_sent = cluster.driver.commands_sent - commands_at_start[0]
    return result
