"""Application workloads used in the paper's evaluation (§6).

* :mod:`repro.apps.fio` — the FIO-style block/file microbenchmark driver
  behind Figures 2, 3, 10, 11, 12 and 13;
* :mod:`repro.apps.varmail` — the Filebench Varmail personality
  (metadata- and fsync-intensive mail server, Figure 15(a));
* :mod:`repro.apps.kvstore` — an LSM-tree key-value store standing in for
  RocksDB, driven by a db_bench-style ``fillsync`` workload (Figure 15(b)).
"""

from repro.apps.fio import BlockWorkloadResult, run_block_workload
from repro.apps.kvstore import KVStore, run_fillsync, run_readwhilewriting
from repro.apps.oltp import OltpDatabase, run_oltp
from repro.apps.varmail import run_fileserver, run_varmail

__all__ = [
    "BlockWorkloadResult",
    "run_block_workload",
    "KVStore",
    "run_fillsync",
    "run_readwhilewriting",
    "OltpDatabase",
    "run_oltp",
    "run_varmail",
    "run_fileserver",
]
