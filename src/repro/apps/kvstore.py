"""An LSM-tree key-value store standing in for RocksDB (Figure 15(b)).

Implements the pieces of RocksDB that the ``fillsync`` workload exercises:

* a write-ahead log with **write-group batching**: concurrent writers form
  a group; the leader appends everyone's entries to the WAL and issues one
  fsync (RocksDB's group commit);
* an in-memory memtable with a per-put indexing CPU cost (RocksDB "also
  demands CPU cycles for in-memory indexing and compaction", §6.4);
* background memtable flushes writing SST files through the file system
  (large sequential appends + fsync), charging compaction CPU.

``run_fillsync`` is the db_bench workload of §6.4: 16-byte keys and
1024-byte values, every put followed by a synchronous WAL write.
The CPU-availability effect the paper reports (RioFS leaves more CPU for
RocksDB) emerges naturally: foreground puts, WAL fsync processing and
compaction all compete for the same initiator cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster import Cluster
from repro.fs.filesystem import File, SimFileSystem
from repro.hw.cpu import Core
from repro.sim.engine import Environment, Event
from repro.sim.rng import DeterministicRNG

__all__ = ["KVStore", "FillsyncResult", "run_fillsync"]

KEY_SIZE = 16
VALUE_SIZE = 1024
BLOCK = 4096

#: CPU cost of one memtable (skiplist) insert.
MEMTABLE_INSERT_COST = 1.2e-6
#: CPU cost of encoding one WAL record.
WAL_ENCODE_COST = 0.3e-6
#: Compaction/flush CPU per flushed block.
FLUSH_CPU_PER_BLOCK = 2.0e-6
#: Memtable size threshold that triggers a flush (blocks of entries).
MEMTABLE_FLUSH_BLOCKS = 2048  # 8 MB


@dataclass
class _WriteGroup:
    entries: List[Tuple[Any, Any]] = field(default_factory=list)
    done: Optional[Event] = None


class KVStore:
    """A minimal LSM KV store over :class:`SimFileSystem`."""

    def __init__(self, cluster: Cluster, fs: SimFileSystem, name: str = "db"):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.fs = fs
        self.name = name
        self.memtable: Dict[Any, Any] = {}
        self.memtable_bytes = 0
        self.sst_files: List[File] = []
        self.puts = 0
        self.wal_fsyncs = 0
        self.flushes = 0
        self._wal: Optional[File] = None
        self._group: Optional[_WriteGroup] = None
        self._leader_active = False
        self._flush_in_progress = False
        self._sst_serial = 0

    def open(self, core: Core):
        """Generator: create the WAL file."""
        self._wal = yield from self.fs.create(core, f"{self.name}-wal")
        return self

    # ------------------------------------------------------------------
    # Write path (fillsync: sync=True)
    # ------------------------------------------------------------------

    def put(self, core: Core, key: Any, value: Any, thread_id: int = 0):
        """Generator: insert one record with a synchronous WAL write.

        Concurrent puts join a write group; the leader performs the WAL
        append + fsync for the whole group (RocksDB's joined writers).
        """
        yield from core.run(MEMTABLE_INSERT_COST + WAL_ENCODE_COST)
        self.memtable[key] = value
        self.memtable_bytes += KEY_SIZE + VALUE_SIZE
        self.puts += 1

        if self._group is None:
            self._group = _WriteGroup(done=Event(self.env))
        group = self._group
        group.entries.append((key, value))

        if not self._leader_active:
            # Become the leader: commit whatever has batched up.
            self._leader_active = True
            try:
                while self._group is not None and self._group.entries:
                    current, self._group = self._group, None
                    yield from self._commit_group(core, current, thread_id)
            finally:
                self._leader_active = False
        else:
            yield group.done

        if (
            self.memtable_bytes >= MEMTABLE_FLUSH_BLOCKS * BLOCK
            and not self._flush_in_progress
        ):
            self._flush_in_progress = True
            self.env.process(self._flush_memtable())

    def _commit_group(self, core: Core, group: _WriteGroup, thread_id: int):
        nbytes = len(group.entries) * (KEY_SIZE + VALUE_SIZE + 8)
        nblocks = max(1, (nbytes + BLOCK - 1) // BLOCK)
        yield from self.fs.append(core, self._wal, nblocks=nblocks)
        yield from self.fs.fsync(core, self._wal, thread_id=thread_id)
        self.wal_fsyncs += 1
        group.done.succeed()

    # ------------------------------------------------------------------
    # Background flush (memtable -> SST)
    # ------------------------------------------------------------------

    def _flush_memtable(self):
        core = self.cluster.initiator.cpus.least_loaded()
        entries_bytes = self.memtable_bytes
        self.memtable = {}
        self.memtable_bytes = 0
        nblocks = max(1, entries_bytes // BLOCK)
        self._sst_serial += 1
        sst = yield from self.fs.create(core, f"{self.name}-sst{self._sst_serial}")
        # Sorting + encoding the SST costs CPU (the compaction term).
        yield from core.run(FLUSH_CPU_PER_BLOCK * nblocks)
        chunk = 256
        written = 0
        while written < nblocks:
            step = min(chunk, nblocks - written)
            yield from self.fs.append(core, sst, nblocks=step)
            written += step
        yield from self.fs.fsync(core, sst)
        self.sst_files.append(sst)
        self.flushes += 1
        self._flush_in_progress = False

    def get(self, core: Core, key: Any):
        """Generator: memtable lookup, falling back to SST reads."""
        yield from core.run(MEMTABLE_INSERT_COST)
        if key in self.memtable:
            return self.memtable[key]
        for sst in reversed(self.sst_files):
            if sst.size_blocks:
                yield from self.fs.read(core, sst, 0, 1)
                break
        return None


@dataclass
class FillsyncResult:
    threads: int
    puts: int = 0
    elapsed: float = 0.0
    wal_fsyncs: int = 0
    flushes: int = 0
    initiator_busy_cores: float = 0.0

    @property
    def ops_per_sec(self) -> float:
        return self.puts / self.elapsed if self.elapsed else 0.0


def run_readwhilewriting(
    cluster: Cluster,
    fs: SimFileSystem,
    read_threads: int = 4,
    write_threads: int = 2,
    duration: float = 10e-3,
    warmup: float = 1e-3,
    populate: int = 200,
    seed: int = 7,
) -> "FillsyncResult":
    """db_bench readwhilewriting: readers race concurrent fillsync writers.

    Returns a FillsyncResult whose ``puts`` counts *all* completed
    operations (gets + puts) — the metric db_bench reports.
    """
    env: Environment = cluster.env
    result = FillsyncResult(threads=read_threads + write_threads)
    end_time = warmup + duration
    holder: Dict[str, KVStore] = {}

    def setup(env):
        core = cluster.initiator.cpus.pick(0)
        db = KVStore(cluster, fs)
        yield from db.open(core)
        rng = DeterministicRNG(seed).fork("populate")
        for i in range(populate):
            yield from db.put(core, ("seed", i), "v")
        holder["db"] = db

    env.run_until_event(env.process(setup(env)))
    db = holder["db"]

    def reader(thread_id):
        rng = DeterministicRNG(seed).fork(f"reader{thread_id}")
        core = cluster.initiator.cpus.pick(thread_id)
        while env.now < end_time:
            key = ("seed", rng.randint(0, populate - 1))
            started = env.now
            yield from db.get(core, key)
            if started >= warmup and env.now <= end_time:
                result.puts += 1

    def writer(thread_id):
        rng = DeterministicRNG(seed).fork(f"writer{thread_id}")
        core = cluster.initiator.cpus.pick(read_threads + thread_id)
        while env.now < end_time:
            key = (thread_id, rng.randint(0, 1 << 30))
            started = env.now
            yield from db.put(core, key, "v", thread_id=thread_id)
            if started >= warmup and env.now <= end_time:
                result.puts += 1

    for t in range(read_threads):
        env.process(reader(t))
    for t in range(write_threads):
        env.process(writer(t))
    env.run(until=end_time)
    result.elapsed = duration
    result.wal_fsyncs = db.wal_fsyncs
    result.flushes = db.flushes
    return result


def run_fillsync(
    cluster: Cluster,
    fs: SimFileSystem,
    threads: int = 1,
    duration: float = 10e-3,
    warmup: float = 1e-3,
    seed: int = 7,
) -> FillsyncResult:
    """db_bench fillsync: every put is followed by a synchronous WAL write."""
    env: Environment = cluster.env
    result = FillsyncResult(threads=threads)
    end_time = warmup + duration
    db_holder: Dict[str, KVStore] = {}

    def opener(env):
        core = cluster.initiator.cpus.pick(0)
        db = KVStore(cluster, fs)
        yield from db.open(core)
        db_holder["db"] = db

    env.run_until_event(env.process(opener(env)))
    db = db_holder["db"]

    def writer(thread_id: int):
        rng = DeterministicRNG(seed).fork(f"fillsync{thread_id}")
        core = cluster.initiator.cpus.pick(thread_id)
        while env.now < end_time:
            key = (thread_id, rng.randint(0, 1 << 30))
            started = env.now
            yield from db.put(core, key, b"v" * 0, thread_id=thread_id)
            if warmup <= env.now <= end_time and started >= warmup:
                result.puts += 1

    cluster.start_cpu_window()
    for thread_id in range(threads):
        env.process(writer(thread_id))
    env.run(until=end_time)
    cluster.stop_cpu_window()
    result.elapsed = duration
    result.wal_fsyncs = db.wal_fsyncs
    result.flushes = db.flushes
    result.initiator_busy_cores = cluster.initiator_busy_cores(duration)
    return result
