"""Multi-queue block layer: splitting, plug-based merging, dispatch.

This is the orderless Linux data path (and the substrate every ordered
system in the reproduction builds on):

* **splitting** — a bio is broken into per-device fragments at volume
  stripe boundaries and at the device's maximum transfer size (§4.5);
* **plugging** — a :class:`Plug` batches fragments the way
  ``blk_start_plug``/``blk_finish_plug`` do, so LBA-consecutive writes on
  the same device merge into one request → one NVMe-oF command (Figure 3);
* **dispatch** — merged requests go to the initiator driver on the queue
  pair selected by ``qp_index`` (per-core by default, per-stream for Rio).

Bio completion fans in over fragments: a split bio completes when its last
fragment's request completes; a merged request completes every bio it
covers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.block.request import Bio, BlockRequest
from repro.block.volume import LogicalVolume
from repro.hw.cpu import Core
from repro.nvmeof.costs import DEFAULT_COSTS, CpuCosts
from repro.sim.engine import Environment, Event

if TYPE_CHECKING:  # typing only — avoids a block <-> nvmeof import cycle
    from repro.nvmeof.initiator import InitiatorDriver, RemoteNamespace

__all__ = ["Plug", "BlockLayer", "observe_merge"]


def observe_merge(obs, into: BlockRequest, request: BlockRequest) -> None:
    """Record a request merge in the span plane: the absorbed request's
    staging span closes (tagged with the survivor), and the survivor's
    span widens to cover the absorbed bios.  Shared by the orderless merge
    path here and Rio's ORDER-queue merge
    (:meth:`repro.core.scheduler.RioIoScheduler._absorb`)."""
    survivor = (into.obs or {}).get("queue")
    if survivor is not None:
        survivor.attrs["bios"] = tuple(b.bio_id for b in into.bios)
    absorbed = (request.obs or {}).get("queue")
    obs.spans.close(absorbed, merged_into=into.req_id)


class Plug:
    """A per-thread staging list of not-yet-dispatched request fragments."""

    def __init__(self) -> None:
        self.fragments: List[Tuple["RemoteNamespace", BlockRequest]] = []

    def add(self, ns: "RemoteNamespace", request: BlockRequest) -> None:
        self.fragments.append((ns, request))

    def __len__(self) -> int:
        return len(self.fragments)


class BlockLayer:
    """Splitting, merging and dispatch between bios and the driver."""

    def __init__(
        self,
        env: Environment,
        driver: "InitiatorDriver",
        volume: LogicalVolume,
        costs: CpuCosts = DEFAULT_COSTS,
        merging_enabled: bool = True,
    ):
        self.env = env
        self.driver = driver
        self.volume = volume
        self.costs = costs
        self.merging_enabled = merging_enabled
        self.requests_dispatched = 0
        self.bios_merged = 0
        obs = env.obs
        if obs is not None:
            obs.metrics.register_gauge(
                "block.requests_dispatched", lambda: self.requests_dispatched
            )
            obs.metrics.register_gauge(
                "block.bios_merged", lambda: self.bios_merged
            )

    # ------------------------------------------------------------------
    # Bio entry points
    # ------------------------------------------------------------------

    def open_bio_span(self, bio: Bio) -> None:
        """Open the bio's ``block.mq`` lifecycle span (idempotent; no-op
        with no observability attached).  Closed by :meth:`Bio.complete`."""
        obs = self.env.obs
        if obs is not None and bio.obs_span is None:
            bio.obs_span = obs.spans.open(
                "block.mq", parent=bio.obs_parent, host="initiator",
                bio=bio.bio_id, op=bio.op, lba=bio.lba, n=bio.nblocks,
                stream=bio.stream_id, role=bio.obs_role,
            )

    def submit_bio(self, core: Core, bio: Bio, plug: Optional[Plug] = None):
        """Generator: accept a bio; returns its completion event.

        With a ``plug``, fragments are staged for merging and dispatched
        by :meth:`finish_plug`; otherwise they dispatch immediately.
        """
        completion = bio.make_completion(self.env)
        bio.submitted_at = self.env.now
        self.open_bio_span(bio)
        yield from core.run(self.costs.block_layer_per_bio)
        fragments = self.split_bio(bio)
        bio._pending_fragments = len(fragments)  # type: ignore[attr-defined]
        if plug is not None:
            for ns, request in fragments:
                plug.add(ns, request)
        else:
            for ns, request in fragments:
                yield from self.dispatch(core, ns, request)
        return completion

    def finish_plug(self, core: Core, plug: Plug):
        """Generator: merge staged fragments and dispatch them all."""
        fragments = plug.fragments
        plug.fragments = []
        if self.merging_enabled and len(fragments) > 1:
            yield from core.run(self.costs.merge_per_bio * len(fragments))
            fragments = self.merge_fragments(fragments)
        for ns, request in fragments:
            yield from self.dispatch(core, ns, request)

    # ------------------------------------------------------------------
    # Splitting (§4.5: hardware limits and volume striping)
    # ------------------------------------------------------------------

    def split_bio(self, bio: Bio) -> List[Tuple["RemoteNamespace", BlockRequest]]:
        """Break a bio into per-device, size-limited request fragments."""
        if bio.op == "flush":
            # A bare flush fans out to every member device.
            return self._observe_fragments(bio, [
                (
                    ns,
                    BlockRequest(
                        op="flush",
                        lba=0,
                        nblocks=0,
                        bios=[bio],
                        stream_id=bio.stream_id,
                        attr=bio.attr,
                        deadline=bio.deadline,
                        tenant=bio.tenant,
                    ),
                )
                for ns in self.volume.namespaces
            ])
        fragments: List[Tuple["RemoteNamespace", BlockRequest]] = []
        extents = list(self.volume.extents(bio.lba, bio.nblocks))
        split = len(extents) > 1 or any(
            len(offsets) > ns.target.ssds[ns.nsid].profile.max_transfer // 4096
            for ns, _lba, offsets in extents
        )
        for ns, local_lba, vol_offsets in extents:
            max_blocks = ns.target.ssds[ns.nsid].profile.max_transfer // 4096
            local_nblocks = len(vol_offsets)
            start = 0
            while start < local_nblocks:
                chunk = min(max_blocks, local_nblocks - start)
                payload = None
                if bio.payload is not None:
                    payload = [
                        bio.payload[vol_offsets[start + i]] for i in range(chunk)
                    ]
                request = BlockRequest(
                    op=bio.op,
                    lba=local_lba + start,
                    nblocks=chunk,
                    bios=[bio],
                    payload=payload,
                    flush=bio.flags.flush,
                    fua=bio.flags.fua,
                    barrier=bio.flags.barrier,
                    attr=bio.attr,
                    stream_id=bio.stream_id,
                    deadline=bio.deadline,
                    tenant=bio.tenant,
                    is_split_fragment=split,
                    volume_offsets=vol_offsets[start : start + chunk],
                )
                fragments.append((ns, request))
                start += chunk
        return self._observe_fragments(bio, fragments)

    def _observe_fragments(
        self, bio: Bio, fragments: List[Tuple["RemoteNamespace", BlockRequest]]
    ) -> List[Tuple["RemoteNamespace", BlockRequest]]:
        """Open an ``initiator.queue`` span per fragment (staging -> dispatch).

        Gated on the bio's own span being open: callers that use
        :meth:`split_bio` merely to *plan* fragments (HoraeFS computing its
        control-path extents) never submitted the bio, and their throwaway
        fragments must not appear in the span forest."""
        obs = self.env.obs
        if obs is not None and bio.obs_span is not None:
            for _ns, request in fragments:
                request.obs = {
                    "queue": obs.spans.open(
                        "initiator.queue", parent=bio.obs_span,
                        host="initiator", req=request.req_id, op=request.op,
                        lba=request.lba, n=request.nblocks,
                        stream=request.stream_id, bios=(bio.bio_id,),
                    )
                }
        return fragments

    # ------------------------------------------------------------------
    # Merging (Lesson 3)
    # ------------------------------------------------------------------

    @staticmethod
    def can_merge(prev: BlockRequest, nxt: BlockRequest) -> bool:
        """Standard orderless merge test: same op, LBA-consecutive, and the
        earlier request must not carry a post-flush barrier."""
        return (
            prev.op == nxt.op == "write"
            and prev.end_lba == nxt.lba
            and not prev.flush
            and not prev.fua
            and not nxt.fua
            and prev.attr is None
            and nxt.attr is None
            and prev.tenant == nxt.tenant
        )

    def merge_fragments(
        self, fragments: List[Tuple["RemoteNamespace", BlockRequest]]
    ) -> List[Tuple["RemoteNamespace", BlockRequest]]:
        """Coalesce LBA-consecutive staged fragments per device (in order)."""
        merged: List[Tuple["RemoteNamespace", BlockRequest]] = []
        last_by_ns: Dict[int, int] = {}  # id(ns) -> index into merged
        for ns, request in fragments:
            index = last_by_ns.get(id(ns))
            if index is not None:
                _ns, prev = merged[index]
                max_blocks = ns.target.ssds[ns.nsid].profile.max_transfer // 4096
                if (
                    self.can_merge(prev, request)
                    and prev.nblocks + request.nblocks <= max_blocks
                ):
                    self._absorb(prev, request)
                    self.bios_merged += 1
                    continue
            merged.append((ns, request))
            last_by_ns[id(ns)] = len(merged) - 1
        return merged

    def _absorb(self, prev: BlockRequest, request: BlockRequest) -> None:
        prev.nblocks += request.nblocks
        prev.bios.extend(request.bios)
        prev.flush = prev.flush or request.flush
        if request.deadline is not None:
            prev.deadline = (
                request.deadline if prev.deadline is None
                else min(prev.deadline, request.deadline)
            )
        if prev.payload is not None and request.payload is not None:
            prev.payload = prev.payload + request.payload
        elif request.payload is not None:
            prev.payload = ([None] * (prev.nblocks - request.nblocks)) + request.payload
        obs = self.env.obs
        if obs is not None:
            observe_merge(obs, prev, request)

    # ------------------------------------------------------------------
    # Dispatch + completion fan-out
    # ------------------------------------------------------------------

    def dispatch(self, core: Core, ns: "RemoteNamespace", request: BlockRequest):
        """Generator: hand one request to the driver; wires completions."""
        if request.qp_index is None:
            request.qp_index = core.index
        for bio in request.bios:
            if not bio.dispatched_at:
                bio.dispatched_at = self.env.now
        obs = self.env.obs
        if obs is not None and request.obs is not None:
            # The staging span's end is the dispatch moment — by design the
            # same timestamp as ``bio.dispatched_at`` just above, so the
            # Fig. 14 reconstruction from spans matches the harness exactly.
            obs.spans.close(request.obs.get("queue"), dispatched=1,
                            qp=request.qp_index)
        done = yield from self.driver.submit(core, ns, request)
        self.requests_dispatched += 1
        self.env.process(self._complete_when_done(done, request))

    def _complete_when_done(self, done: Event, request: BlockRequest):
        cmd = yield done
        if request.op == "read" and cmd is not None and cmd.payload is not None:
            request.payload = cmd.payload
            if len(request.bios) == 1:
                bio = request.bios[0]
                if not request.is_split_fragment:
                    bio.payload = list(cmd.payload)
                else:
                    # Scatter-gather reassembly: place this fragment's
                    # blocks at their offsets within the parent bio.
                    if bio.payload is None or len(bio.payload) != bio.nblocks:
                        bio.payload = [None] * bio.nblocks
                    offsets = request.volume_offsets or range(request.nblocks)
                    for i, offset in enumerate(offsets):
                        bio.payload[offset] = cmd.payload[i]
        for bio in request.bios:
            if request.status and not bio.status:
                bio.status = request.status
            remaining = getattr(bio, "_pending_fragments", 1) - 1
            bio._pending_fragments = remaining  # type: ignore[attr-defined]
            if remaining <= 0:
                bio.complete(self.env)
