"""Bio and block-request structures.

A :class:`Bio` is what file systems and applications submit: one contiguous
write/read/flush with ordering flags.  The block layer may *merge* several
bios into one :class:`BlockRequest` (fewer NVMe-oF commands — Lesson 3) or
*split* one bio across several requests (hardware transfer limits, volume
striping — §4.5).  Ordering attributes (§4.2) ride inside the bio, the way
the real implementation stashes them in ``bio->bi_private`` (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, List, Optional

from repro.hw.ssd import BLOCK_SIZE
from repro.sim.engine import Environment, Event

__all__ = ["WriteFlags", "Bio", "BlockRequest", "BLOCK_SIZE"]

_bio_ids = count(1)
_req_ids = count(1)


@dataclass
class WriteFlags:
    """Ordering/durability flags attached to a bio.

    ``ordered``        — this write participates in a storage-order stream.
    ``group_end``      — marks the final request of an ordered group (the
                         special flag Rio's sequencer keys on, §4.2).
    ``flush``          — a FLUSH must make this and all preceding writes of
                         the stream durable before completion (fsync path).
    ``fua``            — force unit access (durable before completing).
    ``ipu``            — in-place update: recovery must not roll this block
                         back automatically (§4.4.2).
    """

    ordered: bool = False
    group_end: bool = False
    flush: bool = False
    fua: bool = False
    ipu: bool = False
    #: Barrier write (BarrierFS-style interface, §2.2): persists in
    #: submission order relative to other barrier writes, no FLUSH needed.
    barrier: bool = False


@dataclass
class Bio:
    """One contiguous block I/O as submitted by the upper layer."""

    op: str  # "write" | "read" | "flush"
    lba: int = 0
    nblocks: int = 0
    payload: Optional[List[Any]] = None
    flags: WriteFlags = field(default_factory=WriteFlags)
    stream_id: int = 0
    #: Rio ordering attribute (set by the sequencer); opaque to this layer.
    attr: Any = None
    #: Absolute virtual-time deadline propagated from the issuing layer
    #: (fsync/write), or None (no deadline).  Carried down through
    #: merge/split to the driver, which fast-fails a request whose
    #: remaining budget is below the expected service cost.
    deadline: Optional[float] = None
    #: Issuing tenant (multi-tenant traffic plane), or None for anonymous
    #: flows.  Rides merge/split down to the NVMe-oF command context so the
    #: target's QoS admission can bucket/weigh per tenant class.
    tenant: Optional[int] = None
    bio_id: int = field(default_factory=lambda: next(_bio_ids))
    submitted_at: float = 0.0
    #: When the bio was first dispatched to the driver (vs merely staged) —
    #: the quantity Figure 14's breakdown measures.
    dispatched_at: float = 0.0
    completed_at: float = 0.0
    #: Completion event, created by the stack that accepts the bio.
    completion: Optional[Event] = None
    #: Completion status (0 = success).  Non-zero when a covering request
    #: error-completed — e.g. the driver's retry budget ran out
    #: (:data:`repro.nvmeof.command.STATUS_TIMEOUT`).
    status: int = 0
    #: Observability plumbing (all None/"" unless an
    #: :class:`repro.sim.obs.Observability` is attached): the bio's own
    #: ``block.mq`` span, the parent span to nest it under (e.g. the
    #: journal commit's ``fs.journal`` span) and a role label ("data",
    #: "jm", "jc", ...) the Fig. 14 reconstruction keys on.
    obs_span: Any = None
    obs_parent: Any = None
    obs_role: str = ""

    def __post_init__(self):
        if self.op not in ("write", "read", "flush"):
            raise ValueError(f"unknown bio op: {self.op}")
        if self.op != "flush" and self.nblocks <= 0:
            raise ValueError("read/write bio needs nblocks >= 1")
        if self.payload is not None and len(self.payload) != self.nblocks:
            raise ValueError("payload length must equal nblocks")

    @property
    def nbytes(self) -> int:
        return self.nblocks * BLOCK_SIZE

    @property
    def end_lba(self) -> int:
        """One past the last block."""
        return self.lba + self.nblocks

    def make_completion(self, env: Environment) -> Event:
        if self.completion is None:
            self.completion = Event(env)
        return self.completion

    def complete(self, env: Environment) -> None:
        self.completed_at = env.now
        if self.obs_span is not None:
            obs = env.obs
            if obs is not None:
                obs.spans.close(self.obs_span, status=self.status)
            self.obs_span = None
        if self.completion is not None and not self.completion.triggered:
            self.completion.succeed(self)

    def __repr__(self) -> str:
        return (
            f"<Bio {self.bio_id} {self.op} lba={self.lba} n={self.nblocks} "
            f"stream={self.stream_id}>"
        )


@dataclass
class BlockRequest:
    """The unit the driver turns into one NVMe-oF command.

    Carries the bios it covers; completing the request completes every
    covered bio (merging: many bios, one request).  A split bio is covered
    by several requests and completes when its ``pending_splits`` counter
    reaches zero.
    """

    op: str
    lba: int
    nblocks: int
    bios: List[Bio] = field(default_factory=list)
    payload: Optional[List[Any]] = None
    flush: bool = False
    fua: bool = False
    barrier: bool = False
    #: Compact ordering attribute covering all bios (merged range), or None.
    attr: Any = None
    stream_id: int = 0
    #: Tightest deadline over the covered bios (None = no deadline).
    deadline: Optional[float] = None
    #: Issuing tenant shared by the covered bios (merge never crosses
    #: tenants), or None for anonymous flows.
    tenant: Optional[int] = None
    #: Which hardware/NIC queue this request should use (Principle 2).
    #: None = let the block layer pick the submitting core's queue.
    qp_index: Optional[int] = None
    req_id: int = field(default_factory=lambda: next(_req_ids))
    #: Completion status (0 = success).  Set by the initiator driver on an
    #: error completion (response status, or host-side timeout after the
    #: retry budget is exhausted) and fanned out to the covered bios.
    status: int = 0
    #: Split bookkeeping: parent bio -> remaining fragment count.
    is_split_fragment: bool = False
    #: For split fragments: block offsets within the parent bio covered by
    #: this fragment (used to reassemble read payloads).
    volume_offsets: Optional[List[int]] = None
    #: Observability span context ({"queue": Span, "fabric": Span}), set by
    #: the block layer / driver only when an Observability is attached.
    obs: Any = None

    def __post_init__(self):
        if self.op not in ("write", "read", "flush"):
            raise ValueError(f"unknown request op: {self.op}")
        if self.op != "flush" and self.nblocks <= 0:
            raise ValueError("read/write request needs nblocks >= 1")

    @property
    def nbytes(self) -> int:
        return self.nblocks * BLOCK_SIZE

    @property
    def end_lba(self) -> int:
        return self.lba + self.nblocks

    def __repr__(self) -> str:
        return (
            f"<BlockRequest {self.req_id} {self.op} lba={self.lba} "
            f"n={self.nblocks} bios={len(self.bios)} "
            f"flush={self.flush} qp={self.qp_index}>"
        )
