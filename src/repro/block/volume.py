"""Logical volume: RAID-0 style striping across remote namespaces.

The paper's multi-SSD and multi-server experiments (Figures 10(c)/(d))
organize the SSDs "as a single logical volume and the tested systems
distribute 4 KB data blocks to individual physical SSDs in a round-robin
fashion".  :class:`LogicalVolume` reproduces exactly that mapping: volume
block *i* lives on member ``i % n`` at local block ``i // n``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Tuple

if TYPE_CHECKING:  # typing only — avoids a block <-> nvmeof import cycle
    from repro.nvmeof.initiator import RemoteNamespace

__all__ = ["LogicalVolume"]


class LogicalVolume:
    """A flat LBA space striped block-by-block over remote namespaces."""

    def __init__(self, namespaces: List["RemoteNamespace"], stripe_blocks: int = 1):
        if not namespaces:
            raise ValueError("a volume needs at least one namespace")
        if stripe_blocks < 1:
            raise ValueError("stripe_blocks must be >= 1")
        self.namespaces = list(namespaces)
        self.stripe_blocks = stripe_blocks

    @property
    def width(self) -> int:
        return len(self.namespaces)

    def locate(self, lba: int) -> Tuple["RemoteNamespace", int]:
        """Map a volume LBA to (namespace, local LBA)."""
        if lba < 0:
            raise ValueError(f"negative LBA: {lba}")
        stripe = lba // self.stripe_blocks
        offset = lba % self.stripe_blocks
        member = stripe % self.width
        local_stripe = stripe // self.width
        return (
            self.namespaces[member],
            local_stripe * self.stripe_blocks + offset,
        )

    def extents(self, lba: int, nblocks: int) -> Iterator[Tuple["RemoteNamespace", int, List[int]]]:
        """Break a volume extent into per-device contiguous extents.

        Yields ``(namespace, local_lba, volume_offsets)`` tuples where
        ``volume_offsets[i]`` is the offset (in blocks) within the original
        extent of the fragment's *i*-th block — needed to slice payloads,
        since round-robin striping interleaves a device's blocks through
        the volume address space.
        """
        if nblocks < 1:
            raise ValueError("extent needs nblocks >= 1")
        # Collect per-device blocks, then coalesce locally contiguous runs.
        per_device: dict = {}
        device_order: List = []
        for offset in range(nblocks):
            ns, local = self.locate(lba + offset)
            if id(ns) not in per_device:
                per_device[id(ns)] = (ns, [])
                device_order.append(id(ns))
            per_device[id(ns)][1].append((local, offset))
        for key in device_order:
            ns, blocks = per_device[key]
            blocks.sort()
            run_start: int = blocks[0][0]
            run_offsets: List[int] = [blocks[0][1]]
            for local, offset in blocks[1:]:
                if local == run_start + len(run_offsets):
                    run_offsets.append(offset)
                else:
                    yield (ns, run_start, run_offsets)
                    run_start, run_offsets = local, [offset]
            yield (ns, run_start, run_offsets)

    def targets(self) -> List:
        """Distinct target servers backing this volume (stable order)."""
        seen: List = []
        for ns in self.namespaces:
            if ns.target not in seen:
                seen.append(ns.target)
        return seen
