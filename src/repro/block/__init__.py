"""Block layer: bio/request structures, multi-queue submission, merging.

Mirrors the Linux block-mq design the paper modifies: per-core software
queues feed hardware (NIC) queues; a plug list batches consecutive
submissions so adjacent requests can be merged before they reach the driver
(Figure 3's ``blk_start_plug``/``blk_finish_plug`` experiment); oversized
requests are split to the device's maximum transfer size (§4.5).
"""

from repro.block.request import (
    Bio,
    BlockRequest,
    WriteFlags,
)
from repro.block.volume import LogicalVolume

__all__ = ["Bio", "BlockRequest", "WriteFlags", "LogicalVolume"]
