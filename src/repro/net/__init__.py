"""Network fabric: RDMA queue pairs with RC (reliable connected) semantics.

Provides the properties the paper's design depends on:

* per-QP **in-order delivery** of two-sided SENDs (Rio's Principle 2 aligns
  a stream to one QP precisely to inherit this property, §4.5);
* **cross-QP reordering** — independent QPs deliver with independent timing
  (step ④ of Figure 4: "an RDMA NIC is likely to reorder requests among
  multiple queues");
* one-sided **RDMA READ/WRITE** that move data without any remote-CPU cost,
  vs. two-sided **SEND** whose reception costs target CPU (§2.1).
"""

from repro.net.fabric import Fabric, Message, QpEndpoint, QueuePair

__all__ = ["Fabric", "Message", "QpEndpoint", "QueuePair"]
