"""RDMA fabric: queue pairs, SEND/READ/WRITE verbs, delivery ordering.

A :class:`QueuePair` connects two :class:`~repro.hw.nic.Nic` ports with RC
transport.  Each direction has its own FIFO pump process, so SENDs on one
QP are delivered in order while different QPs progress independently (with
deterministic jitter), reproducing both halves of the NIC behaviour the
paper's design leans on.

Crash model: a crashed endpoint silently drops messages addressed to it and
stops sourcing one-sided transfers, like a dead server.  ``restart()``
brings it back with a new epoch; messages from the old epoch are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional

from repro.hw.nic import Nic
from repro.sim.engine import Environment, Event
from repro.sim.resources import Store
from repro.sim.rng import DeterministicRNG

__all__ = [
    "PROPAGATION_DELAY",
    "Message",
    "QpEndpoint",
    "QueuePair",
    "Fabric",
]

#: One-way propagation latency of the RDMA fabric (seconds).  Calibrated to
#: the sub-2 µs half-RTT of ConnectX-6 class networks.
PROPAGATION_DELAY = 1.3e-6

#: One-way latency through a kernel TCP stack on the same network —
#: NVMe/TCP pays the socket layer on both ends (§4.5 Principle 2 notes the
#: per-socket in-order property that makes Rio work over TCP too).
TCP_PROPAGATION_DELAY = 8.0e-6


@dataclass
class Message:
    """A two-sided SEND payload."""

    kind: str
    payload: Any
    nbytes: int
    sent_at: float = field(default=0.0)
    #: Set by fault injection: the message still crosses the wire but the
    #: receiver's CRC check discards it on delivery (NVMe-oF transports
    #: checksum their capsules, so corruption manifests as a drop detected
    #: at the receiver — the sender must retry).
    corrupted: bool = field(default=False)

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError("message size must be positive")


class QpEndpoint:
    """One side of a queue pair."""

    def __init__(self, qp: "QueuePair", side: int):
        self.qp = qp
        self.side = side
        self._handler: Optional[Callable[[Message], Generator]] = None
        self.epoch = 0
        self.down = False

    @property
    def env(self) -> Environment:
        return self.qp.env

    @property
    def nic(self) -> Nic:
        return self.qp.nics[self.side]

    @property
    def peer(self) -> "QpEndpoint":
        return self.qp.endpoints[1 - self.side]

    def set_receive_handler(self, handler: Callable[[Message], Generator]) -> None:
        """Register ``handler(message) -> generator`` run on delivery.

        The handler generator is responsible for charging any CPU time it
        consumes (two-sided reception is what costs target CPU cycles).
        """
        self._handler = handler

    def post_send(self, message: Message) -> None:
        """Post a two-sided SEND toward the peer (asynchronous).

        Delivery is FIFO per QP.  The caller charges its own CPU cost for
        the post (doorbell + WQE build) — the paper's drivers spend "many
        CPU cycles on RDMA and NVMe queues" per command (§3.2).
        """
        if self.down:
            return
        message.sent_at = self.env.now
        self.qp.enqueue(self.side, message, self.epoch)

    def rdma_read(self, nbytes: int):
        """Generator: one-sided READ of ``nbytes`` from the peer's memory.

        Completes after a full round trip plus wire time; consumes *no* CPU
        on the peer.  Raises nothing on peer crash — it simply never
        completes (the caller's server is the one that crashed in our
        experiments, so this is never the hanging edge).
        """
        yield from self.qp.one_sided_transfer(requester=self, nbytes=nbytes)

    def rdma_write(self, nbytes: int):
        """Generator: one-sided WRITE of ``nbytes`` into the peer's memory."""
        yield from self.qp.one_sided_transfer(requester=self, nbytes=nbytes)

    def crash(self) -> None:
        self.down = True
        self.epoch += 1

    def restart(self) -> None:
        self.down = False

    def deliver(self, message: Message) -> None:
        if self.down or self._handler is None:
            return  # dropped on the floor, like a dead receiver
        if message.corrupted:
            # CRC failure on the received capsule: discard silently (the
            # sender's timeout/retry machinery is responsible for recovery).
            self.env.trace("fault", "corrupt_discard", qp=self.qp.index,
                           side=self.side, msg=message.kind)
            return
        self.env.process(self._handler(message))


class QueuePair:
    """An RC queue pair between two NICs, with per-direction FIFO pumps."""

    def __init__(
        self,
        env: Environment,
        index: int,
        nic_a: Nic,
        nic_b: Nic,
        rng: DeterministicRNG,
        propagation_delay: float = PROPAGATION_DELAY,
        transport: str = "rdma",
    ):
        if transport not in ("rdma", "tcp"):
            raise ValueError(f"unknown transport: {transport!r}")
        self.env = env
        self.index = index
        self.nics = (nic_a, nic_b)
        self.rng = rng
        self.transport = transport
        #: QPs see slightly different effective latencies (queue placement,
        #: completion-vector steering) — the source of cross-QP reordering.
        self.propagation_delay = propagation_delay * rng.uniform(0.85, 1.35)
        self.endpoints = (QpEndpoint(self, 0), QpEndpoint(self, 1))
        self._queues = (Store(env), Store(env))
        #: Optional :class:`repro.sim.faults.FaultPlan` consulted per
        #: message.  None (the default) costs one attribute check per
        #: message and draws no RNG — the fault plane is free when off.
        self.fault_plan = None
        #: Bumped on every transient breakdown (diagnostics only; epoch
        #: discarding is what actually drops in-flight messages).
        self.generation = 0
        self._breakdown_callbacks: List[Callable[["QueuePair"], None]] = []
        env.process(self._pump(0))
        env.process(self._pump(1))

    def enqueue(self, side: int, message: Message, epoch: int) -> None:
        self._queues[side].put((message, epoch))

    def on_breakdown(self, callback: Callable[["QueuePair"], None]) -> None:
        """Register a callback fired when this QP breaks down."""
        self._breakdown_callbacks.append(callback)

    def breakdown(self) -> None:
        """Transient QP failure (RC error state).

        Both endpoints bump their epoch, so every in-flight message — queued
        or on the wire — is discarded, exactly like a torn-down RC
        connection.  Unlike :meth:`QpEndpoint.crash` the endpoints stay up:
        the connection is immediately usable at the new epoch, and the
        registered callbacks (the initiator driver) handle reconnect and
        resubmission.
        """
        self.generation += 1
        for endpoint in self.endpoints:
            endpoint.epoch += 1
        self.env.trace("fault", "qp_breakdown", qp=self.index,
                       generation=self.generation)
        for callback in list(self._breakdown_callbacks):
            callback(self)

    def _pump(self, side: int):
        """Serially ship messages from ``side`` to the other side (FIFO)."""
        sender = self.endpoints[side]
        receiver = self.endpoints[1 - side]
        queue = self._queues[side]
        while True:
            message, epoch = yield queue.get()
            if sender.down or epoch != sender.epoch:
                continue  # message from a crashed epoch: dropped
            plan = self.fault_plan
            if plan is not None:
                verdict, extra_delay = plan.message_verdict(self, side, message)
                if verdict == "drop":
                    continue  # lost on the wire: never delivered
                if verdict == "corrupt":
                    message.corrupted = True
                elif verdict == "delay":
                    # Head-of-line delay: RC transport is FIFO, so a stuck
                    # message holds back its successors on the same QP.
                    yield self.env.timeout(extra_delay)
                    if epoch != sender.epoch:
                        continue
            yield from sender.nic.occupy_tx(message.nbytes)
            yield self.env.timeout(
                self.rng.jitter(self.propagation_delay, 0.15)
            )
            yield from receiver.nic.occupy_rx(message.nbytes)
            if epoch != sender.epoch:
                continue
            obs = self.env.obs
            if obs is not None:
                obs.metrics.inc("fabric.messages_delivered")
                obs.metrics.inc("fabric.bytes_delivered", message.nbytes)
            receiver.deliver(message)

    def one_sided_transfer(self, requester: QpEndpoint, nbytes: int):
        """Generator: RDMA READ/WRITE timing — RTT plus wire time."""
        responder = requester.peer
        yield self.env.timeout(
            self.rng.jitter(self.propagation_delay, 0.15)
        )
        # Data moves through both NICs' pipes; charge the responder TX and
        # requester RX for a READ (symmetric for WRITE — same wire time).
        yield from responder.nic.occupy_tx(nbytes)
        yield self.env.timeout(
            self.rng.jitter(self.propagation_delay, 0.15)
        )
        yield from requester.nic.occupy_rx(nbytes)


class Fabric:
    """The switch connecting the initiator to all target servers."""

    def __init__(
        self,
        env: Environment,
        rng: Optional[DeterministicRNG] = None,
        propagation_delay: Optional[float] = None,
        transport: str = "rdma",
    ):
        if transport not in ("rdma", "tcp"):
            raise ValueError(f"unknown transport: {transport!r}")
        self.env = env
        self.rng = rng or DeterministicRNG(11)
        self.transport = transport
        if propagation_delay is None:
            propagation_delay = (
                PROPAGATION_DELAY if transport == "rdma" else TCP_PROPAGATION_DELAY
            )
        self.propagation_delay = propagation_delay
        self._qps: List[QueuePair] = []
        #: Fault plan propagated onto every queue pair (set by
        #: :meth:`repro.sim.faults.FaultPlan.install`).
        self.fault_plan = None

    def connect(self, nic_a: Nic, nic_b: Nic, num_qps: int) -> List[QueuePair]:
        """Create ``num_qps`` RC queue pairs (or TCP sockets) between NICs."""
        if num_qps < 1:
            raise ValueError("need at least one queue pair")
        qps = []
        for i in range(num_qps):
            qp = QueuePair(
                self.env,
                index=len(self._qps),
                nic_a=nic_a,
                nic_b=nic_b,
                rng=self.rng.fork(f"qp{len(self._qps)}"),
                propagation_delay=self.propagation_delay,
                transport=self.transport,
            )
            qp.fault_plan = self.fault_plan
            self._qps.append(qp)
            qps.append(qp)
        return qps

    @property
    def queue_pairs(self) -> List[QueuePair]:
        return list(self._qps)
