"""Crash-point enumeration: snapshot durable state at persistence events.

One *recording run* executes the workload with ``on_persist`` hooks armed
on every SSD and PMR.  Each hook firing marks a moment at which the
durable world changed — exactly the moments at which a power cut can
produce a distinct crash image — and captures the full durable state of
the cluster (SSD media + PMR records).  Snapshots are deduplicated per
virtual timestamp (keeping the *last* capture at each instant, i.e. the
state after all same-time mutations) and optionally down-sampled by a
seeded RNG for cheap smoke runs.

Replaying a crash point means restoring a snapshot into a *fresh*
deterministic testbed — the same spec and seed produce identical component
names — and running the system's recovery path there, which models a full
power cycle: all volatile state (caches, queues, sequencer windows, gate
positions) is reborn empty while durable state carries over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.check.workload import (
    Completion,
    WorkloadSpec,
    build_plan,
    build_testbed,
    start_workload,
)
from repro.sim.rng import DeterministicRNG

__all__ = [
    "ClusterState",
    "RecordedRun",
    "capture_cluster",
    "restore_cluster",
    "record_run",
    "select_crash_points",
]

#: Virtual-time budget for one recording run (far beyond any spec we run).
RUN_LIMIT = 2.0


@dataclass
class ClusterState:
    """Everything that survives a power cut, captured at one instant."""

    time: float
    ssd: Dict[str, dict] = field(default_factory=dict)
    pmr: Dict[str, dict] = field(default_factory=dict)


def capture_cluster(cluster, when: float) -> ClusterState:
    return ClusterState(
        time=when,
        ssd={
            ssd.name: ssd.capture_durable_state()
            for target in cluster.targets
            for ssd in target.ssds
        },
        pmr={target.name: target.pmr.capture_state()
             for target in cluster.targets},
    )


def restore_cluster(cluster, state: ClusterState) -> None:
    """Load a snapshot into a fresh cluster (matched by component name)."""
    ssds = {ssd.name: ssd for target in cluster.targets for ssd in target.ssds}
    for name, ssd_state in state.ssd.items():
        ssds[name].restore_durable_state(ssd_state)
    for target in cluster.targets:
        if target.name in state.pmr:
            target.pmr.restore_state(state.pmr[target.name])


@dataclass
class RecordedRun:
    """The recording run's output: snapshots + what the app observed."""

    spec: WorkloadSpec
    snapshots: List[ClusterState]
    completions: List[Completion]
    final: ClusterState
    elapsed: float


def record_run(spec: WorkloadSpec) -> RecordedRun:
    """Run the workload once, snapshotting at every persistence event."""
    env, cluster, stack = build_testbed(spec)
    if spec.faults:
        # Faults perturb the recording run only: crash-point replays model
        # a power cycle, after which the transient fault is gone.
        from repro.sim.faults import FaultPlan

        FaultPlan.from_dict(spec.faults).install(cluster)
    plan = build_plan(spec)
    snapshots: List[ClusterState] = []

    def snap(_device) -> None:
        snapshots.append(capture_cluster(cluster, env.now))

    for target in cluster.targets:
        target.pmr.on_persist = snap
        for ssd in target.ssds:
            ssd.on_persist = snap

    completions: List[Completion] = []
    all_done = start_workload(env, cluster, stack, spec, plan, completions)
    env.run_until_event(all_done, limit=RUN_LIMIT)
    # Quiesce: let trailing persistence (lazy cache drains, persist-bit
    # toggles, recycling) settle so the final snapshot is the steady state.
    env.run(until=env.now + 2e-3)

    for target in cluster.targets:
        target.pmr.on_persist = None
        for ssd in target.ssds:
            ssd.on_persist = None

    return RecordedRun(
        spec=spec,
        snapshots=snapshots,
        completions=completions,
        final=capture_cluster(cluster, env.now),
        elapsed=env.now,
    )


def select_crash_points(run: RecordedRun) -> List[ClusterState]:
    """Deduplicated (and optionally sampled) crash points, oldest first.

    Several persistence events can share a virtual timestamp (e.g. a
    drain-loop batch apply followed by a persist-bit toggle); only the
    final state at each instant is a reachable crash image, because the
    simulator treats same-time mutations as one atomic step.
    """
    by_time: Dict[float, ClusterState] = {}
    for state in run.snapshots:  # chronological: later capture wins per t
        by_time[state.time] = state
    points = [by_time[t] for t in sorted(by_time)]
    limit = run.spec.max_points
    if limit and len(points) > limit:
        # Seeded down-sample that always keeps the first and last point.
        rng = DeterministicRNG(run.spec.seed).fork("check-sample")
        interior = list(range(1, len(points) - 1))
        rng.shuffle(interior)
        kept = sorted([0, len(points) - 1] + interior[: max(0, limit - 2)])
        points = [points[i] for i in kept]
    return points
