"""The order oracle: validate recovered state against declared order.

All functions here are pure — they look only at the per-block survival map
extracted from a recovered testbed, the workload plan and the set of
completions acknowledged before the crash — so the property-based tests
can drive them with synthetic states directly.

Per-system contracts (what "order-preserving" promises after a crash):

* **rio / horae** — recovery rolls back to a group/epoch prefix: per
  stream, survivors must be exactly groups ``1..k`` for some ``k``, each
  fully intact (a torn group or a survivor with a lost predecessor is a
  violation).
* **linux** — the synchronous chain orders groups and the per-group FLUSH
  makes completion imply durability, but there is no rollback: the one
  in-flight group at the crash may be torn.  Pattern: ``full* partial?
  none*``.
* **barrier** — ordering is per *write*, not per group: the single FIFO
  lane persists blocks in submission order, so the survivor set must be a
  prefix of the stream's block sequence (later blocks never survive
  earlier ones).
* **all systems** — an acknowledged fsync (flush-group completion that
  fired strictly before the crash) must survive recovery fully intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.check.workload import Completion, GroupPlan

__all__ = [
    "GroupSurvival",
    "Violation",
    "group_status",
    "extract_survival",
    "acked_groups",
    "check_order_invariants",
]

#: Survival map: (stream, group index) -> per-write lists of per-block
#: durability flags, in plan order.
GroupSurvival = Dict[Tuple[int, int], List[List[bool]]]

ROLLBACK_SYSTEMS = ("rio", "rio-nomerge", "horae")


@dataclass(frozen=True)
class Violation:
    """One broken ordering invariant at one crash point."""

    kind: str  # "torn-group" | "order-hole" | "barrier-reorder" | "lost-fsync"
    stream: int
    group: int
    detail: str

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "stream": self.stream,
            "group": self.group,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return (f"{self.kind}: stream {self.stream} group {self.group} "
                f"({self.detail})")


def group_status(blocks: List[List[bool]]) -> str:
    """"full" | "none" | "partial" for one group's survival flags."""
    flat = [flag for write in blocks for flag in write]
    if all(flat):
        return "full"
    if not any(flat):
        return "none"
    return "partial"


def extract_survival(stack, plan: List[GroupPlan]) -> GroupSurvival:
    """Read recovered media: which planned blocks hold their tokens?

    Resolves each planned volume LBA through the stack's logical volume to
    the backing SSD and compares the durable payload against the unique
    token the plan assigned to that block.
    """
    volume = stack.volume
    survival: GroupSurvival = {}
    for group in plan:
        writes: List[List[bool]] = []
        for write in group.writes:
            flags: List[bool] = []
            for offset, token in enumerate(write.tokens):
                ns, local = volume.locate(write.lba + offset)
                ssd = ns.target.ssds[ns.nsid]
                flags.append(ssd.durable_payload(local) == token)
            writes.append(flags)
        survival[(group.stream, group.index)] = writes
    return survival


def acked_groups(completions: Iterable[Completion],
                 crash_time: float) -> Set[Tuple[int, int]]:
    """Completions the application observed strictly before the crash."""
    return {
        (c.stream, c.group) for c in completions if c.time < crash_time
    }


def check_order_invariants(
    system: str,
    plan: List[GroupPlan],
    survival: GroupSurvival,
    acked: Set[Tuple[int, int]],
) -> List[Violation]:
    """All ordering-invariant violations of one recovered state."""
    violations: List[Violation] = []
    per_stream: Dict[int, List[GroupPlan]] = {}
    for group in plan:
        per_stream.setdefault(group.stream, []).append(group)

    for stream, groups in sorted(per_stream.items()):
        groups = sorted(groups, key=lambda g: g.index)
        statuses = [
            (g, group_status(survival[(g.stream, g.index)])) for g in groups
        ]

        if system in ROLLBACK_SYSTEMS:
            # Exact prefix of intact groups: full* none*.
            seen_gap = False
            for group, status in statuses:
                if status == "partial":
                    violations.append(Violation(
                        "torn-group", stream, group.index,
                        "rollback recovery exposed a partially-durable group",
                    ))
                if status == "none":
                    seen_gap = True
                elif seen_gap:
                    violations.append(Violation(
                        "order-hole", stream, group.index,
                        "group survived although an earlier group was lost",
                    ))
        elif system == "linux":
            # full* partial? none*: one torn in-flight group allowed, and
            # nothing may survive past the first non-full group.
            seen_nonfull = False
            seen_partial = False
            for group, status in statuses:
                if status == "partial":
                    if seen_partial or seen_nonfull:
                        violations.append(Violation(
                            "order-hole", stream, group.index,
                            "second torn/late group on a synchronous chain",
                        ))
                    seen_partial = True
                    seen_nonfull = True
                elif status == "none":
                    seen_nonfull = True
                elif seen_nonfull:  # full after a gap
                    violations.append(Violation(
                        "order-hole", stream, group.index,
                        "group survived although an earlier group was lost",
                    ))
        elif system == "barrier":
            # Block-granularity prefix: survival flags, flattened in
            # submission order, must be monotonically non-increasing.
            seen_gap = False
            for group, _status in statuses:
                for write_flags in survival[(group.stream, group.index)]:
                    for flag in write_flags:
                        if not flag:
                            seen_gap = True
                        elif seen_gap:
                            violations.append(Violation(
                                "barrier-reorder", stream, group.index,
                                "block persisted ahead of an earlier barrier"
                                " write",
                            ))
                            seen_gap = True  # report once per gap run
                            break
                    else:
                        continue
                    break
        else:
            raise ValueError(f"no oracle contract for system {system!r}")

        # Universal: acknowledged fsyncs are durable.
        for group, status in statuses:
            if group.flush and (stream, group.index) in acked and status != "full":
                violations.append(Violation(
                    "lost-fsync", stream, group.index,
                    f"acknowledged fsync group recovered {status}",
                ))
    return violations
