"""Differential fuzz driver: cross-check systems, shrink failures.

``check_workload`` is the complete check of one spec: record, enumerate
crash points, replay recovery at each, run the oracle.  The differential
driver runs several systems over the same workload shape so a contract
violated by only one implementation stands out immediately.  Failing specs
are shrunk greedily along every shape dimension to a minimal reproducer
and dumped as JSON; ``replay_reproducer`` re-runs a dump byte-for-byte
(the spec is the only input — see :mod:`repro.check.workload`).

``check_cell`` is the sweep-runner entry point: a top-level function (the
runner encodes cells as ``"module:function"``) returning a plain dict so
results are picklable and cacheable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.check.crashpoints import (
    ClusterState,
    RecordedRun,
    record_run,
    restore_cluster,
    select_crash_points,
)
from repro.check.oracle import (
    Violation,
    acked_groups,
    check_order_invariants,
    extract_survival,
)
from repro.check.workload import WorkloadSpec, build_plan, build_testbed

__all__ = [
    "CrashFailure",
    "CheckReport",
    "recover_at",
    "check_workload",
    "differential_check",
    "shrink_spec",
    "dump_reproducer",
    "replay_reproducer",
    "check_cell",
]

#: Virtual-time budget for one recovery pass.
RECOVERY_LIMIT = 2.0


@dataclass
class CrashFailure:
    """Oracle violations at one crash point."""

    crash_time: float
    violations: List[Violation]

    def as_dict(self) -> dict:
        return {
            "crash_time": self.crash_time,
            "violations": [v.as_dict() for v in self.violations],
        }


@dataclass
class CheckReport:
    """The outcome of checking one spec at every crash point."""

    spec: WorkloadSpec
    crash_points: int = 0
    groups_completed: int = 0
    failures: List[CrashFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "crash_points": self.crash_points,
            "groups_completed": self.groups_completed,
            "ok": self.ok,
            "failures": [f.as_dict() for f in self.failures],
        }


def recover_at(spec: WorkloadSpec, state: ClusterState):
    """Fresh testbed + snapshot restore + recovery; returns the stack.

    Models a full power cycle at ``state.time``: every volatile structure
    is reborn empty, durable state is the snapshot, and the system's own
    recovery path runs before anything is read back.
    """
    env, cluster, stack = build_testbed(spec)
    restore_cluster(cluster, state)
    if hasattr(stack, "recovery"):
        core = cluster.initiator.cpus.pick(0)
        recovery = stack.recovery()
        env.run_until_event(
            env.process(recovery.run_initiator_recovery(core)),
            limit=RECOVERY_LIMIT,
        )
    # Linux/barrier recover nothing: durable media is the recovered state.
    return stack


def check_workload(spec: WorkloadSpec,
                   run: Optional[RecordedRun] = None) -> CheckReport:
    """Record one run of ``spec`` and validate every crash point."""
    if run is None:
        run = record_run(spec)
    plan = build_plan(spec)
    points = select_crash_points(run)
    report = CheckReport(
        spec=spec,
        crash_points=len(points),
        groups_completed=len(run.completions),
    )
    for state in points:
        stack = recover_at(spec, state)
        survival = extract_survival(stack, plan)
        acked = acked_groups(run.completions, state.time)
        violations = check_order_invariants(spec.system, plan, survival, acked)
        if violations:
            report.failures.append(CrashFailure(state.time, violations))
    return report


def differential_check(base: WorkloadSpec,
                       systems: List[str]) -> Dict[str, CheckReport]:
    """The same workload shape across systems: who breaks the contract?"""
    return {
        system: check_workload(base.with_(system=system))
        for system in systems
    }


# ----------------------------------------------------------------------
# Shrinking + reproducers
# ----------------------------------------------------------------------

#: Shape dimensions the shrinker may reduce, with their floors.
_SHRINK_DIMENSIONS = (
    ("streams", 1),
    ("groups_per_stream", 1),
    ("writes_per_group", 1),
    ("depth", 1),
)


def _still_fails(spec: WorkloadSpec) -> bool:
    return not check_workload(spec).ok


def shrink_spec(spec: WorkloadSpec,
                still_fails: Callable[[WorkloadSpec], bool] = _still_fails,
                max_attempts: int = 64) -> WorkloadSpec:
    """Greedy shrink: halve, then decrement, each dimension while the
    spec still fails.  Deterministic, bounded, and cheap relative to the
    fuzzing that found the failure."""
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for name, floor in _SHRINK_DIMENSIONS:
            value = getattr(spec, name)
            for candidate in (max(floor, value // 2), value - 1):
                if candidate >= floor and candidate < value:
                    attempts += 1
                    smaller = spec.with_(**{name: candidate})
                    if still_fails(smaller):
                        spec = smaller
                        progress = True
                        break
                if attempts >= max_attempts:
                    break
            if attempts >= max_attempts:
                break
    return spec


def dump_reproducer(path, report: CheckReport) -> None:
    """Write a replayable JSON reproducer for a failing check.

    The payload embeds both the legacy ``spec`` (a
    :class:`WorkloadSpec` dict — what :func:`replay_reproducer` reads)
    and its ScenarioSpec v1 upgrade under ``scenario_spec``, so the same
    file replays via ``repro run <file>`` too.
    """
    from repro.spec import upgrade_workload_spec  # lazy: spec sits above check

    payload = {
        "kind": "repro-check-reproducer",
        "spec": report.spec.to_dict(),
        "scenario_spec": upgrade_workload_spec(report.spec.to_dict()).to_dict(),
        "crash_points": report.crash_points,
        "failures": [f.as_dict() for f in report.failures],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def replay_reproducer(path) -> CheckReport:
    """Re-run a dumped reproducer from its spec alone."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("kind") != "repro-check-reproducer":
        raise ValueError(f"{path} is not a repro-check reproducer")
    return check_workload(WorkloadSpec.from_dict(payload["spec"]))


# ----------------------------------------------------------------------
# Sweep-runner cell
# ----------------------------------------------------------------------


def check_cell(
    system: str = "rio",
    layout: str = "optane",
    seed: int = 0,
    streams: int = 2,
    groups_per_stream: int = 4,
    writes_per_group: int = 2,
    depth: int = 2,
    flush_every: int = 2,
    max_points: int = 0,
    initiators: int = 1,
    prefill: float = 0.0,
    faults: Optional[dict] = None,
) -> dict:
    """One (system, layout, seed) check as a cacheable sweep cell."""
    spec = WorkloadSpec(
        system=system,
        layout=layout,
        seed=seed,
        streams=streams,
        groups_per_stream=groups_per_stream,
        writes_per_group=writes_per_group,
        depth=depth,
        flush_every=flush_every,
        max_points=max_points,
        initiators=initiators,
        prefill=prefill,
        faults=faults,
    )
    return check_workload(spec).as_dict()
