"""Seeded ordered workloads for the crash-consistency checker.

A :class:`WorkloadSpec` is the *entire* input of a check: system, layout,
seed and a handful of shape knobs.  Everything else — block addresses,
write sizes, group boundaries, flush points and the unique per-block
payload tokens the oracle greps recovered media for — derives
deterministically from the spec, so a failing spec *is* a reproducer.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.experiment import build_cluster
from repro.sim.engine import Environment, Event
from repro.sim.rng import DeterministicRNG
from repro.systems.base import make_stack

__all__ = [
    "STREAM_AREA",
    "WorkloadSpec",
    "WritePlan",
    "GroupPlan",
    "Completion",
    "build_plan",
    "build_testbed",
    "start_workload",
]

#: Volume-LBA area reserved per stream; streams never cross areas, so a
#: recovered block always attributes to exactly one planned write.
STREAM_AREA = 1 << 20


@dataclass(frozen=True)
class WorkloadSpec:
    """One fully-deterministic checker workload (JSON round-trippable)."""

    system: str = "rio"
    layout: str = "optane"
    seed: int = 0
    streams: int = 2
    groups_per_stream: int = 4
    writes_per_group: int = 2
    depth: int = 2
    #: Every k-th group of a stream is an fsync group (0 = no flushes).
    flush_every: int = 2
    #: Cap on enumerated crash points (0 = every persistence event).
    max_points: int = 0
    #: Initiator hosts; > 1 builds a sharded multi-initiator cluster
    #: (:mod:`repro.scale`) so ordering is fuzzed under fan-in.
    initiators: int = 1
    #: Fraction of each SSD's logical capacity prefilled directly on media
    #: before the run: qualification cells use it to start in steady-state
    #: GC (a no-op on profiles without a declared capacity).  Prefilled
    #: blocks carry their own tokens, so the oracle never mistakes them
    #: for planned writes.
    prefill: float = 0.0
    #: Optional embedded fault plan (a :meth:`FaultPlan.to_dict` document,
    #: == the ScenarioSpec ``faults`` section) installed on the *recording*
    #: run only — recovery replays stay fault-free (power-cycle model).
    #: The checker workload runs without driver hardening, so only
    #: delay/stall/degrade faults are sane here; spec validation
    #: (:mod:`repro.spec`) enforces that.
    faults: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        return cls.from_dict(json.loads(text))

    def with_(self, **changes) -> "WorkloadSpec":
        return replace(self, **changes)


@dataclass(frozen=True)
class WritePlan:
    """One planned ordered write: volume extent + unique block tokens."""

    lba: int
    nblocks: int
    tokens: Tuple[Tuple, ...]


@dataclass(frozen=True)
class GroupPlan:
    """One planned ordered group (``index`` is 1-based, == Rio's seq)."""

    stream: int
    index: int
    flush: bool
    writes: Tuple[WritePlan, ...]


@dataclass
class Completion:
    """An ordered-completion the application observed before the crash."""

    time: float
    stream: int
    group: int
    flush: bool


def build_plan(spec: WorkloadSpec) -> List[GroupPlan]:
    """Derive the concrete write plan from the spec (pure, deterministic)."""
    if spec.streams < 1 or spec.groups_per_stream < 1 or spec.writes_per_group < 1:
        raise ValueError("spec needs at least one stream/group/write")
    plan: List[GroupPlan] = []
    for stream in range(spec.streams):
        rng = DeterministicRNG(spec.seed).fork(f"check-plan-s{stream}")
        lba = stream * STREAM_AREA
        for index in range(1, spec.groups_per_stream + 1):
            flush = spec.flush_every > 0 and index % spec.flush_every == 0
            writes: List[WritePlan] = []
            for windex in range(spec.writes_per_group):
                nblocks = rng.randint(1, 3)
                tokens = tuple(
                    ("chk", stream, index, windex, block)
                    for block in range(nblocks)
                )
                writes.append(WritePlan(lba=lba, nblocks=nblocks, tokens=tokens))
                lba += nblocks
            plan.append(GroupPlan(stream, index, flush, tuple(writes)))
    return plan


def build_testbed(spec: WorkloadSpec):
    """Fresh deterministic (env, cluster, stack) for the spec.

    The same spec always yields byte-identical component names and jitter
    streams, which is what makes snapshot restore into a *fresh* testbed a
    faithful crash model.

    ``spec.initiators > 1`` builds a sharded multi-initiator cluster
    instead: N initiator hosts fan in to the layout's targets, streams
    are sharded across hosts by residue (stream ``s`` on host ``s % N``),
    and recovery runs once from the coordinator (host 0) — the same
    order oracle then validates ordering under fan-in.
    """
    env = Environment()
    if spec.initiators > 1:
        from repro.harness.experiment import LAYOUTS
        from repro.scale import ScaleOutCluster, ShardedStack

        cluster = ScaleOutCluster(
            env, LAYOUTS[spec.layout], num_initiators=spec.initiators,
            seed=spec.seed,
        )
        stack = ShardedStack(cluster, spec.system,
                             num_streams=max(spec.streams, 1))
        _prefill_cluster(cluster, spec.prefill)
        return env, cluster, stack
    cluster = build_cluster(spec.layout, env=env, seed=spec.seed)
    stack = make_stack(spec.system, cluster, num_streams=max(spec.streams, 1))
    _prefill_cluster(cluster, spec.prefill)
    return env, cluster, stack


def _prefill_cluster(cluster, fraction: float) -> None:
    """Apply the spec's prefill to every SSD (deterministic, timeless)."""
    if not fraction:
        return
    for target in cluster.targets:
        for ssd in target.ssds:
            ssd.prefill(fraction)


def start_workload(env, cluster, stack, spec: WorkloadSpec,
                   plan: List[GroupPlan], completions: List[Completion]) -> Event:
    """Spawn one writer process per stream; returns the all-done event.

    Each writer keeps ``spec.depth`` groups in flight (ordered submission,
    asynchronous completion — the paper's programming model, §4.6) and
    appends a :class:`Completion` the moment a group's ordered completion
    event fires.
    """
    per_stream: Dict[int, List[GroupPlan]] = {}
    for group in plan:
        per_stream.setdefault(group.stream, []).append(group)
    dones = []
    for stream, groups in sorted(per_stream.items()):
        done = Event(env)
        dones.append(done)
        env.process(
            _stream_writer(env, cluster, stack, spec, stream, groups,
                           completions, done)
        )
    return env.all_of(dones)


def _stream_writer(env, cluster, stack, spec, stream, groups, completions, done):
    core = cluster.initiator.cpus.pick(stream % len(cluster.initiator.cpus))
    inflight: List[Event] = []
    for group in groups:
        event = None
        for windex, write in enumerate(group.writes):
            last = windex == len(group.writes) - 1
            event = yield from stack.write_ordered(
                core,
                stream,
                lba=write.lba,
                nblocks=write.nblocks,
                payload=list(write.tokens),
                end_of_group=last,
                flush=group.flush and last,
            )

        def _observe(_event, g=group):
            completions.append(Completion(env.now, g.stream, g.index, g.flush))

        if event.triggered:
            _observe(event)
        else:
            event.callbacks.append(_observe)
        inflight.append(event)
        while len(inflight) >= max(spec.depth, 1):
            head = inflight.pop(0)
            if not head.triggered:
                yield head
    for event in inflight:
        if not event.triggered:
            yield event
    done.succeed()
