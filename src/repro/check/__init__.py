"""Crash-consistency oracle: differential order-invariant checking.

The checker closes the loop the paper's correctness argument (§4.8) opens:
it *executes* the argument against the simulator.  One recorded run of a
seeded ordered workload yields a snapshot of all durable state (SSD media +
PMR) at every persistence event; each snapshot becomes a crash point.  For
every crash point the checker builds a fresh deterministic testbed,
restores the captured durable state, runs the system's recovery path (Rio
§4.4, HORAE §6.5; Linux and barrier recover nothing beyond durable media)
and validates the recovered state against the declared storage order:

* groups persist as per-stream prefixes (no group survives a lost
  predecessor),
* no holes inside a group/epoch (rollback systems must never expose a
  torn group),
* acknowledged fsyncs are durable (a flush-group whose completion fired
  before the crash must survive recovery intact).

The differential driver cross-checks all systems on the same workload and
shrinks failing specs to a minimal JSON reproducer that replays
deterministically.  ``repro check`` wires it into the sweep runner and CI.
"""

from repro.check.crashpoints import (
    ClusterState,
    RecordedRun,
    capture_cluster,
    record_run,
    restore_cluster,
    select_crash_points,
)
from repro.check.differential import (
    CheckReport,
    CrashFailure,
    check_cell,
    check_workload,
    differential_check,
    dump_reproducer,
    replay_reproducer,
    shrink_spec,
)
from repro.check.runner import (
    DEFAULT_MATRIX,
    DEFAULT_SEEDS,
    MatrixResult,
    build_matrix_specs,
    run_check_matrix,
)
from repro.check.oracle import (
    GroupSurvival,
    Violation,
    check_order_invariants,
    group_status,
)
from repro.check.workload import (
    Completion,
    GroupPlan,
    WorkloadSpec,
    WritePlan,
    build_plan,
    build_testbed,
)

__all__ = [
    "ClusterState",
    "RecordedRun",
    "capture_cluster",
    "record_run",
    "restore_cluster",
    "select_crash_points",
    "CheckReport",
    "CrashFailure",
    "check_cell",
    "check_workload",
    "differential_check",
    "dump_reproducer",
    "replay_reproducer",
    "shrink_spec",
    "DEFAULT_MATRIX",
    "DEFAULT_SEEDS",
    "MatrixResult",
    "build_matrix_specs",
    "run_check_matrix",
    "GroupSurvival",
    "Violation",
    "check_order_invariants",
    "group_status",
    "Completion",
    "GroupPlan",
    "WorkloadSpec",
    "WritePlan",
    "build_plan",
    "build_testbed",
]
