"""Matrix driver behind ``repro check``: fan specs out, shrink failures.

The check matrix is a sweep like any figure: every (system, layout, seed,
shape) cell is an independent simulation, so it runs on the same
:class:`~repro.harness.sweep.SweepRunner` — ``--jobs N`` fans cells across
worker processes and ``--cache`` memoizes green cells in the on-disk
result cache, so a re-run after a code change only pays for what the
digest says changed.

``DEFAULT_MATRIX`` maps each system to the layouts its ordering contract
is checked on.  ``linux`` is deliberately limited to single-device
layouts: the baseline stack attaches its FLUSH to the final bio of a
group, whose fragments reach only the devices that bio strides, so on a
multi-device volume an acknowledged fsync genuinely does not cover every
member (real md/LVM fans FLUSH out to all members; modeling that would
add a command per group and shift the Lesson-1 flash figures).  The
limitation is documented in ``docs/architecture.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.differential import check_cell, shrink_spec, dump_reproducer
from repro.check.workload import WorkloadSpec
from repro.harness.sweep import RunSpec, SweepRunner

__all__ = [
    "DEFAULT_MATRIX",
    "SCALE_MATRIX",
    "DEFAULT_SEEDS",
    "MatrixResult",
    "build_matrix_specs",
    "run_check_matrix",
]

#: system -> layouts whose ordering contract the system must uphold.
DEFAULT_MATRIX: Dict[str, Tuple[str, ...]] = {
    "rio": ("flash", "optane", "4ssd-1target", "2optane-2targets"),
    "horae": ("flash", "optane", "2optane-2targets"),
    "linux": ("flash", "optane"),
    "barrier": ("flash", "optane"),
}

DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2)

#: system -> (layout, initiators) cells checked on the sharded
#: multi-initiator cluster (:mod:`repro.scale`): the same order oracle,
#: but with streams fanned in from several initiator hosts, so
#: cross-host sharding, per-flow steering and coordinator recovery are
#: all under the crash fuzzer too.  Layouts here have >= 2 targets so
#: fan-in crosses real target boundaries.
SCALE_MATRIX: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "rio": (("2optane-2targets", 2),),
    "horae": (("2optane-2targets", 2),),
}


@dataclass
class MatrixResult:
    """Everything one ``repro check`` invocation found."""

    #: (spec, report-dict) per cell, in matrix order.
    cells: List[Tuple[WorkloadSpec, dict]] = field(default_factory=list)
    #: Minimal reproducers of the failing cells (shrunk when requested).
    reproducers: List[WorkloadSpec] = field(default_factory=list)
    #: Paths of dumped reproducer files.
    dumped: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[Tuple[WorkloadSpec, dict]]:
        return [(spec, report) for spec, report in self.cells
                if not report["ok"]]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = []
        per_system: Dict[str, List[Tuple[WorkloadSpec, dict]]] = {}
        for spec, report in self.cells:
            per_system.setdefault(spec.system, []).append((spec, report))
        for system, cells in per_system.items():
            points = sum(report["crash_points"] for _s, report in cells)
            bad = [c for c in cells if not c[1]["ok"]]
            status = "OK" if not bad else f"{len(bad)} FAILING"
            lines.append(
                f"{system:8s} {len(cells):3d} cell(s), "
                f"{points:5d} crash point(s): {status}"
            )
        for spec, report in self.failures:
            lines.append(f"  FAIL {spec.to_json()}")
            for failure in report["failures"][:2]:
                for violation in failure["violations"][:2]:
                    lines.append(
                        f"       {violation['kind']}: stream "
                        f"{violation['stream']} group {violation['group']}"
                    )
        total_points = sum(r["crash_points"] for _s, r in self.cells)
        verdict = "all ordering invariants hold" if self.ok else "VIOLATIONS"
        lines.append(
            f"checked {len(self.cells)} cell(s), {total_points} crash "
            f"point(s): {verdict}"
        )
        return "\n".join(lines)


def build_matrix_specs(
    systems: Optional[Sequence[str]] = None,
    layouts: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    **shape,
) -> List[WorkloadSpec]:
    """The checking matrix as concrete specs, in deterministic order.

    ``layouts`` overrides the per-system defaults (use with care: not
    every system supports every layout — barrier is single-device only).
    """
    if systems is None:
        systems = list(DEFAULT_MATRIX)
    specs = []
    for system in systems:
        if system not in DEFAULT_MATRIX:
            raise ValueError(
                f"unknown system {system!r}; one of {sorted(DEFAULT_MATRIX)}"
            )
        for layout in (layouts if layouts is not None
                       else DEFAULT_MATRIX[system]):
            for seed in seeds:
                specs.append(
                    WorkloadSpec(system=system, layout=layout,
                                 seed=seed, **shape)
                )
        if layouts is None:
            for layout, initiators in SCALE_MATRIX.get(system, ()):
                for seed in seeds:
                    specs.append(
                        WorkloadSpec(system=system, layout=layout, seed=seed,
                                     initiators=initiators, **shape)
                    )
    return specs


def run_check_matrix(
    specs: Sequence[WorkloadSpec],
    runner: Optional[SweepRunner] = None,
    shrink: bool = True,
    reproducer_dir: Optional[str] = None,
) -> MatrixResult:
    """Check every spec (parallel + cached via ``runner``), then shrink
    and dump a reproducer for each failing cell."""
    import os

    runner = runner or SweepRunner(jobs=1)
    run_specs = [
        RunSpec.make(
            check_cell,
            label=(f"check:{spec.system}/{spec.layout}"
                   + (f"/x{spec.initiators}" if spec.initiators > 1 else "")),
            **spec.to_dict(),
        )
        for spec in specs
    ]
    reports = runner.map(run_specs)
    result = MatrixResult(cells=list(zip(specs, reports)))

    for index, (spec, report) in enumerate(result.failures):
        minimal = shrink_spec(spec) if shrink else spec
        result.reproducers.append(minimal)
        if reproducer_dir is not None:
            os.makedirs(reproducer_dir, exist_ok=True)
            path = os.path.join(
                reproducer_dir,
                f"repro-{minimal.system}-{minimal.layout}-"
                f"{minimal.seed}-{index}.json",
            )
            from repro.check.differential import check_workload

            dump_reproducer(path, check_workload(minimal))
            result.dumped.append(path)
    return result
