"""Rio sequencer: attribute creation and in-order completion (§4.1, §4.2).

The sequencer is the shim between the file system and the block layer.  It
controls the *start* and *end* of an ordered write request's lifetime —
everything in between runs out-of-order and asynchronously:

* **start** — submission order from the caller *is* the storage order: the
  sequencer stamps each request with an ordering attribute whose ``seq`` is
  the current group number, closing a group when the caller marks the final
  request (step ② of Figure 4);
* **end** — raw completions may arrive out of order; the sequencer releases
  them to the caller strictly in group order (step ⑨), so the file system
  only ever observes ordered states.

The sequencer also retains the bios of unreleased groups: they are the
replay source for target-crash recovery (§4.4.1 — "the initiator re-sends
W4 until a successful completion response is received").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.block.request import Bio
from repro.core.attributes import OrderingAttribute
from repro.core.scheduler import RioIoScheduler
from repro.hw.cpu import Core
from repro.nvmeof.costs import DEFAULT_COSTS, CpuCosts
from repro.sim.engine import Environment, Event

__all__ = ["GroupState", "StreamState", "RioSequencer"]


@dataclass
class GroupState:
    """One ordered group (all requests sharing a sequence number)."""

    seq: int
    bios: List[Bio] = field(default_factory=list)
    app_events: List[Event] = field(default_factory=list)
    closed: bool = False
    completed: int = 0

    @property
    def done(self) -> bool:
        return self.closed and self.completed >= len(self.bios)


@dataclass
class StreamState:
    """Per-stream ordering state (streams are independent, §4.5)."""

    stream_id: int
    next_seq: int = 1
    #: Unreleased groups, seq -> state (release removes entries).
    groups: Dict[int, GroupState] = field(default_factory=dict)
    #: Next group seq to release to the caller.
    release_ptr: int = 1
    #: Highest released seq (piggybacked as the PMR recycling ack).
    released_seq: int = 0


class RioSequencer:
    """Creates ordering attributes and enforces in-order completion."""

    def __init__(
        self,
        env: Environment,
        scheduler: RioIoScheduler,
        num_streams: int,
        costs: CpuCosts = DEFAULT_COSTS,
        stream_base: int = 0,
    ):
        if num_streams < 1:
            raise ValueError("need at least one stream")
        if stream_base < 0:
            raise ValueError("stream_base must be >= 0")
        self.env = env
        self.scheduler = scheduler
        self.costs = costs
        #: Global stream-id offset: with multiple initiator servers (§4.9)
        #: each initiator owns a disjoint stream-id range, so per-stream
        #: state on the shared targets never collides.
        self.stream_base = stream_base
        self.streams = [StreamState(i) for i in range(num_streams)]
        self.groups_released = 0

    @property
    def num_streams(self) -> int:
        return len(self.streams)

    # ------------------------------------------------------------------
    # Submission (§4.2 "Creation")
    # ------------------------------------------------------------------

    def submit(
        self,
        core: Core,
        bio: Bio,
        end_of_group: bool = True,
        flush: bool = False,
        kick: Optional[bool] = None,
    ):
        """Generator: submit one ordered write; returns the ordered
        completion event (fires only when all earlier groups completed).

        ``end_of_group`` marks the final request of a group (requests in a
        group may be freely reordered among themselves); ``flush`` embeds a
        FLUSH in the request for durability (§4.6).

        ``kick`` controls when the ORDER queue dispatches: by default the
        group boundary kicks, so a multi-request group is staged together
        and its consecutive members merge (Principle 3).  Callers batching
        several groups (Figure 12) pass ``kick=False`` for all but the last.
        """
        if bio.op != "write":
            raise ValueError("only writes participate in storage order")
        stream = self.streams[bio.stream_id]
        yield from core.run(self.costs.sequencer_per_bio)

        seq = stream.next_seq
        group = stream.groups.get(seq)
        if group is None:
            group = GroupState(seq)
            stream.groups[seq] = group
        if group.closed:
            raise RuntimeError(f"group {seq} already closed on stream {bio.stream_id}")

        if flush:
            bio.flags.flush = True
        bio.flags.ordered = True
        bio.flags.group_end = end_of_group
        attr = OrderingAttribute(
            stream_id=self.stream_base + bio.stream_id,
            start_seq=seq,
            end_seq=seq,
            boundary=end_of_group,
            ipu=bio.flags.ipu,
            flush=bio.flags.flush,
            lba=bio.lba,
            nblocks=bio.nblocks,
            group_index=len(group.bios),
        )
        bio.attr = attr
        group.bios.append(bio)
        if end_of_group:
            attr.num = len(group.bios)
            group.closed = True
            stream.next_seq += 1

        app_event = Event(self.env)
        app_event.bio = bio  # error/status visibility for callers
        group.app_events.append(app_event)
        raw = bio.make_completion(self.env)
        self.env.process(self._watch_completion(stream, group, raw))

        if kick is None:
            kick = end_of_group
        yield from self.scheduler.enqueue(core, bio, kick=kick)
        return app_event

    # ------------------------------------------------------------------
    # In-order completion (§4.1 step ⑨)
    # ------------------------------------------------------------------

    def _watch_completion(self, stream: StreamState, group: GroupState, raw: Event):
        yield raw
        group.completed += 1
        self._release(stream)

    def _release(self, stream: StreamState) -> None:
        while True:
            group = stream.groups.get(stream.release_ptr)
            if group is None or not group.done:
                return
            for event in group.app_events:
                if not event.triggered:
                    event.succeed(group.seq)
            stream.released_seq = group.seq
            self.env.trace("rio.seq", "release", stream=stream.stream_id,
                           seq=group.seq, requests=len(group.bios))
            del stream.groups[group.seq]
            stream.release_ptr += 1
            self.groups_released += 1

    def released_seq(self, stream_id: int) -> int:
        return self.streams[stream_id].released_seq

    # ------------------------------------------------------------------
    # Replay support (§4.4.1 target recovery)
    # ------------------------------------------------------------------

    def unreleased_groups(self, stream_id: int) -> List[GroupState]:
        """Groups not yet released, oldest first — the replay window."""
        stream = self.streams[stream_id]
        return [stream.groups[seq] for seq in sorted(stream.groups)]
