"""Rio crash recovery: per-server list rebuild, global merge, roll-back,
replay (§4.4, Figure 6, correctness argument §4.8).

The algorithm, exactly as the paper states it:

1. **Per-server lists** — each target's surviving PMR records are scanned
   and *validated*: on a PLP SSD an attribute is durable-valid iff its and
   all preceding attributes' (in per-server submission order) persist
   fields are 1; on a volatile-cache SSD an attribute is durable-valid iff
   a *later* flush-carrying attribute has persist = 1 (§4.3.2).
2. **Global merge** — the initiator merges per-server lists into one global
   list per stream.  A group is durably complete iff its boundary request
   is known (giving ``num``), all ``num`` member requests are durable, and
   every split request has *all* fragments durable (fragments are "merged
   back into the original request to validate the global order", §4.5).
   The surviving prefix of each stream is the longest run of durably
   complete groups starting at the oldest known group.
3. **Roll-back** (initiator recovery, out-of-place updates) — data blocks
   of covered requests *beyond* the prefix are erased; IPU-flagged blocks
   are never rolled back automatically but reported to the upper layer
   (§4.4.2).
4. **Replay** (target recovery) — with the initiator alive, unreleased
   groups are re-sent to the restarted target until complete; replay is
   idempotent (§4.4.1).

The rebuild logic is pure (no simulation state), so the property-based test
suite can drive it with synthetic crash states directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.attributes import ATTRIBUTE_SIZE, CoveredRequest, OrderingAttribute

__all__ = [
    "ServerList",
    "GlobalOrder",
    "RecoveryReport",
    "rebuild_server_list",
    "merge_global_order",
    "RioRecovery",
]


# ======================================================================
# Pure rebuild logic
# ======================================================================


@dataclass
class ServerList:
    """The validated (durable) per-server ordering list for one stream."""

    target_name: str
    stream_id: int
    #: All deduplicated records of this (server, stream), per-server order.
    records: List[OrderingAttribute] = field(default_factory=list)
    #: The durable-valid prefix of ``records``.
    valid: List[OrderingAttribute] = field(default_factory=list)


def _dedup_latest(records: Iterable[OrderingAttribute]) -> List[OrderingAttribute]:
    """Keep the newest record per identity (replays overwrite old slots)."""
    latest: Dict[Tuple, OrderingAttribute] = {}
    for record in records:
        key = (
            record.stream_id,
            record.start_seq,
            record.end_seq,
            record.group_index,
            record.split_index,
            record.lba,
        )
        old = latest.get(key)
        if old is None or record.log_pos > old.log_pos:
            latest[key] = record
    return list(latest.values())


def rebuild_server_list(
    target_name: str,
    stream_id: int,
    records: Iterable[OrderingAttribute],
    plp: bool,
    plp_by_nsid: Optional[Dict[int, bool]] = None,
) -> ServerList:
    """Validate one server's records for one stream (§4.3.2).

    Durability evidence is *per device*, not per server: a persist=1 flush
    attribute proves a drain of its own SSD's cache and nothing else, and
    a PLP persist bit covers only the device it completed on.  With
    ``plp_by_nsid`` (nsid -> device has PLP) each record is judged against
    its own namespace; a target mixing PLP and volatile-cache SSDs would
    otherwise let an Optane-side toggle validate flash records whose data
    is still sitting in the flash write cache — a hole inside the
    recovered prefix.  Without the map, ``plp`` applies to every record
    (the single-device and uniform-server cases, and the synthetic states
    of the property suite).
    """
    mine = [
        r
        for r in _dedup_latest(records)
        if r.stream_id == stream_id and r.target_name == target_name
    ]
    mine.sort(key=lambda r: (r.server_pos, r.log_pos))
    result = ServerList(target_name=target_name, stream_id=stream_id, records=mine)
    if plp_by_nsid is None:
        plp_by_nsid = {}
    # Volatile devices: valid up to (and including) the latest persist=1
    # flush attribute *of the same namespace* — a FLUSH drains exactly the
    # requests admitted to its own device before it.
    flush_limit: Dict[int, int] = {}
    for record in mine:
        if (
            not plp_by_nsid.get(record.nsid, plp)
            and record.flush
            and record.persist == 1
        ):
            flush_limit[record.nsid] = record.server_pos
    # PLP devices: persist fields contiguously 1 from the front of the
    # namespace's own record subsequence.
    plp_broken: Set[int] = set()
    for record in mine:
        if plp_by_nsid.get(record.nsid, plp):
            if record.persist != 1 or record.nsid in plp_broken:
                plp_broken.add(record.nsid)
                continue
            result.valid.append(record)
        elif record.server_pos <= flush_limit.get(record.nsid, -1):
            result.valid.append(record)
    return result


def _covered(record: OrderingAttribute) -> List[CoveredRequest]:
    if record.covered_ids:
        return list(record.covered_ids)
    return [
        CoveredRequest(
            seq=record.start_seq,
            group_index=record.group_index,
            lba=record.lba,
            nblocks=record.nblocks,
            boundary=record.boundary,
        )
    ]


@dataclass
class GlobalOrder:
    """The merged global ordering decision for one stream (§4.4.1)."""

    stream_id: int
    #: Longest run of durably complete groups from the oldest known group.
    prefix_seq: int = 0
    #: Oldest group seq any record mentions (prefix starts here).
    base_seq: int = 0
    #: Groups that are durably complete.
    complete_seqs: Set[int] = field(default_factory=set)
    #: Extents to erase during roll-back: (target, nsid, lba, nblocks).
    discard_extents: List[Tuple[str, int, int, int]] = field(default_factory=list)
    #: IPU extents beyond the prefix, reported to the upper layer (§4.4.2).
    ipu_extents: List[Tuple[str, int, int, int]] = field(default_factory=list)
    #: Groups mentioned by any record but not durably complete.
    incomplete_seqs: Set[int] = field(default_factory=set)


def merge_global_order(
    server_lists: List[ServerList],
    stream_id: int,
) -> GlobalOrder:
    """Merge per-server lists into the stream's global order (§4.4.1)."""
    order = GlobalOrder(stream_id=stream_id)

    durable_ids: Set[Tuple[int, int]] = set()
    fragment_seen: Dict[Tuple[int, int], Set[int]] = {}
    fragment_total: Dict[Tuple[int, int], int] = {}
    num_of: Dict[int, int] = {}
    all_seqs: Set[int] = set()

    for server in server_lists:
        if server.stream_id != stream_id:
            continue
        valid_set = {id(r) for r in server.valid}
        for record in server.records:
            for covered in _covered(record):
                all_seqs.add(covered.seq)
                if covered.boundary:
                    num_of[covered.seq] = covered.group_index + 1
            if id(record) not in valid_set:
                continue
            # Durable record: credit its covered requests.
            for covered in _covered(record):
                rid = covered.request_id
                if record.split:
                    fragment_seen.setdefault(rid, set()).add(record.split_index)
                    fragment_total[rid] = record.split_total
                else:
                    durable_ids.add(rid)

    # Split requests are durable only when every fragment is (§4.5).
    for rid, seen in fragment_seen.items():
        if rid not in durable_ids and len(seen) == fragment_total.get(rid, -1):
            durable_ids.add(rid)

    # Group completeness: boundary known and all members durable.
    for seq in all_seqs:
        num = num_of.get(seq)
        if num is not None and all(
            (seq, index) in durable_ids for index in range(num)
        ):
            order.complete_seqs.add(seq)
        else:
            order.incomplete_seqs.add(seq)

    if not all_seqs:
        return order

    # The surviving prefix: contiguous complete groups from the oldest.
    order.base_seq = min(all_seqs)
    prefix = order.base_seq - 1
    seq = order.base_seq
    while seq in order.complete_seqs:
        prefix = seq
        seq += 1
    order.prefix_seq = prefix

    # Roll-back set: covered extents beyond the prefix (IPU excepted).
    for server in server_lists:
        if server.stream_id != stream_id:
            continue
        for record in server.records:
            for covered in _covered(record):
                if covered.seq <= prefix:
                    continue
                extent = (
                    record.target_name,
                    record.nsid,
                    covered.lba if not record.split else record.lba,
                    covered.nblocks if not record.split else record.nblocks,
                )
                if record.ipu:
                    if extent not in order.ipu_extents:
                        order.ipu_extents.append(extent)
                elif extent not in order.discard_extents:
                    order.discard_extents.append(extent)
    return order


# ======================================================================
# Orchestration over the simulated cluster
# ======================================================================


@dataclass
class RecoveryReport:
    """What a recovery pass did, and how long each phase took (§6.5)."""

    mode: str  # "initiator" | "target"
    rebuild_seconds: float = 0.0
    data_recovery_seconds: float = 0.0
    records_scanned: int = 0
    prefixes: Dict[int, int] = field(default_factory=dict)
    discarded_extents: int = 0
    replayed_requests: int = 0
    ipu_extents: List[Tuple[str, int, int, int]] = field(default_factory=list)
    global_orders: Dict[int, GlobalOrder] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.rebuild_seconds + self.data_recovery_seconds


class RioRecovery:
    """Drives recovery over a :class:`~repro.systems.rio.RioStack`."""

    def __init__(self, stack):
        self.stack = stack

    # -- shared phases ------------------------------------------------------

    def _collect_records(self, core):
        """Generator: fetch surviving PMR records from every target."""
        replies = []
        for target in self.stack.cluster.targets:
            endpoint = self._endpoint_for(target)
            waiter = yield from self.stack.driver.rpc(
                core, endpoint, "rio_read_attrs", None
            )
            replies.append(waiter)
        records: List[OrderingAttribute] = []
        for waiter in replies:
            result = yield waiter
            records.extend(result)
        return records

    def _endpoint_for(self, target):
        for ns in self.stack.cluster.namespaces:
            if ns.target is target:
                return ns.endpoints[0]
        raise ValueError(f"no namespace on {target.name}")

    def _rebuild(self, records) -> Dict[int, GlobalOrder]:
        plp_of = {
            target.name: all(ssd.profile.plp for ssd in target.ssds)
            for target in self.stack.cluster.targets
        }
        plp_by_nsid_of = {
            target.name: {
                nsid: ssd.profile.plp for nsid, ssd in enumerate(target.ssds)
            }
            for target in self.stack.cluster.targets
        }
        stream_ids = sorted({r.stream_id for r in records})
        orders: Dict[int, GlobalOrder] = {}
        for stream_id in stream_ids:
            server_lists = [
                rebuild_server_list(
                    target.name,
                    stream_id,
                    records,
                    plp_of[target.name],
                    plp_by_nsid=plp_by_nsid_of[target.name],
                )
                for target in self.stack.cluster.targets
            ]
            orders[stream_id] = merge_global_order(server_lists, stream_id)
        return orders

    # -- initiator recovery (§4.4.1, roll-back) -----------------------------

    def run_initiator_recovery(self, core):
        """Generator: full roll-back recovery; returns a RecoveryReport.

        Used after a whole-system power outage: surviving PMR records are
        the only source of truth, and every durable block beyond the global
        prefix is erased (out-of-place updates; IPU extents are reported
        instead, §4.4.2).
        """
        report = RecoveryReport(mode="initiator")
        env = self.stack.env
        started = env.now
        records = yield from self._collect_records(core)
        report.records_scanned = len(records)
        # CPU cost of merging the per-server lists at the initiator.
        yield from core.run(0.05e-6 * max(1, len(records)))
        orders = self._rebuild(records)
        report.global_orders = orders
        report.prefixes = {sid: o.prefix_seq for sid, o in orders.items()}
        report.rebuild_seconds = env.now - started

        data_started = env.now
        discards: Dict[str, List[Tuple[int, int, int]]] = {}
        for order in orders.values():
            report.ipu_extents.extend(order.ipu_extents)
            for target_name, nsid, lba, nblocks in order.discard_extents:
                discards.setdefault(target_name, []).append((nsid, lba, nblocks))
        waiters = []
        for target in self.stack.cluster.targets:
            extents = discards.get(target.name)
            if not extents:
                continue
            report.discarded_extents += len(extents)
            endpoint = self._endpoint_for(target)
            waiter = yield from self.stack.driver.rpc(
                core,
                endpoint,
                "rio_discard",
                extents,
                nbytes=max(16, 16 * len(extents)),
            )
            waiters.append(waiter)
        for waiter in waiters:
            yield waiter
        report.data_recovery_seconds = env.now - data_started
        return report

    # -- target recovery (§4.4.1, replay) ------------------------------------

    def run_target_recovery(self, core, failed_target):
        """Generator: replay-based recovery after one target restarts.

        The initiator is alive: unreleased groups retained by the sequencer
        are re-dispatched (idempotently) until every group completes.
        """
        report = RecoveryReport(mode="target")
        env = self.stack.env
        started = env.now
        records = yield from self._collect_records(core)
        report.records_scanned = len(records)
        yield from core.run(0.05e-6 * max(1, len(records)))
        orders = self._rebuild(records)
        report.global_orders = orders
        report.prefixes = {sid: o.prefix_seq for sid, o in orders.items()}
        report.rebuild_seconds = env.now - started

        data_started = env.now
        # Reset per-server dispatch positions for the restarted target: its
        # in-order gate restarted from zero.
        self.stack.scheduler_reset_target(failed_target)
        replay_events = []
        for stream_id in range(self.stack.sequencer.num_streams):
            for group in self.stack.sequencer.unreleased_groups(stream_id):
                for bio in group.bios:
                    if bio.completion is not None and bio.completion.triggered:
                        continue  # already completed; nothing to re-send
                    report.replayed_requests += 1
                    yield from self.stack.scheduler.enqueue(core, bio)
                    replay_events.append(bio.completion)
        for event in replay_events:
            yield event
        report.data_recovery_seconds = env.now - data_started
        return report
