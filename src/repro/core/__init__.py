"""Rio: the paper's contribution — an order-preserving I/O pipeline.

The pieces (paper §4):

* :mod:`repro.core.attributes` — the ordering attribute: each ordered write
  request's identity (seq/prev/num/persist/LBA/split/ipu), carried through
  the whole stack and persisted in PMR (§4.2, Figure 5).
* :mod:`repro.core.sequencer` — the Rio sequencer shim between file system
  and block layer: creates attributes from submission order and completes
  requests back to the caller *in order* (§4.1 steps ②/⑨).
* :mod:`repro.core.scheduler` — the Rio I/O scheduler: per-stream ORDER
  queues, stream→NIC-queue affinity, request merging and splitting
  (§4.5, Figures 7–8).
* :mod:`repro.core.target` — the Rio target policy: in-order submission to
  the SSD and persistent ordering attributes in the PMR circular log
  (§4.3, Figure 4 steps ⑤⑥⑦).
* :mod:`repro.core.recovery` — crash recovery: rebuild per-server lists,
  merge into the global list, roll back or replay (§4.4, Figure 6).
* :mod:`repro.core.api` — the programming model: ``rio_setup``,
  ``rio_submit``, ``rio_wait`` (§4.6).
"""

from repro.core.api import RioDevice
from repro.core.attributes import OrderingAttribute
from repro.core.recovery import RecoveryReport, RioRecovery
from repro.core.scheduler import RioIoScheduler
from repro.core.sequencer import RioSequencer
from repro.core.target import AttributeLog, RioTargetPolicy

__all__ = [
    "OrderingAttribute",
    "RioSequencer",
    "RioIoScheduler",
    "RioTargetPolicy",
    "AttributeLog",
    "RioRecovery",
    "RecoveryReport",
    "RioDevice",
]
