"""Rio target-side logic: in-order submission and persistent attributes.

Implements §4.3 (steps ⑤⑥⑦ of Figure 4):

* **In-order submission** (§4.3.1) — ordered write requests are submitted
  to the SSD in per-server order, so the SSD's durability interface (FLUSH)
  keeps its meaning: a request that must not become durable before its
  predecessors is never submitted ahead of them.  The per-server order is
  carried by the attribute's dense ``server_pos``; with Rio's stream→QP
  affinity requests arrive already in order and the gate almost never
  blocks (Principle 2).
* **Persistent ordering attributes** (§4.3.2) — before a request reaches
  the SSD its attribute is appended to a circular log in PMR (persist = 0);
  when its data becomes durable the persist field is toggled to 1: at
  completion time on PLP SSDs, or at FLUSH completion on SSDs with a
  volatile cache (only the flush-carrying attribute is toggled).
  Space is recycled by advancing the head pointer over attributes whose
  groups the initiator has already released (the ``ack_seq`` piggyback).

The policy also answers the recovery RPCs (§4.4): shipping surviving PMR
records to the initiator and executing discard requests during roll-back.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.core.attributes import ATTRIBUTE_SIZE, OrderingAttribute
from repro.hw.pmr import PersistentMemoryRegion
from repro.hw.ssd import DiskIO
from repro.net.fabric import Message
from repro.nvmeof.command import NvmeCommand
from repro.nvmeof.target import TargetContext, TargetPolicy, TargetServer
from repro.sim.engine import Environment, Event

__all__ = ["AttributeLog", "RioTargetPolicy"]


class AttributeLog:
    """The PMR circular log of ordering attributes (§4.3.2).

    ``head`` and ``tail`` are *in-memory* pointers (lost on crash, as in the
    paper); liveness after a crash is re-derived by the recovery scan.
    Appends block when the log is full until recycling frees space — the
    invariant that unacknowledged attributes are never overwritten.
    """

    def __init__(self, env: Environment, pmr: PersistentMemoryRegion):
        self.env = env
        self.pmr = pmr
        self.capacity = pmr.size // ATTRIBUTE_SIZE
        self.head = 0  # oldest live position
        self.tail = 0  # next append position
        self._records: Dict[int, OrderingAttribute] = {}  # log_pos -> record
        self._space_waiters: List[Event] = []
        #: Highest released (acknowledged) seq per stream.
        self._acks: Dict[int, int] = {}

    @property
    def live_entries(self) -> int:
        return self.tail - self.head

    def offset_of(self, log_pos: int) -> int:
        return (log_pos % self.capacity) * ATTRIBUTE_SIZE

    def append(self, core, attr: OrderingAttribute):
        """Generator: persist a snapshot of ``attr``; returns its log_pos."""
        while self.tail - self.head >= self.capacity:
            waiter = Event(self.env)
            self._space_waiters.append(waiter)
            yield waiter
        log_pos = self.tail
        self.tail += 1
        record = replace(attr)
        record.log_pos = log_pos  # type: ignore[attr-defined]
        self._records[log_pos] = record
        yield from self.pmr.persist(
            core, self.offset_of(log_pos), ATTRIBUTE_SIZE, record
        )
        return log_pos

    def toggle_persist(self, core, log_pos: int, cpu_cost: float = 0.15e-6):
        """Generator: set the persist field of a logged attribute to 1.

        A posted MMIO store of one field — cheaper than the full append;
        a later dependent MMIO read fences it, so no read-back is needed.
        """
        record = self._records.get(log_pos)
        if record is None:
            return
        yield from core.run(cpu_cost)
        record.persist = 1
        self.pmr.persist_instant(
            self.offset_of(log_pos), ATTRIBUTE_SIZE, record
        )

    def acknowledge(self, stream_id: int, released_seq: int) -> None:
        """Record the initiator's release progress and recycle space."""
        if released_seq <= self._acks.get(stream_id, 0):
            return
        self._acks[stream_id] = released_seq
        self._advance_head()

    def _advance_head(self) -> None:
        advanced = False
        while self.head < self.tail:
            record = self._records.get(self.head)
            if record is None:
                self.head += 1
                advanced = True
                continue
            if record.end_seq <= self._acks.get(record.stream_id, 0):
                del self._records[self.head]
                self.head += 1
                advanced = True
            else:
                break
        if advanced:
            waiters, self._space_waiters = self._space_waiters, []
            for waiter in waiters:
                waiter.succeed()

    def reset(self) -> None:
        """Volatile state after a power cycle (PMR content survives)."""
        self.head = 0
        self.tail = 0
        self._records.clear()
        self._space_waiters.clear()
        self._acks.clear()


class RioTargetPolicy(TargetPolicy):
    """The Rio additions to the stock NVMe-oF target driver."""

    def __init__(self):
        self.target: Optional[TargetServer] = None
        self.log: Optional[AttributeLog] = None
        #: Per stream: next expected server_pos (the in-order gate).
        self._next_pos: Dict[int, int] = {}
        self._pos_waiters: Dict[Tuple[int, int], Event] = {}
        #: In-flight command -> log position (for the persist toggle).
        #: Keyed by object identity: NVMe CIDs are only unique per
        #: initiator connection, and a target may serve several (§4.9).
        self._log_pos_of: Dict[int, int] = {}
        #: Per stream: highest server_pos that has reached the gate.
        self._arrived: Dict[int, int] = {}
        #: Per stream: highest server_pos *admitted through* the gate (the
        #: duplicate-suppression high-water mark; claimed synchronously at
        #: admission, before the attribute append yields).
        self._admitted: Dict[int, int] = {}
        #: Retransmissions suppressed (idempotent-retry invariant).
        self.duplicates_suppressed = 0
        #: Requests that reached the gate before their predecessor arrived
        #: (true out-of-order deliveries — what Principle 2 minimizes).
        self.out_of_order_arrivals = 0
        #: Total virtual time spent blocked at the in-order gate.
        self.stall_time = 0.0

    def attach(self, target: TargetServer) -> None:
        self.target = target
        self.log = AttributeLog(target.env, target.pmr)
        obs = target.env.obs
        if obs is not None:
            m = obs.metrics
            m.register_gauge(f"rio.gate.{target.name}.duplicates_suppressed",
                             lambda: self.duplicates_suppressed)
            m.register_gauge(f"rio.gate.{target.name}.out_of_order_arrivals",
                             lambda: self.out_of_order_arrivals)
            m.register_gauge(f"rio.gate.{target.name}.stall_s",
                             lambda: self.stall_time)

    # ------------------------------------------------------------------
    # §4.3.1 in-order submission + §4.3.2 attribute persistence
    # ------------------------------------------------------------------

    @staticmethod
    def _attr_of(cmd: NvmeCommand) -> Optional[OrderingAttribute]:
        # The wire carries the attribute in the command's reserved fields
        # (Table 1); the simulator reads the full attribute object from the
        # originating request — informationally equivalent.
        request = cmd.context
        return getattr(request, "attr", None) if request is not None else None

    def _is_duplicate(self, ctx: TargetContext, attr) -> bool:
        """True (and flags ``ctx.duplicate``) if this (stream, seq) was
        already admitted through the gate or has a twin queued at it."""
        if (
            attr.server_pos <= self._admitted.get(attr.stream_id, -1)
            or (attr.stream_id, attr.server_pos) in self._pos_waiters
        ):
            ctx.duplicate = True
            self.duplicates_suppressed += 1
            ctx.env.trace("rio.gate", "duplicate", stream=attr.stream_id,
                          pos=attr.server_pos, seq=attr.start_seq,
                          cause="retransmission of admitted write")
            return True
        return False

    def before_submit(self, ctx: TargetContext, cmd: NvmeCommand):
        attr = self._attr_of(cmd)
        if attr is None:
            return
        # Process the recycling ack first: even if this command stalls at
        # the gate, the log head can advance (avoids append-space waits
        # feeding back into the gate).
        self.log.acknowledge(attr.stream_id, attr.ack_seq)
        # Duplicate suppression (idempotent retry): a retransmission of a
        # (stream, seq) already admitted through the gate — or currently
        # queued at it — must never reach the SSD a second time, or
        # in-order submission and the gate's dense-position accounting
        # would both break.
        if self._is_duplicate(ctx, attr):
            return
        # In-order submission gate: wait for all predecessors of this
        # stream on this server to have been submitted to the SSD.
        arrived = self._arrived.get(attr.stream_id, -1)
        if attr.server_pos > arrived + 1:
            self.out_of_order_arrivals += 1
        self._arrived[attr.stream_id] = max(arrived, attr.server_pos)
        expected = self._next_pos.get(attr.stream_id, 0)
        if attr.server_pos > expected:
            ctx.env.trace("rio.gate", "stall", stream=attr.stream_id,
                          pos=attr.server_pos, expected=expected)
            waiter = Event(ctx.env)
            self._pos_waiters[(attr.stream_id, attr.server_pos)] = waiter
            stall_started = ctx.env.now
            yield waiter
            self.stall_time += ctx.env.now - stall_started
            # A twin copy may have been admitted while this one waited
            # (waiter popped by the predecessor, twin raced past): recheck.
            if self._is_duplicate(ctx, attr):
                return
        # Claim the position before the append yields, so a twin arriving
        # mid-append is flagged as a duplicate rather than double-applied.
        self._admitted[attr.stream_id] = attr.server_pos
        # Persist the ordering attribute (persist = 0) before the data.
        log_pos = yield from self.log.append(ctx.core, attr)
        ctx.env.trace("rio.log", "append", stream=attr.stream_id,
                      seq=attr.start_seq, pos=log_pos)
        self._log_pos_of[id(cmd)] = log_pos
        # Open the gate for the successor.
        self._next_pos[attr.stream_id] = attr.server_pos + 1
        successor = self._pos_waiters.pop(
            (attr.stream_id, attr.server_pos + 1), None
        )
        if successor is not None and not successor.triggered:
            successor.succeed()

    def after_completion(self, ctx: TargetContext, cmd: NvmeCommand):
        attr = self._attr_of(cmd)
        if attr is None:
            return
        log_pos = self._log_pos_of.pop(id(cmd), None)
        if log_pos is None:
            return
        ssd = self.target.ssds[cmd.nsid]
        if ssd.profile.plp:
            # Data durable at completion: toggle persist (step ⑦).
            yield from self.log.toggle_persist(ctx.completion_core, log_pos)
        elif cmd.flush_after:
            # Volatile cache: only the flush-carrying attribute is toggled,
            # covering all preceding requests on this server (§4.3.2).
            yield from self.log.toggle_persist(ctx.completion_core, log_pos)

    # ------------------------------------------------------------------
    # Recovery RPCs (§4.4)
    # ------------------------------------------------------------------

    def on_control(self, ctx: TargetContext, message: Message):
        if message.kind == "rio_ack":
            # Fire-and-forget release notification from the sequencer:
            # recycle log space (§4.3.2 head-pointer movement).  Usually
            # redundant with the per-command piggyback, but essential for
            # liveness when every command was dispatched before any group
            # was released (deep floods with a small PMR).
            for stream_id, released_seq in message.payload:
                self.log.acknowledge(stream_id, released_seq)
            return
            yield  # pragma: no cover - generator form
        rpc_id, payload = message.payload
        if message.kind == "rio_read_attrs":
            records = [
                record
                for record in self.target.pmr.records().values()
                if isinstance(record, OrderingAttribute)
            ]
            # Reading PMR + shipping the attributes costs CPU and wire time.
            yield from ctx.core.run(0.05e-6 * max(1, len(records)))
            ctx.endpoint.post_send(
                Message(
                    kind="rpc_resp",
                    payload=(rpc_id, records),
                    nbytes=max(ATTRIBUTE_SIZE, ATTRIBUTE_SIZE * len(records)),
                )
            )
        elif message.kind == "rio_flush":
            # fsync fan-out (§4.6 durability): on a volume spanning several
            # devices the FLUSH embedded in the final request drains only
            # the device(s) that request landed on.  The initiator fans an
            # explicit per-device flush out to every *volatile* member once
            # the group is released; the drain covers everything admitted
            # to this device for groups <= up_to_seq, so the newest covered
            # PMR record of this (stream, device) becomes valid flush
            # evidence for the recovery scan.
            stream_id, nsid, up_to_seq = payload
            ssd = self.target.ssds[nsid]
            yield from ctx.core.run(0.2e-6)
            yield ssd.submit(DiskIO(op="flush"))
            best_offset = None
            best: Optional[OrderingAttribute] = None
            for offset, record in self.target.pmr.records().items():
                if (
                    isinstance(record, OrderingAttribute)
                    and record.stream_id == stream_id
                    and record.nsid == nsid
                    and record.end_seq <= up_to_seq
                    and (
                        best is None
                        or (record.server_pos, record.log_pos)
                        > (best.server_pos, best.log_pos)
                    )
                ):
                    best_offset, best = offset, record
            if best is not None:
                yield from ctx.completion_core.run(0.15e-6)
                best.flush = True
                best.persist = 1
                self.target.pmr.persist_instant(
                    best_offset, ATTRIBUTE_SIZE, best
                )
            ctx.endpoint.post_send(
                Message(
                    kind="rpc_resp",
                    payload=(rpc_id, best is not None),
                    nbytes=16,
                )
            )
        elif message.kind == "rio_discard":
            extents = payload  # list of (nsid, lba, nblocks)
            for nsid, lba, nblocks in extents:
                ssd = self.target.ssds[nsid]
                # A deallocate/TRIM per extent: cheap but not free.
                yield from ctx.core.run(0.2e-6)
                yield ctx.env.timeout(2e-6)
                ssd.discard(lba, nblocks)
            ctx.endpoint.post_send(
                Message(kind="rpc_resp", payload=(rpc_id, len(extents)), nbytes=16)
            )
        elif message.kind == "rio_clear_log":
            self.target.pmr.clear()
            self.log.reset()
            self._next_pos.clear()
            self._pos_waiters.clear()
            self._arrived.clear()
            self._admitted.clear()
            ctx.endpoint.post_send(
                Message(kind="rpc_resp", payload=(rpc_id, True), nbytes=16)
            )

    def on_restart(self) -> None:
        self.log.reset()
        self._next_pos.clear()
        self._pos_waiters.clear()
        self._log_pos_of.clear()
        self._arrived.clear()
        self._admitted.clear()
