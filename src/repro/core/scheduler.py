"""Rio I/O scheduler: ORDER queues, stream affinity, merging, splitting.

Implements §4.5 and Figures 7–8:

* **Principle 1** — ordered requests go through dedicated per-stream
  *ORDER queues*, separate from orderless traffic.  Each stream has a pump
  process (running on the stream's home core) that drains its queue; while
  the pump is busy dispatching, newly submitted requests accumulate, which
  is exactly the natural batching that makes merging possible.
* **Principle 2** — every request of a stream is dispatched on the *same*
  NIC queue pair (``qp_index = stream_id``), inheriting RC in-order
  delivery so the target's in-order submission almost never stalls.  The
  ``qp_affinity`` switch exists for the ablation benchmark.
* **Principle 3** — merging may *enhance* but never weaken ordering:
  requests merge only when they are from one stream, seq-continuous and
  LBA-consecutive; the merged request carries one compacted attribute and
  recovers atomically.  Split fragments are never merged and vice versa.

Stream stealing (Figure 7(b)) works by construction: any core may enqueue
into any stream, but dispatch order and QP selection follow the *stream*,
not the submitting core.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.block.mq import BlockLayer, observe_merge
from repro.block.request import Bio, BlockRequest
from repro.core.attributes import CoveredRequest, OrderingAttribute
from repro.hw.cpu import CpuSet
from repro.nvmeof.costs import DEFAULT_COSTS, CpuCosts
from repro.sim.engine import Environment, Event

from collections import deque

__all__ = ["RioIoScheduler"]


class RioIoScheduler:
    """Per-stream ORDER queues feeding the driver through the block layer."""

    def __init__(
        self,
        env: Environment,
        block_layer: BlockLayer,
        cpus: CpuSet,
        num_streams: int,
        costs: CpuCosts = DEFAULT_COSTS,
        merging_enabled: bool = True,
        qp_affinity: bool = True,
    ):
        if num_streams < 1:
            raise ValueError("need at least one stream")
        self.env = env
        self.block_layer = block_layer
        self.cpus = cpus
        self.costs = costs
        self.merging_enabled = merging_enabled
        self.qp_affinity = qp_affinity
        self._queues: List[deque] = [deque() for _ in range(num_streams)]
        self._kicks: List[Event] = [Event(env) for _ in range(num_streams)]
        #: Per (stream, namespace): last dispatched group seq and its prev.
        self._last_group: Dict[Tuple, Tuple[int, int]] = {}
        #: Per (stream, namespace): dense dispatch position counter.
        self._server_pos: Dict[Tuple, int] = {}
        #: Released-seq provider installed by the sequencer (ack piggyback).
        self.released_seq_of = lambda stream_id: 0
        self.requests_merged = 0
        self.requests_dispatched = 0
        obs = env.obs
        if obs is not None:
            obs.metrics.register_gauge(
                "rio.order_queue_depth",
                lambda: sum(len(queue) for queue in self._queues),
            )
            obs.metrics.register_gauge(
                "rio.requests_merged", lambda: self.requests_merged
            )
            obs.metrics.register_gauge(
                "rio.requests_dispatched", lambda: self.requests_dispatched
            )
        for stream_id in range(num_streams):
            env.process(self._pump(stream_id))

    @property
    def num_streams(self) -> int:
        return len(self._queues)

    # ------------------------------------------------------------------
    # Enqueue (called by the sequencer, on the submitting core)
    # ------------------------------------------------------------------

    def enqueue(self, core, bio: Bio, kick: bool = True):
        """Generator: split the bio and stage fragments in its ORDER queue.

        With ``kick=False`` the fragments are *staged only* (like bios in a
        blk-mq plug): dispatch happens on the next kick, letting callers
        batch a whole group/transaction so consecutive requests merge.
        """
        yield from core.run(self.costs.block_layer_per_bio)
        bio.submitted_at = self.env.now
        bio.make_completion(self.env)
        self.block_layer.open_bio_span(bio)
        fragments = self.block_layer.split_bio(bio)
        bio._pending_fragments = len(fragments)  # type: ignore[attr-defined]
        if len(fragments) > 1:
            # Divided request: per-fragment attributes with the split flag,
            # rejoined during recovery (§4.5 "Request splitting").
            total = len(fragments)
            for index, (ns, request) in enumerate(fragments):
                request.attr = bio.attr.clone_fragment(
                    index, total, request.lba, request.nblocks
                )
        else:
            ns, request = fragments[0]
            request.attr = replace(
                bio.attr, lba=request.lba, nblocks=request.nblocks
            )
        stream_id = bio.stream_id % len(self._queues)
        queue = self._queues[stream_id]
        for ns, request in fragments:
            queue.append((ns, request))
        if kick:
            self.kick(stream_id)

    def kick(self, stream_id: int) -> None:
        """Wake the stream's pump (the blk_finish_plug moment)."""
        event = self._kicks[stream_id % len(self._kicks)]
        if not event.triggered:
            event.succeed()

    # ------------------------------------------------------------------
    # Pump: drain, merge, dispatch (per stream)
    # ------------------------------------------------------------------

    def _pump(self, stream_id: int):
        queue = self._queues[stream_id]
        core = self.cpus.pick(stream_id)
        while True:
            if not queue:
                self._kicks[stream_id] = Event(self.env)
                yield self._kicks[stream_id]
                continue
            batch = list(queue)
            queue.clear()
            if self.merging_enabled and len(batch) > 1:
                yield from core.run(self.costs.merge_per_bio * len(batch))
                batch = self._merge_batch(batch)
            for ns, request in batch:
                self._assign_dispatch_fields(stream_id, ns, request)
                yield from self.block_layer.dispatch(core, ns, request)
                self.requests_dispatched += 1

    # ------------------------------------------------------------------
    # Merging (Principle 3, Figure 8(a))
    # ------------------------------------------------------------------

    def can_merge(self, ns_a, req_a: BlockRequest, ns_b, req_b: BlockRequest) -> bool:
        """The three requirements of §4.5 plus hardware/atomicity limits."""
        attr_a: Optional[OrderingAttribute] = req_a.attr
        attr_b: Optional[OrderingAttribute] = req_b.attr
        if attr_a is None or attr_b is None:
            return False
        max_blocks = ns_a.target.ssds[ns_a.nsid].profile.max_transfer // 4096
        return (
            ns_a is ns_b  # same device (implied by LBA-consecutive)
            and req_a.op == req_b.op == "write"
            and attr_a.stream_id == attr_b.stream_id  # requirement 1
            and attr_b.start_seq in (attr_a.end_seq, attr_a.end_seq + 1)  # req. 2
            and req_a.end_lba == req_b.lba  # requirement 3
            and not attr_a.split
            and not attr_b.split  # merged and split are exclusive
            and not req_a.flush  # a FLUSH barrier must stay last
            and not req_a.fua
            and not req_b.fua
            and attr_a.ipu == attr_b.ipu
            and req_a.nblocks + req_b.nblocks <= max_blocks
        )

    def _merge_batch(self, batch: List[Tuple[object, BlockRequest]]):
        merged: List[Tuple[object, BlockRequest]] = []
        for ns, request in batch:
            if merged:
                last_ns, last_req = merged[-1]
                if self.can_merge(last_ns, last_req, ns, request):
                    self._absorb(last_req, request)
                    self.requests_merged += 1
                    self.env.trace("rio.sched", "merge",
                                   stream=last_req.attr.stream_id,
                                   into_seq=last_req.attr.start_seq,
                                   end_seq=last_req.attr.end_seq)
                    continue
            self._ensure_covered_ids(request)
            merged.append((ns, request))
        return merged

    @staticmethod
    def _ensure_covered_ids(request: BlockRequest) -> None:
        attr: OrderingAttribute = request.attr
        if attr.covered_ids is None:
            attr.covered_ids = [
                CoveredRequest(
                    seq=attr.start_seq,
                    group_index=attr.group_index,
                    lba=attr.lba,
                    nblocks=attr.nblocks,
                    boundary=attr.boundary,
                )
            ]

    def _absorb(self, into: BlockRequest, request: BlockRequest) -> None:
        """Compact two requests and their attributes into one (Figure 8(a))."""
        a: OrderingAttribute = into.attr
        b: OrderingAttribute = request.attr
        self._ensure_covered_ids(into)
        a.covered_ids.append(
            CoveredRequest(
                seq=b.start_seq,
                group_index=b.group_index,
                lba=b.lba,
                nblocks=b.nblocks,
                boundary=b.boundary,
            )
        )
        a.end_seq = max(a.end_seq, b.end_seq)
        a.covered += b.covered
        a.merged = True
        a.boundary = b.boundary  # the later request's boundary wins
        a.num = b.num
        a.flush = a.flush or b.flush
        a.nblocks += b.nblocks
        into.nblocks += request.nblocks
        into.bios.extend(request.bios)
        into.flush = into.flush or request.flush
        if into.payload is not None and request.payload is not None:
            into.payload = into.payload + request.payload
        elif request.payload is not None:
            into.payload = (
                [None] * (into.nblocks - request.nblocks) + request.payload
            )
        obs = self.env.obs
        if obs is not None:
            observe_merge(obs, into, request)

    # ------------------------------------------------------------------
    # Dispatch bookkeeping (per-server order, QP affinity, ack piggyback)
    # ------------------------------------------------------------------

    def _assign_dispatch_fields(self, stream_id: int, ns, request: BlockRequest):
        attr: OrderingAttribute = request.attr
        # Per-server order (§4.3.1): one chain per (stream, target server),
        # spanning all namespaces on that server.
        key = (stream_id, ns.target)
        last_seq, last_prev = self._last_group.get(key, (0, 0))
        if attr.start_seq > last_seq:
            attr.prev = last_seq
        else:
            # Another request of the same group already went to this server.
            attr.prev = last_prev
        self._last_group[key] = (max(last_seq, attr.end_seq), attr.prev)
        pos = self._server_pos.get(key, 0)
        attr.server_pos = pos
        self._server_pos[key] = pos + 1
        attr.ack_seq = self.released_seq_of(stream_id)
        attr.target_name = ns.target.name
        attr.nsid = ns.nsid
        request.flush = request.flush or attr.flush
        if self.qp_affinity:
            request.qp_index = stream_id
        else:
            # Ablation: spray across queues like orderless traffic does.
            request.qp_index = (attr.server_pos * 7 + stream_id) % max(
                1, ns.num_queues
            )

    def reset_target(self, target) -> None:
        """Forget per-server dispatch state for a restarted target (its
        in-order gate restarted from position zero)."""
        for key in list(self._server_pos):
            if key[1] is target:
                del self._server_pos[key]
        for key in list(self._last_group):
            if key[1] is target:
                del self._last_group[key]
