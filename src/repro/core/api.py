"""Rio programming model: the ordered block device (§4.6).

:class:`RioDevice` packages the sequencer, the Rio I/O scheduler and the
target-side policy into the abstraction the paper exposes to file systems
and applications:

* ``RioDevice(cluster, num_streams=...)`` — the ``rio_setup`` call:
  configures the streams and associates the networked storage devices
  (a sole SSD, or a logical volume) with them;
* :meth:`RioDevice.submit` — ``rio_submit``: dispatch an ordered write on a
  stream, with a flag delimiting the end of its group;
* :meth:`RioDevice.wait` — ``rio_wait``: wait for a submitted request's
  ordered completion (embed ``flush=True`` in the final request for
  durability);
* :meth:`RioDevice.recovery` — the crash-recovery entry points of §4.4.

Callers push many asynchronous ordered requests through ``submit`` and use
``wait`` only where durability matters — that is the whole performance
story of the paper.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.block.mq import BlockLayer
from repro.block.request import Bio, WriteFlags
from repro.block.volume import LogicalVolume
from repro.cluster import Cluster
from repro.core.recovery import RioRecovery
from repro.core.scheduler import RioIoScheduler
from repro.core.sequencer import RioSequencer
from repro.core.target import RioTargetPolicy
from repro.hw.cpu import Core
from repro.sim.engine import Event

__all__ = ["RioDevice"]


class RioDevice:
    """An order-preserving networked block device (the ``librio`` facade)."""

    name = "rio"

    def __init__(
        self,
        cluster: Cluster,
        volume: Optional[LogicalVolume] = None,
        num_streams: Optional[int] = None,
        merging_enabled: bool = True,
        qp_affinity: bool = True,
        stream_base: int = 0,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.driver = cluster.driver
        self.volume = volume if volume is not None else cluster.volume()
        num_streams = num_streams or len(cluster.initiator.cpus)
        self.block_layer = BlockLayer(
            self.env, cluster.driver, self.volume, costs=cluster.costs
        )
        self.scheduler = RioIoScheduler(
            self.env,
            self.block_layer,
            cluster.initiator.cpus,
            num_streams=num_streams,
            costs=cluster.costs,
            merging_enabled=merging_enabled,
            qp_affinity=qp_affinity,
        )
        self.sequencer = RioSequencer(
            self.env, self.scheduler, num_streams, costs=cluster.costs,
            stream_base=stream_base,
        )
        self.scheduler.released_seq_of = self.sequencer.released_seq
        #: Volatile-cache member devices needing an explicit fsync fan-out:
        #: on a multi-device volume the FLUSH embedded in a group's final
        #: request drains only the device(s) that request landed on, so a
        #: flush-group's durability needs one FLUSH per volatile member
        #: (single-device volumes are fully covered by the embedded FLUSH).
        self._fanout_namespaces = (
            [
                ns
                for ns in self.volume.namespaces
                if not ns.target.ssds[ns.nsid].profile.plp
            ]
            if len(self.volume.namespaces) > 1
            else []
        )
        self.policies: List[RioTargetPolicy] = []
        for target in self.volume.targets():
            if isinstance(target.policy, RioTargetPolicy):
                # Shared target (multi-initiator, §4.9): reuse the policy
                # so per-stream gate state is not wiped.
                self.policies.append(target.policy)
                continue
            policy = RioTargetPolicy()
            target.install_policy(policy)
            self.policies.append(policy)
        self.env.process(self._release_acker())

    def _release_acker(self):
        """Periodically notify targets of release progress (§4.3.2).

        Recycling acks normally piggyback on later commands' reserved
        fields; this lightweight path guarantees liveness when no later
        command is coming (deep floods against a small PMR log, idle
        tails).  One tiny SEND per target per interval, only when the
        release pointer moved.
        """
        from repro.net.fabric import Message

        interval = 50e-6
        last_sent: dict = {}
        endpoints = []
        for target in self.volume.targets():
            for ns in self.volume.namespaces:
                if ns.target is target:
                    endpoints.append(ns.endpoints[0])
                    break
        while True:
            yield self.env.timeout(interval)
            acks = []
            for local in range(self.sequencer.num_streams):
                released = self.sequencer.released_seq(local)
                if released > last_sent.get(local, 0):
                    last_sent[local] = released
                    acks.append(
                        (self.sequencer.stream_base + local, released)
                    )
            if not acks:
                continue
            for endpoint in endpoints:
                endpoint.post_send(
                    Message(kind="rio_ack", payload=list(acks),
                            nbytes=max(16, 8 * len(acks)))
                )

    @property
    def num_streams(self) -> int:
        return self.sequencer.num_streams

    # ------------------------------------------------------------------
    # rio_submit / rio_wait
    # ------------------------------------------------------------------

    def submit(
        self,
        core: Core,
        bio: Bio,
        end_of_group: bool = True,
        flush: bool = False,
        kick: Optional[bool] = None,
    ):
        """Generator (``rio_submit``): submit one ordered write request.

        Returns the ordered completion event.  ``end_of_group`` delimits
        the group; ``flush`` embeds a FLUSH for durability.  The submission
        order *is* the storage order of the bio's stream.

        The returned event carries ``event.bio``; after it fires,
        ``event.bio.status`` is nonzero if the write was completed in
        error (e.g. ``STATUS_TIMEOUT`` after the driver's retry budget
        was exhausted under fault injection).
        """
        release = yield from self.sequencer.submit(
            core, bio, end_of_group, flush, kick
        )
        if flush and self._fanout_namespaces:
            # Durability of a flush group on a multi-device volume: gate
            # the caller-visible completion behind per-device flushes of
            # every volatile member (see _fsync_fanout).
            gate = Event(self.env)
            gate.bio = bio
            self.env.process(
                self._fsync_fanout(core, bio.stream_id, release, gate)
            )
            return gate
        return release

    def _fsync_fanout(self, core, stream_local: int, release, gate) -> None:
        """Flush every volatile member device once the group is released.

        The ordered release guarantees all requests of groups <= the
        released seq have *completed* (so their data reached each device's
        cache); the explicit per-device FLUSH then makes them durable, and
        the target marks per-device flush evidence in its PMR log so the
        recovery scan can validate the group (per-nsid rule in
        :func:`repro.core.recovery.rebuild_server_list`).
        """
        if not release.triggered:
            yield release
        seq = release.value
        global_stream = self.sequencer.stream_base + stream_local
        waiters = []
        for ns in self._fanout_namespaces:
            try:
                waiter = yield from self.driver.rpc(
                    core,
                    ns.endpoints[0],
                    "rio_flush",
                    (global_stream, ns.nsid, seq),
                    nbytes=24,
                )
                waiters.append(waiter)
            except Exception:
                continue  # fault plane: a dead link must not wedge fsync
        for waiter in waiters:
            try:
                yield waiter
            except Exception:
                continue
        if not gate.triggered:
            gate.succeed(seq)

    def write(
        self,
        core: Core,
        stream_id: int,
        lba: int,
        nblocks: int,
        payload: Optional[List[Any]] = None,
        end_of_group: bool = True,
        flush: bool = False,
        ipu: bool = False,
        kick: Optional[bool] = None,
    ):
        """Generator: convenience wrapper building the bio inline."""
        bio = Bio(
            op="write",
            lba=lba,
            nblocks=nblocks,
            payload=payload,
            stream_id=stream_id,
            flags=WriteFlags(ipu=ipu),
        )
        return (yield from self.submit(core, bio, end_of_group, flush, kick))

    @staticmethod
    def wait(event):
        """Generator (``rio_wait``): wait for an ordered completion."""
        return (yield event)

    # ------------------------------------------------------------------
    # Recovery (§4.4)
    # ------------------------------------------------------------------

    def recovery(self) -> RioRecovery:
        return RioRecovery(self)

    def scheduler_reset_target(self, target) -> None:
        self.scheduler.reset_target(target)
