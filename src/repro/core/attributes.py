"""Ordering attributes (§4.2, Figure 5).

The ordering attribute is the logical identity of an ordered write request:
which *group* it belongs to (``seq`` — the global, per-stream order), which
group precedes it *on the same target server* (``prev``), how many requests
the group contains (``num``, recorded by the final request), and whether
its data blocks are durable (``persist``).  ``split``/``merged``/``ipu``
flags drive the scheduler and recovery special cases.

Attributes are 32 bytes on the wire/PMR (§6.1 quotes 0.6 µs to persist one
32 B attribute); :meth:`OrderingAttribute.to_rio_fields` maps an attribute
onto the reserved NVMe-oF command fields of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.nvmeof.command import (
    FLAG_BOUNDARY,
    FLAG_IPU,
    FLAG_MERGED,
    FLAG_SPLIT,
    RIO_OP_SUBMIT,
    RioFields,
)

__all__ = ["OrderingAttribute", "CoveredRequest", "ATTRIBUTE_SIZE"]

#: On-wire/PMR size of one attribute (bytes).
ATTRIBUTE_SIZE = 32


@dataclass(frozen=True)
class CoveredRequest:
    """Identity of one original ordered write covered by an attribute."""

    seq: int
    group_index: int
    lba: int
    nblocks: int
    boundary: bool

    @property
    def request_id(self):
        return (self.seq, self.group_index)


@dataclass
class OrderingAttribute:
    """Identity and ordering state of one ordered write request."""

    stream_id: int
    #: Global (per-stream) order: first group covered by this request.
    start_seq: int
    #: Last group covered (== start_seq unless merging spanned groups).
    end_seq: int
    #: seq of the preceding group on the same target server (0 = none).
    prev: int = 0
    #: Requests in the group; meaningful on the boundary (final) request.
    num: int = 0
    #: 0 while data blocks are in flight; 1 once they are durable (§4.3.2).
    persist: int = 0
    #: Logical block address range of the request's data.
    lba: int = 0
    nblocks: int = 0
    #: Final request of its group (the sequencer's group delimiter).
    boundary: bool = False
    #: Fragment of a divided request (§4.5): rejoined during recovery.
    split: bool = False
    #: Fragment index / total when split is set.
    split_index: int = 0
    split_total: int = 0
    #: Covers several merged requests — an atomic unit during recovery.
    merged: bool = False
    #: How many original ordered write requests this attribute covers.
    covered: int = 1
    #: Position of the request within its group (distinct requests of one
    #: group share seq; this index tells them apart during recovery).
    group_index: int = 0
    #: For merged attributes: the :class:`CoveredRequest` identities covered.
    #: In the real 32 B encoding this is reconstructible from the seq range,
    #: the LBA range and the per-group num fields; the simulator carries it
    #: explicitly for precise roll-back.
    covered_ids: Optional[list] = None
    #: Namespace (SSD) index on the target server, assigned at dispatch.
    nsid: int = 0
    #: Absolute position in the PMR circular log (assigned by the target).
    log_pos: int = -1
    #: In-place update: recovery must not roll these blocks back (§4.4.2).
    ipu: bool = False
    #: Embeds a FLUSH: its persist toggling covers all preceding requests
    #: on the same server (non-PLP rule of §4.3.2).
    flush: bool = False
    #: Per-(stream, server) dense dispatch position — the practical carrier
    #: of the per-server order used for in-order submission (§4.3.1).
    server_pos: int = -1
    #: Completed-up-to hint piggybacked for PMR log recycling (§4.3.2).
    ack_seq: int = 0
    #: Assigned at dispatch: which target server the request went to.
    target_name: str = ""

    def __post_init__(self):
        if self.start_seq < 1 or self.end_seq < self.start_seq:
            raise ValueError(
                f"bad seq range: [{self.start_seq}, {self.end_seq}]"
            )
        if self.prev < 0 or self.prev >= self.start_seq:
            raise ValueError(
                f"prev ({self.prev}) must precede start_seq ({self.start_seq})"
            )
        if self.split and self.merged:
            raise ValueError("a merged request can not be split, and vice versa")

    # ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        """Convenience for unmerged attributes."""
        return self.start_seq

    def covers(self, seq: int) -> bool:
        return self.start_seq <= seq <= self.end_seq

    def clone_fragment(self, index: int, total: int, lba: int, nblocks: int
                       ) -> "OrderingAttribute":
        """Attribute for one fragment of a divided request (§4.5)."""
        if total < 2:
            raise ValueError("splitting requires at least two fragments")
        return replace(
            self,
            split=True,
            split_index=index,
            split_total=total,
            lba=lba,
            nblocks=nblocks,
            merged=False,
        )

    # -- Table 1 projection -------------------------------------------------

    def to_rio_fields(self) -> RioFields:
        flags = 0
        if self.boundary:
            flags |= FLAG_BOUNDARY
        if self.split:
            flags |= FLAG_SPLIT
        if self.ipu:
            flags |= FLAG_IPU
        if self.merged:
            flags |= FLAG_MERGED
        return RioFields(
            rio_op=RIO_OP_SUBMIT,
            start_seq=self.start_seq & 0xFFFF_FFFF,
            end_seq=self.end_seq & 0xFFFF_FFFF,
            prev=self.prev & 0xFFFF_FFFF,
            num=self.num & 0xFFFF,
            stream_id=self.stream_id & 0xFFFF,
            flags=flags,
        )

    def __repr__(self) -> str:
        seq = (
            f"{self.start_seq}"
            if self.start_seq == self.end_seq
            else f"{self.start_seq}-{self.end_seq}"
        )
        marks = "".join(
            mark
            for mark, on in (
                ("B", self.boundary),
                ("S", self.split),
                ("M", self.merged),
                ("I", self.ipu),
                ("F", self.flush),
                ("P", bool(self.persist)),
            )
            if on
        )
        return (
            f"<Attr s{self.stream_id} seq={seq} prev={self.prev} "
            f"lba={self.lba}+{self.nblocks} {marks}>"
        )
