"""Multiple initiator servers sharing one target array (§4.9).

The paper leaves multi-initiator Rio as future work but sketches the
architecture: "Rio's architecture can be extended to support multiple
initiator servers, by extending Rio sequencer [...] to distributed
services", noting that sequencer-number allocation is not the bottleneck
(~100 M ops/s in memory vs ~1 M ops/s of remote storage).

This module implements that extension in its natural form: a
:class:`StreamDirectory` (the "distributed sequencer service", here a
trivially fast in-memory allocator per the paper's argument) hands each
initiator a *disjoint global stream-id range*.  Because streams are fully
independent (§4.5 — "across streams, there are no ordering restrictions"),
per-stream ordering state on the shared targets never couples two
initiators: each target's in-order submission gate, PMR attribute log and
recovery logic already key by global stream id.

Each initiator gets its own NIC, driver, connections and
:class:`~repro.core.api.RioDevice`; the target servers, SSDs and PMRs are
shared::

    env = Environment()
    mc = MultiInitiatorCluster(env, num_initiators=2,
                               target_ssds=((OPTANE_905P,),),
                               streams_per_initiator=4)
    node = mc.nodes[0]            # InitiatorNode: .rio, .driver, .cpus
    core = node.cpus.pick(0)
    ev = yield from node.rio.write(core, stream_id=0, lba=0, nblocks=1,
                                   end_of_group=True)

Stream ids passed to each node's :class:`~repro.core.api.RioDevice` are
*local* (0..streams_per_initiator-1); the node translates them to its
directory-assigned global range before they reach the wire, so two nodes
using "stream 0" never collide on the shared targets.

This is the single-initiator :class:`repro.cluster.Cluster` generalized;
see ``docs/architecture.md`` for the assembly diagram and
``tests/core/test_multi_initiator.py`` for the isolation/recovery
guarantees this module is held to.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.block.volume import LogicalVolume
from repro.core.api import RioDevice
from repro.hw.cpu import CpuSet
from repro.hw.nic import Nic
from repro.hw.pmr import PersistentMemoryRegion
from repro.hw.ssd import NvmeSsd, SsdProfile
from repro.net.fabric import Fabric
from repro.nvmeof.costs import DEFAULT_COSTS, CpuCosts
from repro.nvmeof.initiator import InitiatorDriver, InitiatorServer, RemoteNamespace
from repro.nvmeof.target import TargetServer
from repro.sim.engine import Environment
from repro.sim.rng import DeterministicRNG

__all__ = ["StreamDirectory", "InitiatorNode", "MultiInitiatorCluster"]


class StreamDirectory:
    """Allocates disjoint global stream-id ranges to initiators.

    The paper's "distributed sequencer" reduced to its essence: a
    monotonically advancing range allocator.  (Allocation happens at
    setup time, so its cost is irrelevant — exactly the paper's argument
    for why distributed concurrency control is not the slow part.)
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._next_base = 0
        self.allocations: List[tuple] = []

    def allocate(self, count: int) -> int:
        if count < 1:
            raise ValueError("need at least one stream")
        if self.capacity is not None and self._next_base + count > self.capacity:
            raise ValueError(
                f"stream directory exhausted: requested {count}, "
                f"{self.capacity - self._next_base} of {self.capacity} left"
            )
        base = self._next_base
        self._next_base += count
        self.allocations.append((base, count))
        return base


class InitiatorNode:
    """One initiator server with its own connections and Rio device."""

    def __init__(
        self,
        index: int,
        server: InitiatorServer,
        driver: InitiatorDriver,
        namespaces: List[RemoteNamespace],
        rio: RioDevice,
        stream_base: int,
    ):
        self.index = index
        self.server = server
        self.driver = driver
        self.namespaces = namespaces
        self.rio = rio
        self.stream_base = stream_base

    # Attribute names RioDevice/RioRecovery expect from a "cluster":
    @property
    def cpus(self) -> CpuSet:
        return self.server.cpus


class _InitiatorClusterView:
    """Adapter giving RioDevice the per-initiator view of the cluster."""

    def __init__(self, multi: "MultiInitiatorCluster", server: InitiatorServer,
                 driver: InitiatorDriver, namespaces: List[RemoteNamespace]):
        self.env = multi.env
        self.costs = multi.costs
        self.initiator = server
        self.driver = driver
        self.targets = multi.targets
        self.namespaces = namespaces

    def volume(self, namespaces=None, stripe_blocks: int = 1) -> LogicalVolume:
        return LogicalVolume(namespaces or self.namespaces, stripe_blocks)


class MultiInitiatorCluster:
    """N initiator servers sharing one set of target servers."""

    def __init__(
        self,
        env: Environment,
        target_ssds: Sequence[Sequence[SsdProfile]],
        num_initiators: int = 2,
        streams_per_initiator: int = 8,
        initiator_cores: int = 36,
        target_cores: int = 36,
        num_qps: Optional[int] = None,
        costs: CpuCosts = DEFAULT_COSTS,
        seed: int = 42,
    ):
        if num_initiators < 1:
            raise ValueError("need at least one initiator")
        self.env = env
        self.costs = costs
        self.rng = DeterministicRNG(seed)
        self.fabric = Fabric(env, self.rng.fork("fabric"))
        self.directory = StreamDirectory()
        num_qps = num_qps or initiator_cores

        # ---- shared target servers ----
        self.targets: List[TargetServer] = []
        for tid, profiles in enumerate(target_ssds):
            name = f"target{tid}"
            ssds = [
                NvmeSsd(env, profile, rng=self.rng.fork(f"{name}-ssd{sid}"),
                        name=f"{name}-ssd{sid}")
                for sid, profile in enumerate(profiles)
            ]
            self.targets.append(
                TargetServer(
                    env,
                    name=name,
                    cpus=CpuSet(env, target_cores, name=f"{name}-cpu"),
                    nic=Nic(env, name=f"{name}-nic"),
                    ssds=ssds,
                    pmr=PersistentMemoryRegion(env, name=f"{name}-pmr"),
                    costs=costs,
                )
            )

        # ---- per-initiator stacks ----
        self.initiators: List[InitiatorNode] = []
        for iid in range(num_initiators):
            server = InitiatorServer(
                env,
                name=f"initiator{iid}",
                cpus=CpuSet(env, initiator_cores, name=f"initiator{iid}-cpu"),
                nic=Nic(env, name=f"initiator{iid}-nic"),
            )
            driver = InitiatorDriver(env, server, costs=costs)
            namespaces: List[RemoteNamespace] = []
            for target in self.targets:
                qps = self.fabric.connect(server.nic, target.nic, num_qps)
                initiator_eps = [qp.endpoints[0] for qp in qps]
                target_eps = [qp.endpoints[1] for qp in qps]
                target.attach_connection(target_eps)
                driver.register_connection(initiator_eps)
                for sid in range(len(target.ssds)):
                    namespaces.append(
                        RemoteNamespace(target, nsid=sid,
                                        endpoints=initiator_eps)
                    )
            stream_base = self.directory.allocate(streams_per_initiator)
            view = _InitiatorClusterView(self, server, driver, namespaces)
            rio = RioDevice(
                view,
                num_streams=streams_per_initiator,
                stream_base=stream_base,
            )
            self.initiators.append(
                InitiatorNode(iid, server, driver, namespaces, rio,
                              stream_base)
            )
