"""File systems atop the ordered stacks (§4.7).

One journaling file-system implementation
(:class:`~repro.fs.filesystem.SimFileSystem`) is parameterized into the
paper's three compared systems (§6.1):

* **Ext4** — a single shared journal (JBD2-style group commit) over the
  synchronous Linux ordered stack;
* **HoraeFS** — per-core journals (iJournaling) over the HORAE control
  path;
* **RioFS** — per-core journals over Rio streams: all ordering FLUSHes and
  synchronous transfers replaced by ``rio_submit`` groups.

All three share the same code base, metadata journaling and journal-space
budget, mirroring "all three file systems are based on the same codebase of
Ext4" (§6.1).
"""

from repro.fs.filesystem import SimFileSystem, make_filesystem
from repro.fs.journal import Journal, Transaction
from repro.fs.recovery import FsRecoveryReport, recover_filesystem

__all__ = [
    "SimFileSystem",
    "make_filesystem",
    "Journal",
    "Transaction",
    "FsRecoveryReport",
    "recover_filesystem",
]
