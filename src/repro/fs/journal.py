"""Metadata journaling engine with group commit.

One :class:`Journal` owns a contiguous journal area on the volume and an
ordering stream.  ``fsync`` callers enqueue :class:`Transaction` objects;
the journal's commit worker batches whatever is pending into one on-disk
transaction (JBD2-style group commit) and writes it through the configured
ordered stack:

* group *k*   — the transaction's data blocks (ordered mode: data must
  persist before the commit record) and the journal description +
  journaled-metadata blocks, all freely reorderable among themselves;
* group *k+1* — the commit record, with an embedded FLUSH for durability.

On the Linux stack this pattern *is* the classic synchronous journaling
(wait + FLUSH per group); on HORAE it rides the control path; on Rio the
groups flow asynchronously through one stream and the consecutive journal
blocks merge (the Figure 14 behaviour).

Timestamps for the Figure 14 latency breakdown are recorded per commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple  # noqa: F401

from repro.block.request import Bio, WriteFlags
from repro.hw.cpu import Core
from repro.sim.engine import Environment, Event
from repro.sim.resources import Store
from repro.systems.base import OrderedStack

__all__ = ["Transaction", "CommitBreakdown", "Journal"]

#: CPU cost of assembling one on-disk transaction (block checksums,
#: descriptor setup) — file-system-side Lesson 3 term.
TXN_ASSEMBLY_COST = 0.8e-6


@dataclass
class Transaction:
    """One file-level transaction awaiting commit."""

    #: Home locations of the journaled metadata blocks: (lba, payload).
    metadata_blocks: List[Tuple[int, Any]] = field(default_factory=list)
    #: Dirty data extents to write before the commit record:
    #: (lba, nblocks, payload list, ipu flag).
    data_extents: List[Tuple[int, int, Optional[List[Any]], bool]] = field(
        default_factory=list
    )
    #: Set when freed blocks are being reused: forces the classic FLUSH
    #: before the data write (§4.4.2 block reuse).
    block_reuse: bool = False
    #: Fired when the transaction is durable.
    done: Optional[Event] = None
    enqueued_at: float = 0.0
    #: Absolute virtual-time deadline for this transaction's durability
    #: (None = none).  The commit stamps the batch's tightest deadline on
    #: every bio it issues; the driver fast-fails when the remaining
    #: budget cannot cover the expected service cost.
    deadline: Optional[float] = None


@dataclass
class CommitBreakdown:
    """Timestamps of one commit, for the Figure 14 breakdown."""

    started: float = 0.0
    data_dispatched: float = 0.0
    jm_dispatched: float = 0.0
    jc_dispatched: float = 0.0
    completed: float = 0.0

    @property
    def total(self) -> float:
        return self.completed - self.started


class Journal:
    """One journal area + commit worker bound to an ordering stream."""

    def __init__(
        self,
        env: Environment,
        stack: OrderedStack,
        core: Core,
        stream_id: int,
        area_start: int,
        area_blocks: int,
        name: str = "journal",
        sync_data_group: bool = False,
        commit_cpu_per_block: float = 0.7e-6,
    ):
        if area_blocks < 8:
            raise ValueError("journal area too small")
        self.env = env
        self.stack = stack
        self.core = core
        self.stream_id = stream_id
        self.area_start = area_start
        self.area_blocks = area_blocks
        self.name = name
        #: Ext4's ordered mode: data writeback completes *before* journal
        #: writes start (an extra synchronous boundary).  RioFS/HoraeFS
        #: only need data-before-commit-record, which the group gives them.
        self.sync_data_group = sync_data_group
        #: jbd2 copies and checksums every journaled buffer on the commit
        #: thread — per-block CPU serialized on this journal's core.
        self.commit_cpu_per_block = commit_cpu_per_block
        self._pending: Store = Store(env)
        self._used = 0  # blocks consumed since the last checkpoint
        self._txn_counter = 0
        #: Journaled metadata awaiting write-back: home lba -> payload.
        self._dirty_metadata: Dict[int, Any] = {}
        self.commits = 0
        self.checkpoints = 0
        self.breakdowns: List[CommitBreakdown] = []
        env.process(self._commit_worker())

    # ------------------------------------------------------------------
    # fsync-side API
    # ------------------------------------------------------------------

    def submit(self, txn: Transaction) -> Event:
        """Enqueue a transaction; returns its durability event."""
        if txn.done is None:
            txn.done = Event(self.env)
        txn.enqueued_at = self.env.now
        self._pending.put(txn)
        return txn.done

    # ------------------------------------------------------------------
    # Commit worker (group commit)
    # ------------------------------------------------------------------

    def _commit_worker(self):
        while True:
            first = yield self._pending.get()
            batch = [first]
            while True:
                extra = self._pending.try_get()
                if extra is None:
                    break
                batch.append(extra)
            yield from self._commit(batch)

    def _journal_blocks_needed(self, batch: List[Transaction]) -> int:
        metadata = sum(len(t.metadata_blocks) for t in batch)
        return 1 + metadata + 1  # JD + JM + JC

    def _alloc_journal(self, nblocks: int) -> int:
        lba = self.area_start + (self._used % (self.area_blocks - nblocks))
        self._used += nblocks
        return lba

    def _commit(self, batch: List[Transaction]):
        core = self.core
        stream = self.stream_id
        breakdown = CommitBreakdown(started=self.env.now)
        self._txn_counter += 1
        obs = self.env.obs
        cspan = None
        if obs is not None:
            # The commit's root span: opens at ``breakdown.started`` and
            # closes at ``breakdown.completed``, so the Fig. 14 numbers can
            # be reconstructed from the span tree alone.
            cspan = obs.spans.open(
                "fs.journal", host="initiator", journal=self.name,
                stream=stream, batch=len(batch), txn=self._txn_counter,
            )

        yield from core.run(TXN_ASSEMBLY_COST * len(batch))

        # Tightest deadline over the batch rides on every bio of the commit
        # (a batch is durable all-or-nothing, so the earliest requester's
        # budget governs).
        deadline = min(
            (t.deadline for t in batch if t.deadline is not None),
            default=None,
        )

        # Checkpoint when the journal area is nearly exhausted.
        if self._used >= int(self.area_blocks * 0.8):
            yield from self._checkpoint(cspan)

        # Block reuse regresses to the classic synchronous FLUSH (§4.4.2/§4.7).
        if any(t.block_reuse for t in batch):
            flush_bio = Bio(op="write", lba=self.area_start, nblocks=1,
                            stream_id=stream, deadline=deadline,
                            flags=WriteFlags(flush=True),
                            obs_parent=cspan, obs_role="reuse_flush")
            done = yield from self.stack.submit_ordered(
                core, flush_bio, end_of_group=True, flush=True
            )
            yield done

        metadata = [m for txn in batch for m in txn.metadata_blocks]
        data_blocks = sum(
            nblocks for txn in batch for _l, nblocks, _p, _i in txn.data_extents
        )
        # jbd2-style buffer copies + checksums on the commit thread.
        yield from core.run(
            self.commit_cpu_per_block * (len(metadata) + data_blocks + 2)
        )

        events = []
        data_bios = []
        # ---- group k: data blocks (ordered mode) ----
        last_data = None
        for txn in batch:
            for lba, nblocks, payload, ipu in txn.data_extents:
                bio = Bio(op="write", lba=lba, nblocks=nblocks,
                          payload=payload, stream_id=stream,
                          deadline=deadline, flags=WriteFlags(ipu=ipu),
                          obs_parent=cspan, obs_role="data")
                last_data = bio
                data_bios.append(bio)
        for index, bio in enumerate(data_bios):
            closes_group = self.sync_data_group and bio is last_data
            done = yield from self.stack.submit_ordered(
                core, bio, end_of_group=closes_group, kick=False,
            )
            events.append(done)

        # ---- group k (cont. — or its own group for Ext4): JD + JM ----
        jd_jm_blocks = 1 + len(metadata)
        journal_lba = self._alloc_journal(jd_jm_blocks + 1)
        jd_payload = [("JD", self._txn_counter)] + [
            ("JM", lba, payload) for lba, payload in metadata
        ]
        jm_bio = Bio(op="write", lba=journal_lba, nblocks=jd_jm_blocks,
                     payload=jd_payload, stream_id=stream,
                     deadline=deadline, obs_parent=cspan, obs_role="jm")
        done = yield from self.stack.submit_ordered(
            core, jm_bio, end_of_group=True, kick=False,
        )
        events.append(done)

        # ---- final group: the commit record, flushed for durability ----
        jc_bio = Bio(op="write", lba=journal_lba + jd_jm_blocks, nblocks=1,
                     payload=[("JC", self._txn_counter)], stream_id=stream,
                     deadline=deadline, obs_parent=cspan, obs_role="jc")
        jc_done = yield from self.stack.submit_ordered(
            core, jc_bio, end_of_group=True, flush=True, kick=True,
        )
        events.append(jc_done)

        for lba, payload in metadata:
            self._dirty_metadata[lba] = payload

        yield self.env.all_of(events)
        breakdown.completed = self.env.now
        started = breakdown.started
        breakdown.data_dispatched = (
            max((b.dispatched_at for b in data_bios), default=started)
        )
        breakdown.jm_dispatched = jm_bio.dispatched_at or started
        breakdown.jc_dispatched = jc_bio.dispatched_at or started
        self.breakdowns.append(breakdown)
        self.commits += 1
        if cspan is not None:
            obs.spans.close(cspan)
            obs.metrics.inc("journal.commits")

        for txn in batch:
            if not txn.done.triggered:
                txn.done.succeed()

    def _checkpoint(self, parent=None):
        """Write journaled metadata to its home locations and recycle the
        journal area.

        Classic checkpointing: the home-location writes are orderless
        (they are re-creatable from the journal until the area is
        recycled), followed by a FLUSH so recycling never exposes a window
        where neither the journal copy nor the home copy is durable.
        """
        self.checkpoints += 1
        dirty, self._dirty_metadata = self._dirty_metadata, {}
        completions = []
        for lba, payload in dirty.items():
            bio = Bio(op="write", lba=lba, nblocks=1, payload=[payload],
                      stream_id=self.stream_id,
                      obs_parent=parent, obs_role="checkpoint")
            done = yield from self.stack.block_layer.submit_bio(self.core, bio)
            completions.append(done)
        if completions:
            yield self.env.all_of(completions)
        flush_bio = Bio(op="flush", stream_id=self.stream_id,
                        obs_parent=parent, obs_role="checkpoint_flush")
        done = yield from self.stack.block_layer.submit_bio(
            self.core, flush_bio
        )
        yield done
        self._used = 0
