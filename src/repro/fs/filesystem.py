"""A journaling file system over the ordered stacks.

:class:`SimFileSystem` implements the VFS surface the benchmarks need —
create / append / overwrite / fsync / read / unlink — with buffered writes
(page cache), metadata journaling through :class:`~repro.fs.journal.Journal`,
and the three consistency special cases of §4.4.2/§4.7:

* normal in-place updates are tagged ``ipu`` so Rio's recovery leaves them
  to the file system;
* block reuse (allocating from the free list) regresses to the classic
  FLUSH, as RioFS does;
* everything else is out-of-place (journal writes, fresh allocations).

``make_filesystem("ext4" | "horaefs" | "riofs", cluster)`` builds the three
compared systems: one shared journal + Linux stack for Ext4, per-core
journals (iJournaling) + HORAE control path for HoraeFS, per-core journals
+ Rio streams for RioFS (§6.1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cluster import Cluster
from repro.fs.journal import Journal, Transaction
from repro.hw.cpu import Core
from repro.sim.engine import Environment, Event
from repro.sim.stats import LatencyRecorder
from repro.systems.base import OrderedStack, make_stack

__all__ = ["SimFileSystem", "File", "make_filesystem"]

BLOCK = 4096

#: CPU costs of in-memory file-system work.
INODE_UPDATE_COST = 0.3e-6
PAGE_CACHE_COST_PER_BLOCK = 0.25e-6
LOOKUP_COST = 0.2e-6


@dataclass
class File:
    """An open file: inode + buffered state."""

    name: str
    inode_lba: int
    size_blocks: int = 0
    blocks: List[int] = field(default_factory=list)
    #: Dirty extents awaiting fsync: (lba, nblocks, payload, ipu).
    dirty: List[Tuple[int, int, List[Any], bool]] = field(default_factory=list)
    metadata_dirty: bool = True
    reused_blocks: bool = False
    version: int = 0


class SimFileSystem:
    """The shared file-system implementation (Ext4/HoraeFS/RioFS bases)."""

    def __init__(
        self,
        cluster: Cluster,
        stack: OrderedStack,
        num_journals: int = 1,
        journal_total_blocks: int = 262_144,  # 1 GB, as in §6.1
        metadata_region_blocks: int = 1 << 20,
        name: str = "simfs",
        sync_data_group: bool = False,
    ):
        if num_journals < 1:
            raise ValueError("need at least one journal")
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.stack = stack
        self.name = name
        self.num_journals = num_journals

        area = max(64, journal_total_blocks // num_journals)
        journal_base = metadata_region_blocks
        self.journals: List[Journal] = [
            Journal(
                self.env,
                stack,
                core=cluster.initiator.cpus.pick(i),
                stream_id=i,
                area_start=journal_base + i * area,
                area_blocks=area,
                name=f"{name}-journal{i}",
                sync_data_group=sync_data_group,
            )
            for i in range(num_journals)
        ]
        self._data_base = journal_base + num_journals * area
        self._next_data_block = self._data_base
        self._free_blocks: List[int] = []
        self._next_inode_lba = 8  # 0..7 reserved for the superblock etc.
        self._root_dir_lba = 4
        self.files: Dict[str, File] = {}
        self.fsync_latency = LatencyRecorder()
        self.fsyncs = 0
        #: Clean-page cache (LRU over block lbas); dirty data lives in the
        #: per-file dirty lists until fsync.
        self._page_cache: "OrderedDict[int, bool]" = OrderedDict()
        self.page_cache_capacity = 16_384  # 64 MB of 4 KB pages
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------

    def create(self, core: Core, name: str):
        """Generator: create a file (metadata buffered until fsync)."""
        if name in self.files:
            raise FileExistsError(name)
        yield from core.run(LOOKUP_COST + INODE_UPDATE_COST)
        file = File(name=name, inode_lba=self._next_inode_lba)
        self._next_inode_lba += 1
        self.files[name] = file
        return file

    def lookup(self, core: Core, name: str):
        """Generator: path lookup."""
        yield from core.run(LOOKUP_COST)
        return self.files.get(name)

    def unlink(self, core: Core, name: str):
        """Generator: remove a file; its blocks return to the free list."""
        file = self.files.pop(name, None)
        if file is None:
            raise FileNotFoundError(name)
        yield from core.run(LOOKUP_COST + INODE_UPDATE_COST)
        self._free_blocks.extend(file.blocks)
        return file

    def rename(self, core: Core, old_name: str, new_name: str):
        """Generator: rename a file (a pure metadata transaction)."""
        file = self.files.get(old_name)
        if file is None:
            raise FileNotFoundError(old_name)
        if new_name in self.files:
            raise FileExistsError(new_name)
        yield from core.run(2 * LOOKUP_COST + INODE_UPDATE_COST)
        del self.files[old_name]
        file.name = new_name
        file.version += 1
        file.metadata_dirty = True  # directory + inode update to journal
        self.files[new_name] = file
        return file

    def truncate(self, core: Core, file: File, new_size_blocks: int):
        """Generator: shrink a file; freed blocks go to the free list
        (their later reallocation is block reuse, §4.4.2)."""
        if new_size_blocks < 0 or new_size_blocks > file.size_blocks:
            raise ValueError("truncate can only shrink")
        yield from core.run(INODE_UPDATE_COST)
        freed = file.blocks[new_size_blocks:]
        file.blocks = file.blocks[:new_size_blocks]
        file.size_blocks = new_size_blocks
        freed_set = set(freed)
        file.dirty = [
            (lba, nblocks, payload, ipu)
            for lba, nblocks, payload, ipu in file.dirty
            if lba not in freed_set
        ]
        self._free_blocks.extend(freed)
        file.version += 1
        file.metadata_dirty = True
        return len(freed)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def _allocate(self, nblocks: int) -> Tuple[List[int], bool]:
        """Allocate data blocks; returns (blocks, any_reused)."""
        blocks: List[int] = []
        reused = False
        while nblocks > 0 and self._free_blocks:
            blocks.append(self._free_blocks.pop())
            reused = True
            nblocks -= 1
        if nblocks > 0:
            blocks.extend(
                range(self._next_data_block, self._next_data_block + nblocks)
            )
            self._next_data_block += nblocks
        return blocks, reused

    def append(self, core: Core, file: File, nblocks: int = 1):
        """Generator: buffered append (page-cache write, no I/O yet)."""
        yield from core.run(
            PAGE_CACHE_COST_PER_BLOCK * nblocks + INODE_UPDATE_COST
        )
        blocks, reused = self._allocate(nblocks)
        file.version += 1
        payload = [(file.name, file.size_blocks + i, file.version)
                   for i in range(nblocks)]
        file.blocks.extend(blocks)
        file.size_blocks += nblocks
        file.reused_blocks = file.reused_blocks or reused
        file.metadata_dirty = True
        self._add_dirty(file, blocks, payload, ipu=False)

    def overwrite(self, core: Core, file: File, block_offset: int,
                  nblocks: int = 1):
        """Generator: buffered in-place overwrite (a *normal IPU*)."""
        if block_offset + nblocks > file.size_blocks:
            raise ValueError("overwrite beyond EOF")
        yield from core.run(
            PAGE_CACHE_COST_PER_BLOCK * nblocks + INODE_UPDATE_COST
        )
        file.version += 1
        file.metadata_dirty = True  # mtime/version update
        blocks = file.blocks[block_offset : block_offset + nblocks]
        payload = [(file.name, block_offset + i, file.version)
                   for i in range(nblocks)]
        self._add_dirty(file, blocks, payload, ipu=True)

    @staticmethod
    def _add_dirty(file: File, blocks: List[int], payload: List[Any],
                   ipu: bool) -> None:
        # Coalesce contiguous runs so the stack sees extent-sized bios.
        run_start = 0
        for i in range(1, len(blocks) + 1):
            if i == len(blocks) or blocks[i] != blocks[i - 1] + 1:
                file.dirty.append(
                    (
                        blocks[run_start],
                        i - run_start,
                        payload[run_start:i],
                        ipu,
                    )
                )
                run_start = i

    def _cache_lookup(self, lba: int) -> bool:
        if lba in self._page_cache:
            self._page_cache.move_to_end(lba)
            return True
        return False

    def _cache_insert(self, lba: int) -> None:
        self._page_cache[lba] = True
        self._page_cache.move_to_end(lba)
        while len(self._page_cache) > self.page_cache_capacity:
            self._page_cache.popitem(last=False)

    def read(self, core: Core, file: File, block_offset: int, nblocks: int):
        """Generator: read file blocks through the page cache.

        Dirty data and cached clean pages are CPU-only hits; everything
        else is fetched from the device and inserted into the LRU cache.
        """
        yield from core.run(PAGE_CACHE_COST_PER_BLOCK * nblocks)
        dirty_lbas = {lba + i for lba, n, _p, _ipu in file.dirty for i in range(n)}
        wanted = file.blocks[block_offset : block_offset + nblocks]
        missing = []
        for lba in wanted:
            if lba in dirty_lbas or self._cache_lookup(lba):
                self.cache_hits += 1
            else:
                self.cache_misses += 1
                missing.append(lba)
        if missing:
            done, bio = yield from self.stack.read(
                core, 0, lba=missing[0], nblocks=len(missing)
            )
            yield done
            for lba in missing:
                self._cache_insert(lba)
        return nblocks

    # ------------------------------------------------------------------
    # fsync (the measured operation)
    # ------------------------------------------------------------------

    def journal_for(self, thread_id: int) -> Journal:
        return self.journals[thread_id % len(self.journals)]

    def fsync(self, core: Core, file: File, thread_id: int = 0):
        """Generator: make the file durable via metadata journaling."""
        started = self.env.now
        yield from core.run(INODE_UPDATE_COST)
        txn = Transaction()
        txn.data_extents = file.dirty
        file.dirty = []
        txn.block_reuse = file.reused_blocks
        file.reused_blocks = False
        if file.metadata_dirty:
            # The journaled inode carries everything recovery needs to
            # rebuild the file: name, version, and the block map.
            txn.metadata_blocks.append(
                (
                    file.inode_lba,
                    ("inode", file.name, file.version, tuple(file.blocks)),
                )
            )
            txn.metadata_blocks.append(
                (self._root_dir_lba, ("dir", file.name, file.version))
            )
            file.metadata_dirty = False
        if not txn.data_extents and not txn.metadata_blocks:
            return 0.0  # nothing to do
        journal = self.journal_for(thread_id)
        done = journal.submit(txn)
        yield done
        latency = self.env.now - started
        self.fsync_latency.record(latency)
        self.fsyncs += 1
        return latency


def make_filesystem(
    kind: str,
    cluster: Cluster,
    volume=None,
    num_journals: Optional[int] = None,
    **kwargs,
) -> SimFileSystem:
    """Build one of the three compared file systems (§6.1).

    ``ext4``    — single journal over the Linux ordered stack;
    ``horaefs`` — per-core journals (iJournaling) over HORAE;
    ``riofs``   — per-core journals over Rio streams (24 by default, as in
    the paper's evaluation).
    """
    kinds = {
        "ext4": ("linux", 1),
        "horaefs": ("horae", 24),
        "riofs": ("rio", 24),
    }
    if kind not in kinds:
        raise ValueError(f"unknown file system: {kind!r} (have {sorted(kinds)})")
    stack_name, default_journals = kinds[kind]
    journals = num_journals or default_journals
    stack = make_stack(stack_name, cluster, volume, num_streams=journals)
    return SimFileSystem(
        cluster,
        stack,
        num_journals=journals,
        name=kind,
        # Ext4's ordered mode completes data writeback before journaling.
        sync_data_group=(kind == "ext4"),
        **kwargs,
    )
