"""File-system crash recovery: journal scan and replay (§4.4, §4.7).

After a crash, the block device has already been restored to an ordered
prefix state (Rio's recovery, §4.4) — storage order guarantees that for
every durable commit record, the transaction's data and journaled metadata
are durable too.  The file system then only needs classic journal replay:

1. scan each journal area for transactions whose commit record (JC) made
   it to durable media;
2. rebuild the namespace by applying committed transactions in id order
   (the journaled inode carries the file's block map);
3. verify data consistency: every block of a committed file must hold
   data whose version is at least the committed inode version — newer
   data is possible for normal IPUs (§4.4.2: Rio leaves IPU blocks alone
   and the ordered-mode contract tolerates newer-data-older-metadata);
   *older or missing* data would be a storage-order violation.

:func:`recover_filesystem` performs all three and reports what it found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.fs.filesystem import File, SimFileSystem
from repro.hw.cpu import Core

__all__ = [
    "FsRecoveryReport",
    "recover_filesystem",
    "verify_acked_fsyncs",
    "order_violations_as_check",
]

#: Blocks fetched per journal-scan read.
SCAN_CHUNK = 64


@dataclass
class FsRecoveryReport:
    """Outcome of one file-system recovery pass."""

    journals_scanned: int = 0
    committed_txns: int = 0
    incomplete_txns: int = 0
    files_recovered: int = 0
    #: (file, block lba, durable version seen): data newer than the
    #: committed metadata — possible with normal IPUs, never fatal.
    ipu_anomalies: List[Tuple[str, int, Any]] = field(default_factory=list)
    #: (file, block lba): data older than committed metadata or missing —
    #: a storage-order violation if non-empty.
    order_violations: List[Tuple[str, int]] = field(default_factory=list)
    elapsed: float = 0.0


def recover_filesystem(fs: SimFileSystem, core: Core, report: Optional[FsRecoveryReport] = None):
    """Generator: scan journals, rebuild the namespace, verify consistency.

    Run on a freshly constructed :class:`SimFileSystem` whose cluster has
    already completed block-level recovery.  Returns the report; the file
    table (``fs.files``) is rebuilt as a side effect.
    """
    report = report or FsRecoveryReport()
    env = fs.env
    started = env.now
    fs.files.clear()

    committed: List[Tuple[int, int, List[Tuple[int, Any]]]] = []
    for jid, journal in enumerate(fs.journals):
        report.journals_scanned += 1
        blocks = yield from _read_journal_area(fs, core, journal)
        txns, incomplete = _parse_journal(blocks)
        report.incomplete_txns += incomplete
        for txn_id, metadata in txns:
            committed.append((jid, txn_id, metadata))

    # Checkpointed transactions were recycled out of the journal; their
    # metadata lives at the home inode locations.  Scan those first so
    # journal entries (always same-or-newer versions) override them.
    inode_versions: Dict[str, Tuple[int, Tuple[int, ...], int]] = {}
    home_inodes = yield from _scan_home_inodes(fs, core)
    for lba, payload in home_inodes:
        _tag, name, version, blocks = payload
        current = inode_versions.get(name)
        if current is None or version >= current[0]:
            inode_versions[name] = (version, blocks, lba)

    # Apply committed transactions in (journal, txn-id) order; later
    # versions of an inode overwrite earlier ones.
    report.committed_txns = len(committed)
    for _jid, _txn_id, metadata in sorted(committed, key=lambda c: (c[0], c[1])):
        for lba, payload in metadata:
            if payload and payload[0] == "inode":
                _tag, name, version, blocks = payload
                current = inode_versions.get(name)
                if current is None or version >= current[0]:
                    inode_versions[name] = (version, blocks, lba)

    max_inode = fs._next_inode_lba
    for name, (version, blocks, inode_lba) in inode_versions.items():
        file = File(name=name, inode_lba=inode_lba, version=version,
                    size_blocks=len(blocks), blocks=list(blocks),
                    metadata_dirty=False)
        max_inode = max(max_inode, inode_lba + 1)
        fs.files[name] = file
        report.files_recovered += 1
    fs._next_inode_lba = max_inode

    # ---- data consistency verification (§4.4.2) ----
    for name, file in fs.files.items():
        for lba in file.blocks:
            ns, local = fs.stack.volume.locate(lba)
            payload = ns.target.ssds[ns.nsid].durable_payload(local)
            if payload is None:
                report.order_violations.append((name, lba))
            elif payload[0] == name and payload[2] > file.version:
                report.ipu_anomalies.append((name, lba, payload[2]))
            elif payload[0] != name:
                # Block reuse: the block belongs to this file per committed
                # metadata but holds another file's data — only legal if a
                # *later* committed inode no longer references it, which
                # the version ordering above already resolved; anything
                # else is a violation.
                report.order_violations.append((name, lba))

    report.elapsed = env.now - started
    return report


def verify_acked_fsyncs(fs: SimFileSystem, acked_versions: Dict[str, int]):
    """File-system half of the crash-consistency oracle (``repro.check``).

    ``acked_versions`` maps a file name to the highest inode version whose
    ``fsync`` completion fired before the crash.  After
    :func:`recover_filesystem`, every such file must exist at that version
    or newer — anything less means an acknowledged fsync was lost, the
    file-system analogue of the block-level ``lost-fsync`` violation.
    Returns the violations (empty list = contract holds).
    """
    from repro.check.oracle import Violation

    violations = []
    for name, version in sorted(acked_versions.items()):
        file = fs.files.get(name)
        if file is None:
            violations.append(Violation(
                kind="lost-fsync", stream=-1, group=-1,
                detail=f"file {name!r} (acked at v{version}) missing "
                f"after recovery",
            ))
        elif file.version < version:
            violations.append(Violation(
                kind="lost-fsync", stream=-1, group=-1,
                detail=f"file {name!r} recovered at v{file.version} < "
                f"acked v{version}",
            ))
    return violations


def order_violations_as_check(report: FsRecoveryReport):
    """The report's data-consistency findings as checker violations, so
    fs-level recovery outcomes compose with the block-level oracle."""
    from repro.check.oracle import Violation

    return [
        Violation(
            kind="order-hole", stream=-1, group=-1,
            detail=f"file {name!r} block {lba}: data older than committed "
            f"metadata or missing",
        )
        for name, lba in report.order_violations
    ]


def _scan_home_inodes(fs: SimFileSystem, core: Core, limit: int = 4096):
    """Generator: read checkpointed inode blocks from the metadata region.

    Inode home blocks are allocated densely from lba 8 upward, so the scan
    stops at the first fully-empty chunk (or ``limit`` blocks).
    """
    found: List[Tuple[int, Any]] = []
    lba = 8
    scanned = 0
    while scanned < limit:
        chunk = min(SCAN_CHUNK, limit - scanned)
        done, bio = yield from fs.stack.read(core, 0, lba=lba, nblocks=chunk)
        yield done
        payload = bio.payload or [None] * chunk
        chunk_hits = 0
        for offset, block in enumerate(payload):
            if isinstance(block, tuple) and block and block[0] == "inode":
                found.append((lba + offset, block))
                chunk_hits += 1
        lba += chunk
        scanned += chunk
        if chunk_hits == 0:
            break  # past the end of the allocated inode region
    return found


def _read_journal_area(fs: SimFileSystem, core: Core, journal):
    """Generator: fetch the journal area's block payloads from the device."""
    blocks: List[Any] = []
    lba = journal.area_start
    remaining = journal.area_blocks
    while remaining > 0:
        chunk = min(SCAN_CHUNK, remaining)
        done, bio = yield from fs.stack.read(core, 0, lba=lba, nblocks=chunk)
        yield done
        payload = bio.payload or [None] * chunk
        blocks.extend(payload)
        lba += chunk
        remaining -= chunk
    return blocks


def _parse_journal(blocks: List[Any]):
    """Find committed transactions: a JD..JM* run closed by a matching JC."""
    txns: List[Tuple[int, List[Tuple[int, Any]]]] = []
    incomplete = 0
    current_txn: Optional[int] = None
    metadata: List[Tuple[int, Any]] = []
    for block in blocks:
        if not isinstance(block, tuple):
            continue
        tag = block[0]
        if tag == "JD":
            if current_txn is not None:
                incomplete += 1
            current_txn = block[1]
            metadata = []
        elif tag == "JM" and current_txn is not None:
            metadata.append((block[1], block[2]))
        elif tag == "JC":
            if current_txn is not None and block[1] == current_txn:
                txns.append((current_txn, metadata))
            elif current_txn is not None:
                incomplete += 1
            current_txn = None
            metadata = []
    if current_txn is not None:
        incomplete += 1
    return txns, incomplete
