"""Open- and closed-loop load generators for the scale-out plane.

Two canonical load models from queueing practice:

* **Open loop** (:func:`run_open_loop`) — arrivals are a fixed-rate
  Poisson process, independent of completions.  Latency is measured from
  the *intended arrival time*, so queueing delay counts: past the
  saturation knee the arrival queue grows and tail latency explodes —
  exactly the throughput-latency hockey stick ``repro saturate`` plots.
* **Closed loop** (:func:`run_closed_loop`) — each tenant keeps a bounded
  number of groups in flight and waits (plus exponential think time)
  before issuing the next, so offered load self-limits to completion
  rate, like the paper's FIO jobs at fixed queue depth.

Tenants reuse the :mod:`repro.apps` workload shapes (``rand``/``seq``
write patterns and the §3.1 ``journal`` 2-block + 1-block commit shape),
each on a private LBA area and a private stream — one tenant, one
ordered stream, as the paper's per-thread streams.  Both generators
drive any :class:`~repro.systems.base.OrderedStack`, including the
sharded multi-initiator facade
(:class:`repro.scale.cluster.ShardedStack`), which routes each tenant's
stream to its owning initiator host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.engine import Environment
from repro.sim.rng import DeterministicRNG
from repro.sim.stats import LatencyRecorder

__all__ = [
    "OpenLoopConfig",
    "ClosedLoopConfig",
    "LoadgenResult",
    "run_open_loop",
    "run_closed_loop",
]

#: Private LBA area per tenant, in blocks (mirrors the fio driver).
TENANT_AREA_BLOCKS = 16_000_000

#: Open-loop admission bound per tenant: keeps memory finite when the
#: offered rate is far past saturation.  Latency is still charged from
#: the intended arrival time, so the knee remains visible.
OPEN_LOOP_INFLIGHT_CAP = 256


@dataclass(frozen=True)
class OpenLoopConfig:
    """Fixed-rate Poisson arrivals, split across tenants.

    With ``weights=None`` (the default) the rate splits *evenly* — the
    historical behaviour, bit-identical to before the knob existed.
    ``weights`` (one positive weight per tenant) splits the total in
    proportion: tenant ``i`` offers ``offered_iops * w_i / sum(w)``.

    ``blocks`` (one positive size per tenant) likewise overrides
    ``write_blocks`` per tenant, so asymmetric mixes — a small-write
    latency tenant next to a bandwidth hog — run in one open loop;
    ``blocks=None`` keeps every tenant at ``write_blocks``, bit-identical
    to before the knob existed.
    """

    offered_iops: float
    tenants: int = 4
    duration: float = 2e-3
    warmup: float = 0.5e-3
    write_blocks: int = 1
    pattern: str = "rand"  # rand | seq | journal
    durable: bool = False
    seed: int = 1234
    weights: Optional[Tuple[float, ...]] = None
    blocks: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Think-time-bounded closed loops, one per tenant."""

    tenants: int = 4
    queue_depth: int = 1
    #: Mean exponential think time between an ordered completion and the
    #: next submission (0 = back-to-back).
    think_time: float = 0.0
    duration: float = 2e-3
    warmup: float = 0.5e-3
    write_blocks: int = 1
    pattern: str = "rand"
    durable: bool = False
    seed: int = 1234


@dataclass
class LoadgenResult:
    """Measured outcome of one load-generator run."""

    system: str
    tenants: int
    offered_iops: float = 0.0
    ops: int = 0
    elapsed: float = 0.0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    initiator_busy_cores: float = 0.0
    target_busy_cores: float = 0.0

    @property
    def achieved_iops(self) -> float:
        return self.ops / self.elapsed if self.elapsed else 0.0

    @property
    def iops_per_busy_core(self) -> float:
        """§6.1 CPU efficiency at this load point (initiator side)."""
        if self.initiator_busy_cores <= 0:
            return 0.0
        return self.achieved_iops / self.initiator_busy_cores


def _validate(pattern: str, tenants: int) -> None:
    if pattern not in ("rand", "seq", "journal"):
        raise ValueError(f"pattern must be rand|seq|journal, got {pattern!r}")
    if tenants < 1:
        raise ValueError("need at least one tenant")


def _make_lba_chooser(rng: DeterministicRNG, pattern: str, base: int,
                      op_blocks: int):
    """Address generator for one tenant (fio's rand/seq idiom)."""
    cursor = [0]

    def next_lba() -> int:
        if pattern == "seq":
            lba = base + cursor[0]
            cursor[0] += op_blocks
            if cursor[0] > TENANT_AREA_BLOCKS - op_blocks:
                cursor[0] = 0
            return lba
        slot = rng.randint(0, TENANT_AREA_BLOCKS // (op_blocks + 2) - 1)
        return base + slot * (op_blocks + 2)  # +2: never LBA-consecutive

    return next_lba


def _issue_op(stack, core, stream, next_lba, config, tenant=None,
              nblocks=None):
    """Generator: issue one workload op; returns (events, nops).

    ``tenant`` (multi-tenant plane) tags the bios with the issuing tenant
    id; None issues anonymously, exactly as before the plane existed.
    ``nblocks`` overrides the op size (``config.blocks`` per-tenant mix);
    None keeps ``config.write_blocks``.
    """
    extra = {} if tenant is None else {"tenant": tenant}
    if config.pattern == "journal":
        lba = next_lba()
        e1 = yield from stack.write_ordered(
            core, stream, lba=lba, nblocks=2, end_of_group=True, kick=False,
            **extra,
        )
        e2 = yield from stack.write_ordered(
            core, stream, lba=lba + 2, nblocks=1, end_of_group=True,
            flush=config.durable, kick=True, **extra,
        )
        return [e1, e2], 2
    done = yield from stack.write_ordered(
        core, stream, lba=next_lba(),
        nblocks=config.write_blocks if nblocks is None else nblocks,
        end_of_group=True, flush=config.durable, **extra,
    )
    return [done], 1


def _tenant_rates(config: OpenLoopConfig) -> List[float]:
    """Per-tenant offered rates: even split, or weight-proportional."""
    if config.weights is None:
        # The historical even split, kept textually identical so legacy
        # results (and their cache digests) are bit-exact.
        return [config.offered_iops / config.tenants] * config.tenants
    if len(config.weights) != config.tenants:
        raise ValueError(
            f"weights length {len(config.weights)} != tenants {config.tenants}"
        )
    if any(w <= 0 for w in config.weights):
        raise ValueError("tenant weights must all be positive")
    total = sum(config.weights)
    return [config.offered_iops * w / total for w in config.weights]


def _tenant_blocks(config: OpenLoopConfig) -> List[int]:
    """Per-tenant write sizes: uniform ``write_blocks``, or the mix."""
    if config.blocks is None:
        return [config.write_blocks] * config.tenants
    if len(config.blocks) != config.tenants:
        raise ValueError(
            f"blocks length {len(config.blocks)} != tenants {config.tenants}"
        )
    if any(b < 1 for b in config.blocks):
        raise ValueError("per-tenant block counts must all be >= 1")
    return list(config.blocks)


def _finish(result: LoadgenResult, cluster, config) -> LoadgenResult:
    result.elapsed = config.duration
    result.initiator_busy_cores = cluster.initiator_busy_cores(config.duration)
    result.target_busy_cores = cluster.target_busy_cores(config.duration)
    return result


def run_open_loop(cluster, stack, config: OpenLoopConfig,
                  plane=None) -> LoadgenResult:
    """Run a fixed-rate Poisson workload to the end of its window.

    ``plane`` (a :class:`repro.tenants.traffic.TenantTrafficPlane` or
    any duck-typed equivalent) layers the multi-tenant plane over the
    generator: arrivals are drawn at the diurnal *peak* rate and thinned
    by ``plane.keep`` (an exact Poisson modulation), each op is issued as
    a Zipf-picked member tenant of its stream (``plane.pick``) and its
    latency is recorded per class (``plane.record``).  ``plane=None`` is
    the stock anonymous generator, bit-identical to before the plane
    existed — the tenant RNG is only ever forked when a plane is given.
    """
    _validate(config.pattern, config.tenants)
    if config.offered_iops <= 0:
        raise ValueError("offered_iops must be > 0")
    env: Environment = cluster.env
    result = LoadgenResult(system=stack.name, tenants=config.tenants,
                           offered_iops=config.offered_iops)
    end_time = config.warmup + config.duration
    rates = _tenant_rates(config)
    blocks = _tenant_blocks(config)
    peak = plane.peak_factor() if plane is not None else 1.0

    def watch(arrival, nops, tracker, who=None):
        yield tracker
        if config.warmup <= env.now <= end_time:
            result.ops += nops
            if arrival >= config.warmup:
                result.latency.record(env.now - arrival)
                if plane is not None and who is not None:
                    plane.record(who, env.now - arrival)

    def tenant_body(tenant: int):
        rng = DeterministicRNG(config.seed).fork(f"loadgen-open{tenant}")
        plane_rng = rng.fork("tenant-plane") if plane is not None else None
        core = cluster.initiator.cpus.pick(tenant)
        op_blocks = 3 if config.pattern == "journal" else blocks[tenant]
        next_lba = _make_lba_chooser(
            rng.fork("lba"), config.pattern,
            tenant * TENANT_AREA_BLOCKS, op_blocks,
        )
        arrival = 0.0
        inflight: List = []
        while True:
            arrival += rng.expovariate(rates[tenant] * peak)
            if arrival >= end_time:
                return
            if plane is not None and not plane.keep(plane_rng, arrival):
                continue  # diurnal trough: thin the peak-rate arrival
            if arrival > env.now:
                yield env.timeout(arrival - env.now)
            # (if arrival <= now we are backlogged: issue immediately,
            # charging the queueing delay to this op's latency)
            who = plane.pick(tenant, plane_rng) if plane is not None else None
            events, nops = yield from _issue_op(
                stack, core, tenant, next_lba, config, tenant=who,
                nblocks=blocks[tenant],
            )
            tracker = env.all_of(events)
            env.process(watch(arrival, nops, tracker, who))
            inflight.append(tracker)
            while len(inflight) >= OPEN_LOOP_INFLIGHT_CAP:
                yield env.any_of(inflight)
                inflight = [t for t in inflight if not t.triggered]

    def measurement():
        yield env.timeout(config.warmup)
        cluster.start_cpu_window()
        yield env.timeout(config.duration)
        cluster.stop_cpu_window()

    env.process(measurement())
    for tenant in range(config.tenants):
        env.process(tenant_body(tenant))
    env.run(until=end_time)
    return _finish(result, cluster, config)


def run_closed_loop(cluster, stack, config: ClosedLoopConfig,
                    plane=None) -> LoadgenResult:
    """Run think-time-bounded closed loops to the end of their window.

    ``plane`` layers tenant identity over the loops (Zipf member pick and
    per-class latency accounting, as in :func:`run_open_loop`); diurnal
    thinning does not apply — a closed loop's rate is completion-bound.
    """
    _validate(config.pattern, config.tenants)
    if config.queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    env: Environment = cluster.env
    result = LoadgenResult(system=stack.name, tenants=config.tenants)
    end_time = config.warmup + config.duration
    op_blocks = 3 if config.pattern == "journal" else config.write_blocks

    def watch(issued_at, nops, tracker, who=None):
        yield tracker
        if config.warmup <= env.now <= end_time:
            result.ops += nops
            if issued_at >= config.warmup:
                result.latency.record(env.now - issued_at)
                if plane is not None and who is not None:
                    plane.record(who, env.now - issued_at)

    def tenant_body(tenant: int):
        rng = DeterministicRNG(config.seed).fork(f"loadgen-closed{tenant}")
        plane_rng = rng.fork("tenant-plane") if plane is not None else None
        core = cluster.initiator.cpus.pick(tenant)
        next_lba = _make_lba_chooser(
            rng.fork("lba"), config.pattern,
            tenant * TENANT_AREA_BLOCKS, op_blocks,
        )
        inflight: List = []
        while env.now < end_time:
            issued_at = env.now
            who = plane.pick(tenant, plane_rng) if plane is not None else None
            events, nops = yield from _issue_op(
                stack, core, tenant, next_lba, config, tenant=who
            )
            tracker = env.all_of(events)
            env.process(watch(issued_at, nops, tracker, who))
            inflight.append(tracker)
            while len(inflight) >= config.queue_depth:
                head = inflight.pop(0)
                if not head.triggered:
                    yield head
            if config.think_time > 0:
                yield env.timeout(rng.expovariate(1.0 / config.think_time))

    def measurement():
        yield env.timeout(config.warmup)
        cluster.start_cpu_window()
        yield env.timeout(config.duration)
        cluster.stop_cpu_window()

    env.process(measurement())
    for tenant in range(config.tenants):
        env.process(tenant_body(tenant))
    env.run(until=end_time)
    return _finish(result, cluster, config)
