"""Open- and closed-loop load generators for the scale-out plane.

Two canonical load models from queueing practice:

* **Open loop** (:func:`run_open_loop`) — arrivals are a fixed-rate
  Poisson process, independent of completions.  Latency is measured from
  the *intended arrival time*, so queueing delay counts: past the
  saturation knee the arrival queue grows and tail latency explodes —
  exactly the throughput-latency hockey stick ``repro saturate`` plots.
* **Closed loop** (:func:`run_closed_loop`) — each tenant keeps a bounded
  number of groups in flight and waits (plus exponential think time)
  before issuing the next, so offered load self-limits to completion
  rate, like the paper's FIO jobs at fixed queue depth.

Tenants reuse the :mod:`repro.apps` workload shapes (``rand``/``seq``
write patterns and the §3.1 ``journal`` 2-block + 1-block commit shape),
each on a private LBA area and a private stream — one tenant, one
ordered stream, as the paper's per-thread streams.  Both generators
drive any :class:`~repro.systems.base.OrderedStack`, including the
sharded multi-initiator facade
(:class:`repro.scale.cluster.ShardedStack`), which routes each tenant's
stream to its owning initiator host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.sim.engine import Environment
from repro.sim.rng import DeterministicRNG
from repro.sim.stats import LatencyRecorder

__all__ = [
    "OpenLoopConfig",
    "ClosedLoopConfig",
    "LoadgenResult",
    "run_open_loop",
    "run_closed_loop",
]

#: Private LBA area per tenant, in blocks (mirrors the fio driver).
TENANT_AREA_BLOCKS = 16_000_000

#: Open-loop admission bound per tenant: keeps memory finite when the
#: offered rate is far past saturation.  Latency is still charged from
#: the intended arrival time, so the knee remains visible.
OPEN_LOOP_INFLIGHT_CAP = 256


@dataclass(frozen=True)
class OpenLoopConfig:
    """Fixed-rate Poisson arrivals, split evenly across tenants."""

    offered_iops: float
    tenants: int = 4
    duration: float = 2e-3
    warmup: float = 0.5e-3
    write_blocks: int = 1
    pattern: str = "rand"  # rand | seq | journal
    durable: bool = False
    seed: int = 1234


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Think-time-bounded closed loops, one per tenant."""

    tenants: int = 4
    queue_depth: int = 1
    #: Mean exponential think time between an ordered completion and the
    #: next submission (0 = back-to-back).
    think_time: float = 0.0
    duration: float = 2e-3
    warmup: float = 0.5e-3
    write_blocks: int = 1
    pattern: str = "rand"
    durable: bool = False
    seed: int = 1234


@dataclass
class LoadgenResult:
    """Measured outcome of one load-generator run."""

    system: str
    tenants: int
    offered_iops: float = 0.0
    ops: int = 0
    elapsed: float = 0.0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    initiator_busy_cores: float = 0.0
    target_busy_cores: float = 0.0

    @property
    def achieved_iops(self) -> float:
        return self.ops / self.elapsed if self.elapsed else 0.0

    @property
    def iops_per_busy_core(self) -> float:
        """§6.1 CPU efficiency at this load point (initiator side)."""
        if self.initiator_busy_cores <= 0:
            return 0.0
        return self.achieved_iops / self.initiator_busy_cores


def _validate(pattern: str, tenants: int) -> None:
    if pattern not in ("rand", "seq", "journal"):
        raise ValueError(f"pattern must be rand|seq|journal, got {pattern!r}")
    if tenants < 1:
        raise ValueError("need at least one tenant")


def _make_lba_chooser(rng: DeterministicRNG, pattern: str, base: int,
                      op_blocks: int):
    """Address generator for one tenant (fio's rand/seq idiom)."""
    cursor = [0]

    def next_lba() -> int:
        if pattern == "seq":
            lba = base + cursor[0]
            cursor[0] += op_blocks
            if cursor[0] > TENANT_AREA_BLOCKS - op_blocks:
                cursor[0] = 0
            return lba
        slot = rng.randint(0, TENANT_AREA_BLOCKS // (op_blocks + 2) - 1)
        return base + slot * (op_blocks + 2)  # +2: never LBA-consecutive

    return next_lba


def _issue_op(stack, core, stream, next_lba, config):
    """Generator: issue one workload op; returns (events, nops)."""
    if config.pattern == "journal":
        lba = next_lba()
        e1 = yield from stack.write_ordered(
            core, stream, lba=lba, nblocks=2, end_of_group=True, kick=False,
        )
        e2 = yield from stack.write_ordered(
            core, stream, lba=lba + 2, nblocks=1, end_of_group=True,
            flush=config.durable, kick=True,
        )
        return [e1, e2], 2
    done = yield from stack.write_ordered(
        core, stream, lba=next_lba(), nblocks=config.write_blocks,
        end_of_group=True, flush=config.durable,
    )
    return [done], 1


def _finish(result: LoadgenResult, cluster, config) -> LoadgenResult:
    result.elapsed = config.duration
    result.initiator_busy_cores = cluster.initiator_busy_cores(config.duration)
    result.target_busy_cores = cluster.target_busy_cores(config.duration)
    return result


def run_open_loop(cluster, stack, config: OpenLoopConfig) -> LoadgenResult:
    """Run a fixed-rate Poisson workload to the end of its window."""
    _validate(config.pattern, config.tenants)
    if config.offered_iops <= 0:
        raise ValueError("offered_iops must be > 0")
    env: Environment = cluster.env
    result = LoadgenResult(system=stack.name, tenants=config.tenants,
                           offered_iops=config.offered_iops)
    end_time = config.warmup + config.duration
    op_blocks = 3 if config.pattern == "journal" else config.write_blocks
    per_tenant_rate = config.offered_iops / config.tenants

    def watch(arrival, nops, tracker):
        yield tracker
        if config.warmup <= env.now <= end_time:
            result.ops += nops
            if arrival >= config.warmup:
                result.latency.record(env.now - arrival)

    def tenant_body(tenant: int):
        rng = DeterministicRNG(config.seed).fork(f"loadgen-open{tenant}")
        core = cluster.initiator.cpus.pick(tenant)
        next_lba = _make_lba_chooser(
            rng.fork("lba"), config.pattern,
            tenant * TENANT_AREA_BLOCKS, op_blocks,
        )
        arrival = 0.0
        inflight: List = []
        while True:
            arrival += rng.expovariate(per_tenant_rate)
            if arrival >= end_time:
                return
            if arrival > env.now:
                yield env.timeout(arrival - env.now)
            # (if arrival <= now we are backlogged: issue immediately,
            # charging the queueing delay to this op's latency)
            events, nops = yield from _issue_op(
                stack, core, tenant, next_lba, config
            )
            tracker = env.all_of(events)
            env.process(watch(arrival, nops, tracker))
            inflight.append(tracker)
            while len(inflight) >= OPEN_LOOP_INFLIGHT_CAP:
                yield env.any_of(inflight)
                inflight = [t for t in inflight if not t.triggered]

    def measurement():
        yield env.timeout(config.warmup)
        cluster.start_cpu_window()
        yield env.timeout(config.duration)
        cluster.stop_cpu_window()

    env.process(measurement())
    for tenant in range(config.tenants):
        env.process(tenant_body(tenant))
    env.run(until=end_time)
    return _finish(result, cluster, config)


def run_closed_loop(cluster, stack, config: ClosedLoopConfig) -> LoadgenResult:
    """Run think-time-bounded closed loops to the end of their window."""
    _validate(config.pattern, config.tenants)
    if config.queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    env: Environment = cluster.env
    result = LoadgenResult(system=stack.name, tenants=config.tenants)
    end_time = config.warmup + config.duration
    op_blocks = 3 if config.pattern == "journal" else config.write_blocks

    def watch(issued_at, nops, tracker):
        yield tracker
        if config.warmup <= env.now <= end_time:
            result.ops += nops
            if issued_at >= config.warmup:
                result.latency.record(env.now - issued_at)

    def tenant_body(tenant: int):
        rng = DeterministicRNG(config.seed).fork(f"loadgen-closed{tenant}")
        core = cluster.initiator.cpus.pick(tenant)
        next_lba = _make_lba_chooser(
            rng.fork("lba"), config.pattern,
            tenant * TENANT_AREA_BLOCKS, op_blocks,
        )
        inflight: List = []
        while env.now < end_time:
            issued_at = env.now
            events, nops = yield from _issue_op(
                stack, core, tenant, next_lba, config
            )
            tracker = env.all_of(events)
            env.process(watch(issued_at, nops, tracker))
            inflight.append(tracker)
            while len(inflight) >= config.queue_depth:
                head = inflight.pop(0)
                if not head.triggered:
                    yield head
            if config.think_time > 0:
                yield env.timeout(rng.expovariate(1.0 / config.think_time))

    def measurement():
        yield env.timeout(config.warmup)
        cluster.start_cpu_window()
        yield env.timeout(config.duration)
        cluster.stop_cpu_window()

    env.process(measurement())
    for tenant in range(config.tenants):
        env.process(tenant_body(tenant))
    env.run(until=end_time)
    return _finish(result, cluster, config)
