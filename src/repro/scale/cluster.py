"""Sharded multi-initiator cluster: N hosts fan in to M targets.

:class:`ScaleOutCluster` generalizes :class:`repro.cluster.Cluster` the
same way :class:`repro.multi.MultiInitiatorCluster` does — shared target
servers, per-initiator NIC/driver/connections — but is *system-agnostic*:
instead of baking in a :class:`~repro.core.api.RioDevice` per node, it
assembles bare :class:`ScaleNode` hosts and lets :class:`ShardedStack`
put any compared system (rio / horae / linux / barrier / orderless) on
top.  It also threads the scale-out plane's steering knobs down the
stack: ``steering`` selects the target- and initiator-side
IRQ/completion steering policy (:data:`repro.hw.cpu.STEERING_POLICIES`),
``qp_steering`` the block-queue-to-QP mapping.

Stream sharding works by *congruence*, not translation: global stream
``s`` is owned by node ``s % N``, so each node's stack only ever sees
stream ids from its own residue class — disjoint across nodes by
construction, which is all the shared targets' per-stream ordering state
needs (§4.5: streams are fully independent).  Rio is the one exception:
its sequencer indexes streams densely, so the facade maps ``s`` to the
node-local index ``s // N`` and the node's
:class:`~repro.core.api.RioDevice` (configured with a disjoint
wire-stream range from the :class:`~repro.multi.StreamDirectory`)
translates to the wire.

Recovery after a full-cluster crash runs once, from node 0: the PMR
attribute logs on the shared targets are keyed by global wire stream id,
so the coordinator's scan covers every initiator's streams (§4.9; proven
by ``tests/core/test_multi_initiator.py`` and the multi-initiator cells
of the ``repro check`` matrix).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.block.request import Bio, WriteFlags
from repro.block.volume import LogicalVolume
from repro.core.api import RioDevice
from repro.hw.cpu import Core, CpuSet
from repro.hw.nic import Nic
from repro.hw.pmr import PersistentMemoryRegion
from repro.hw.ssd import NvmeSsd, SsdProfile
from repro.multi import StreamDirectory
from repro.net.fabric import Fabric
from repro.nvmeof.costs import DEFAULT_COSTS, CpuCosts
from repro.nvmeof.initiator import (
    DriverHardening,
    InitiatorDriver,
    InitiatorServer,
    RemoteNamespace,
)
from repro.nvmeof.target import TargetServer
from repro.sim.engine import Environment
from repro.sim.rng import DeterministicRNG

__all__ = ["ScaleNode", "ScaleOutCluster", "ShardedStack"]

#: Systems whose per-node stack is a RioDevice with dense local streams.
_RIO_SYSTEMS = ("rio", "rio-nomerge")


class _NodeClusterView:
    """Adapter giving one node's stack its per-initiator cluster view."""

    def __init__(self, scale: "ScaleOutCluster", server: InitiatorServer,
                 driver: InitiatorDriver, namespaces: List[RemoteNamespace]):
        self.env = scale.env
        self.costs = scale.costs
        self.initiator = server
        self.driver = driver
        self.targets = scale.targets
        self.namespaces = namespaces

    def volume(self, namespaces=None, stripe_blocks: int = 1) -> LogicalVolume:
        return LogicalVolume(namespaces or self.namespaces, stripe_blocks)


class ScaleNode:
    """One initiator host: CPU set, NIC, driver, connections."""

    def __init__(
        self,
        index: int,
        server: InitiatorServer,
        driver: InitiatorDriver,
        namespaces: List[RemoteNamespace],
        view: _NodeClusterView,
    ):
        self.index = index
        self.server = server
        self.driver = driver
        self.namespaces = namespaces
        self.view = view

    @property
    def cpus(self) -> CpuSet:
        return self.server.cpus

    def __repr__(self) -> str:
        return f"<ScaleNode {self.index} ({self.server.name})>"


class ScaleOutCluster:
    """N initiator hosts sharing M target servers over one fabric."""

    def __init__(
        self,
        env: Environment,
        target_ssds: Sequence[Sequence[SsdProfile]],
        num_initiators: int = 2,
        initiator_cores: int = 36,
        target_cores: int = 36,
        num_qps: Optional[int] = None,
        costs: CpuCosts = DEFAULT_COSTS,
        seed: int = 42,
        transport: str = "rdma",
        steering: str = "pin",
        qp_steering: str = "pin",
        hardening: Optional[DriverHardening] = None,
    ):
        if num_initiators < 1:
            raise ValueError("need at least one initiator host")
        if not target_ssds:
            raise ValueError("need at least one target server")
        self.env = env
        self.costs = costs
        self.transport = transport
        self.steering = steering
        self.num_initiators = num_initiators
        self.rng = DeterministicRNG(seed)
        self.fabric = Fabric(env, self.rng.fork("fabric"), transport=transport)
        self.directory = StreamDirectory()
        num_qps = num_qps or initiator_cores

        # ---- shared target servers ----
        self.targets: List[TargetServer] = []
        for tid, profiles in enumerate(target_ssds):
            if not profiles:
                raise ValueError(f"target {tid} has no SSDs")
            name = f"target{tid}"
            ssds = [
                NvmeSsd(env, profile, rng=self.rng.fork(f"{name}-ssd{sid}"),
                        name=f"{name}-ssd{sid}")
                for sid, profile in enumerate(profiles)
            ]
            self.targets.append(
                TargetServer(
                    env,
                    name=name,
                    cpus=CpuSet(env, target_cores, name=f"{name}-cpu"),
                    nic=Nic(env, name=f"{name}-nic"),
                    ssds=ssds,
                    pmr=PersistentMemoryRegion(env, name=f"{name}-pmr"),
                    costs=costs,
                    steering=steering,
                )
            )

        # ---- per-initiator hosts ----
        self.nodes: List[ScaleNode] = []
        for iid in range(num_initiators):
            server = InitiatorServer(
                env,
                name=f"initiator{iid}",
                cpus=CpuSet(env, initiator_cores, name=f"initiator{iid}-cpu"),
                nic=Nic(env, name=f"initiator{iid}-nic"),
            )
            driver = InitiatorDriver(
                env, server, costs=costs, hardening=hardening,
                steering=steering,
            )
            namespaces: List[RemoteNamespace] = []
            for target in self.targets:
                qps = self.fabric.connect(server.nic, target.nic, num_qps)
                initiator_eps = [qp.endpoints[0] for qp in qps]
                target_eps = [qp.endpoints[1] for qp in qps]
                target.attach_connection(target_eps)
                driver.register_connection(initiator_eps)
                for sid in range(len(target.ssds)):
                    namespaces.append(
                        RemoteNamespace(target, nsid=sid,
                                        endpoints=initiator_eps,
                                        qp_steering=qp_steering)
                    )
            view = _NodeClusterView(self, server, driver, namespaces)
            self.nodes.append(ScaleNode(iid, server, driver, namespaces, view))

    # -- robustness plane --------------------------------------------------

    def attach_health(self, config=None) -> List[Any]:
        """Install a :class:`~repro.robust.health.HealthMonitor` on every
        node's driver (one monitor per node: health is judged from each
        initiator's own completion stream).  Returns the monitors,
        node-indexed."""
        from repro.robust.health import HealthMonitor

        monitors = []
        for node in self.nodes:
            monitor = HealthMonitor(config, env=self.env)
            node.driver.health = monitor
            monitors.append(monitor)
        return monitors

    def install_admission(self, config=None) -> None:
        """Install target-side admission control on every shared target."""
        for target in self.targets:
            target.install_admission(config)

    def healthy_target_for(self, node_index: int, now: float) -> int:
        """Index of the healthiest target by node ``node_index``'s monitor
        (for steering *unordered* flows; ordered streams cannot migrate).
        Falls back to target 0 when no monitor is attached."""
        driver = self.nodes[node_index].driver
        if driver.health is None:
            return 0
        names = [t.name for t in self.targets]
        best = driver.health.pick(names, now)
        return names.index(best)

    # -- single-initiator compatibility surface ----------------------------
    # The crash oracle's workload/recovery drivers address "the
    # initiator"; on a scale-out cluster that is the coordinator, node 0.

    @property
    def initiator(self) -> InitiatorServer:
        return self.nodes[0].server

    @property
    def driver(self) -> InitiatorDriver:
        return self.nodes[0].driver

    @property
    def namespaces(self) -> List[RemoteNamespace]:
        return self.nodes[0].namespaces

    def volume(self, namespaces=None, stripe_blocks: int = 1) -> LogicalVolume:
        return LogicalVolume(namespaces or self.nodes[0].namespaces,
                             stripe_blocks)

    # -- measurement helpers -----------------------------------------------

    def start_cpu_window(self) -> None:
        for node in self.nodes:
            node.cpus.start_window()
        for target in self.targets:
            target.cpus.start_window()

    def stop_cpu_window(self) -> None:
        for node in self.nodes:
            node.cpus.stop_window()
        for target in self.targets:
            target.cpus.stop_window()

    def initiator_busy_cores(self, elapsed: float) -> float:
        """Busy cores summed over every initiator host."""
        return sum(node.cpus.busy_cores(elapsed) for node in self.nodes)

    def target_busy_cores(self, elapsed: float) -> float:
        return sum(t.cpus.busy_cores(elapsed) for t in self.targets)


class ShardedStack:
    """One ordered-stack facade over per-node stacks of a scale cluster.

    Looks like an :class:`~repro.systems.base.OrderedStack` (so the crash
    oracle's workloads and the load generators drive it unchanged) but
    routes every submission to the owning node: global stream ``s`` goes
    to node ``s % N``, on that node's core of the caller's core index, so
    CPU work lands on — and is accounted to — the host that actually
    issues the I/O.
    """

    def __init__(
        self,
        cluster: ScaleOutCluster,
        system: str,
        num_streams: int,
    ):
        from repro.systems.base import make_stack

        if num_streams < 1:
            raise ValueError("need at least one stream")
        self.cluster = cluster
        self.env = cluster.env
        self.system = system
        self.num_streams = num_streams
        self.name = f"sharded-{system}"
        n = cluster.num_initiators
        self.stacks: List[Any] = []
        self._submit_fns: List[Any] = []
        for node in cluster.nodes:
            if system in _RIO_SYSTEMS:
                # Dense local stream indices 0..k-1; the directory hands
                # the node a disjoint wire-stream range.
                owned = len(range(node.index, num_streams, n))
                stream_base = cluster.directory.allocate(max(owned, 1))
                device = RioDevice(
                    node.view,
                    num_streams=max(owned, 1),
                    stream_base=stream_base,
                    merging_enabled=(system != "rio-nomerge"),
                )
                self.stacks.append(device)
                self._submit_fns.append(device.submit)
            else:
                stack = make_stack(system, node.view,
                                   num_streams=num_streams)
                self.stacks.append(stack)
                self._submit_fns.append(stack.submit_ordered)
        self.volume = cluster.nodes[0].view.volume()
        if hasattr(self.stacks[0], "recovery"):
            # Coordinator recovery (node 0) covers all global streams:
            # the targets' PMR logs are keyed by wire stream id.
            self.recovery = self.stacks[0].recovery

    def node_for(self, stream_id: int) -> ScaleNode:
        return self.cluster.nodes[stream_id % self.cluster.num_initiators]

    def local_stream(self, stream_id: int) -> int:
        """The stream id the owning node's stack sees."""
        if self.system in _RIO_SYSTEMS:
            return stream_id // self.cluster.num_initiators
        return stream_id

    def submit_ordered(
        self,
        core: Core,
        bio: Bio,
        end_of_group: bool = True,
        flush: bool = False,
        kick: Optional[bool] = None,
    ):
        node = self.node_for(bio.stream_id)
        bio.stream_id = self.local_stream(bio.stream_id)
        node_core = node.cpus.pick(core.index)
        submit = self._submit_fns[node.index]
        return (yield from submit(node_core, bio, end_of_group, flush, kick))

    def write_ordered(
        self,
        core: Core,
        stream_id: int,
        lba: int,
        nblocks: int,
        payload: Optional[List[Any]] = None,
        end_of_group: bool = True,
        flush: bool = False,
        ipu: bool = False,
        kick: Optional[bool] = None,
        deadline: Optional[float] = None,
        tenant: Optional[int] = None,
    ):
        bio = Bio(
            op="write",
            lba=lba,
            nblocks=nblocks,
            payload=payload,
            stream_id=stream_id,
            flags=WriteFlags(ipu=ipu),
            deadline=deadline,
            tenant=tenant,
        )
        return (yield from self.submit_ordered(core, bio, end_of_group,
                                               flush, kick))
