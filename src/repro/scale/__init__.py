"""Scale-out plane: sharded multi-initiator clusters + load generators.

The paper's headline claim is CPU-efficient ordering *at scale* (§3.2,
§6, Figs. 10-12); this package is the fan-in testbed that claim is
exercised on:

* :mod:`repro.scale.cluster` — :class:`ScaleOutCluster` (N initiator
  hosts, each with its own CPU set, block layer and NVMe-oF driver,
  fanning into M shared targets over one fabric, with per-core
  connection sharding and IRQ/completion steering) and
  :class:`ShardedStack` (one ordered-stack facade over the per-node
  stacks, routing global streams to their owning node).
* :mod:`repro.scale.loadgen` — open-loop (fixed-rate Poisson) and
  closed-loop (think-time-bounded) per-tenant load generators that
  drive a :class:`ShardedStack` and record completion latencies.

The saturation experiment over this plane lives in
:mod:`repro.harness.saturate` (``repro saturate``).
"""

from repro.scale.cluster import ScaleNode, ScaleOutCluster, ShardedStack
from repro.scale.loadgen import (
    ClosedLoopConfig,
    LoadgenResult,
    OpenLoopConfig,
    run_closed_loop,
    run_open_loop,
)

__all__ = [
    "ScaleNode",
    "ScaleOutCluster",
    "ShardedStack",
    "OpenLoopConfig",
    "ClosedLoopConfig",
    "LoadgenResult",
    "run_open_loop",
    "run_closed_loop",
]
