"""Rio as an :class:`~repro.systems.base.OrderedStack` (adapter).

All the machinery lives in :mod:`repro.core`; this adapter only maps the
common stack interface onto :class:`repro.core.api.RioDevice` so the
experiment harness, the file systems and the workloads can switch systems
by name.  ``merging_enabled=False`` gives the paper's "Rio w/o merge"
ablation (Figure 12); ``qp_affinity=False`` ablates Principle 2.
"""

from __future__ import annotations

from typing import Optional

from repro.block.request import Bio
from repro.cluster import Cluster
from repro.core.api import RioDevice
from repro.hw.cpu import Core
from repro.systems.base import OrderedStack

__all__ = ["RioStack"]


class RioStack(OrderedStack):
    name = "rio"

    def __init__(
        self,
        cluster: Cluster,
        volume=None,
        num_streams: Optional[int] = None,
        merging_enabled: bool = True,
        qp_affinity: bool = True,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.device = RioDevice(
            cluster,
            volume=volume,
            num_streams=num_streams,
            merging_enabled=merging_enabled,
            qp_affinity=qp_affinity,
        )
        if not merging_enabled:
            self.name = "rio-nomerge"
        self.volume = self.device.volume
        self.block_layer = self.device.block_layer

    def submit_ordered(
        self,
        core: Core,
        bio: Bio,
        end_of_group: bool = True,
        flush: bool = False,
        kick: Optional[bool] = None,
    ):
        return (
            yield from self.device.submit(core, bio, end_of_group, flush, kick)
        )

    # Recovery passthroughs (§4.4) — used by the recovery benchmark.

    def recovery(self):
        return self.device.recovery()

    @property
    def sequencer(self):
        return self.device.sequencer

    @property
    def scheduler(self):
        return self.device.scheduler
