"""A BarrierFS-style order-preserving stack (§2.2 related work).

BarrierFS [FAST'18] keeps *every layer* order-preserving: the block layer
schedules ordered writes FIFO, and a barrier-enabled SSD persists barrier
writes in submission order, so neither completion waits nor FLUSH commands
are needed.  The paper could not evaluate it ("we do not have
barrier-enabled storage and can not control the behavior of the NIC",
§3.1) but explains why the approach scales poorly on modern multi-queue
hardware: "to agree on a specific order, requests from different cores
contend on the single hardware queue, which limits the multicore
scalability", and SSDs cannot coordinate order across multiple targets.

The simulator *can* provide a barrier-enabled SSD and an order-preserving
NIC path, so this stack implements the approach faithfully to the
architecture's constraints:

* all ordered writes — from every stream — funnel through **one software
  dispatch queue** onto **one NIC queue pair** (the only way to present a
  single total order to the device);
* writes carry the ``barrier`` flag: the SSD persists them in submission
  order through a serialized barrier lane (no FLUSH, no completion wait);
* only a **single target server** can be supported (SSDs cannot agree on
  cross-device order — exactly the paper's §2.2 criticism).

The result reproduces the argument rather than a number: barrier ordering
is cheap at one thread and stops scaling almost immediately.
"""

from __future__ import annotations

from typing import Optional

from repro.block.mq import BlockLayer
from repro.block.request import Bio
from repro.cluster import Cluster
from repro.hw.cpu import Core
from repro.sim.engine import Event
from repro.sim.resources import Store
from repro.systems.base import OrderedStack

__all__ = ["BarrierStack"]


class BarrierStack(OrderedStack):
    name = "barrier"

    def __init__(
        self,
        cluster: Cluster,
        volume=None,
        num_streams: Optional[int] = None,
        merging_enabled: bool = True,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.volume = volume if volume is not None else cluster.volume()
        if len(self.volume.namespaces) > 1:
            raise ValueError(
                "the barrier interface cannot order writes across devices "
                "or target servers — 'SSDs are unable to communicate with "
                "each other' (§2.2); use a single-SSD volume"
            )
        self.block_layer = BlockLayer(
            self.env,
            cluster.driver,
            self.volume,
            costs=cluster.costs,
            merging_enabled=merging_enabled,
        )
        #: The single FIFO dispatch queue all cores contend on.
        self._queue: Store = Store(self.env)
        self.env.process(self._dispatcher())
        self.dispatched = 0

    def submit_ordered(
        self,
        core: Core,
        bio: Bio,
        end_of_group: bool = True,
        flush: bool = False,
        kick: Optional[bool] = None,
    ):
        bio.flags.barrier = True
        if flush:
            bio.flags.flush = True
        completion = bio.make_completion(self.env)
        yield from core.run(0.05e-6)  # enqueue onto the shared queue
        self._queue.put((core, bio))
        return completion

    def _dispatcher(self):
        """The single order-preserving dispatch context (one hw queue)."""
        dispatch_core = self.cluster.initiator.cpus.pick(0)
        while True:
            _submitter, bio = yield self._queue.get()
            # FIFO through QP 0 — the single queue every request agrees on.
            fragments = self.block_layer.split_bio(bio)
            bio._pending_fragments = len(fragments)  # type: ignore[attr-defined]
            for ns, request in fragments:
                request.qp_index = 0
                yield from self.block_layer.dispatch(dispatch_core, ns, request)
                self.dispatched += 1
