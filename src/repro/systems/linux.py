"""Ordered Linux NVMe over RDMA: synchronous execution for storage order.

The stock stack has no ordering primitive, so upper layers enforce order
the expensive way (§2.2): the next ordered group is issued only after the
previous group's data blocks flowed through the whole stack and were made
durable — a completion wait, plus a FLUSH command on SSDs with a volatile
write cache.  On PLP SSDs the block layer drops the FLUSH but the
synchronous transfer wait remains (Lesson 2); on flash the per-group FLUSH
dominates everything (Lesson 1).

Each stream is an independent ordered chain (threads in the benchmarks
write private areas), and the synchronous wait charges the context-switch
pair that blocking costs the submitting core (Lesson 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.block.mq import BlockLayer, Plug
from repro.block.request import Bio
from repro.cluster import Cluster
from repro.hw.cpu import Core
from repro.sim.engine import Event
from repro.systems.base import OrderedStack

__all__ = ["LinuxOrderedStack"]


@dataclass
class _StreamChain:
    """Per-stream serialization state."""

    group_bios: List[Bio] = field(default_factory=list)
    group_events: List[Event] = field(default_factory=list)
    chain_tail: Optional[Event] = None  # completion of the previous group


class LinuxOrderedStack(OrderedStack):
    name = "linux"

    def __init__(
        self,
        cluster: Cluster,
        volume=None,
        num_streams: Optional[int] = None,
        merging_enabled: bool = True,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.volume = volume if volume is not None else cluster.volume()
        self.block_layer = BlockLayer(
            self.env,
            cluster.driver,
            self.volume,
            costs=cluster.costs,
            merging_enabled=merging_enabled,
        )
        self._chains: Dict[int, _StreamChain] = {}
        #: Devices with volatile caches need a FLUSH per group for ordering.
        self._needs_flush = any(
            not ns.target.ssds[ns.nsid].profile.plp
            for ns in self.volume.namespaces
        )

    def submit_ordered(
        self,
        core: Core,
        bio: Bio,
        end_of_group: bool = True,
        flush: bool = False,
        kick: Optional[bool] = None,
    ):
        """Stage the group; at the boundary, chain it behind its
        predecessor: wait, dispatch, wait for completion (+FLUSH)."""
        chain = self._chains.setdefault(bio.stream_id, _StreamChain())
        if flush:
            bio.flags.flush = True
        event = Event(self.env)
        event.bio = bio  # error/status visibility for callers
        chain.group_bios.append(bio)
        chain.group_events.append(event)
        yield from core.run(0.05e-6)  # bookkeeping
        if end_of_group:
            bios, chain.group_bios = chain.group_bios, []
            events, chain.group_events = chain.group_events, []
            predecessor = chain.chain_tail
            group_done = Event(self.env)
            chain.chain_tail = group_done
            self.env.process(
                self._run_group(core, bios, events, predecessor, group_done)
            )
        return event

    def _run_group(
        self,
        core: Core,
        bios: List[Bio],
        events: List[Event],
        predecessor: Optional[Event],
        group_done: Event,
    ):
        # Synchronous execution: wait until the previous group is durable.
        if predecessor is not None and not predecessor.triggered:
            yield predecessor
            # The submitting thread slept and was woken: context switch.
            yield from core.context_switch()

        # The final write of the group carries the ordering FLUSH on
        # volatile-cache devices (and any explicitly requested flush).
        if self._needs_flush:
            bios[-1].flags.flush = True

        plug = Plug()
        completions = []
        for bio in bios:
            done = yield from self.block_layer.submit_bio(core, bio, plug=plug)
            completions.append(done)
        yield from self.block_layer.finish_plug(core, plug)
        yield self.env.all_of(completions)
        yield from core.context_switch()

        for event in events:
            if not event.triggered:
                event.succeed()
        group_done.succeed()
