"""HORAE [OSDI'20] extended to NVMe over RDMA (§6.1 "Compared systems").

HORAE separates ordering control from the request flow: before a group's
data blocks may be dispatched, its *ordering metadata* must be persisted in
the target's PMR through a dedicated control path.  Per the paper's
extension (§6.1): the control path is built atop the initiator driver and
uses two-sided RDMA SEND operations; the target driver forwards the
metadata to PMR by a persistent MMIO write.

The control path is **synchronous and serialized per stream** — the next
group's control write starts only after the previous control write is
acknowledged (§3.2 Lesson 2: "the control path is executed synchronously
before the data path").  After control, data blocks flow asynchronously
(merging allowed), which is why HORAE beats Linux but trails Rio: every
group still pays a network round trip plus PMR write of control latency,
and the extra SENDs cost CPU on both sides.

Durability: like Rio, HORAE removes the per-group FLUSH (its recovery uses
the control-path metadata); an explicitly requested flush (fsync) is still
honored on volatile-cache devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.block.mq import BlockLayer, Plug
from repro.block.request import Bio
from repro.cluster import Cluster
from repro.hw.cpu import Core
from repro.net.fabric import Message
from repro.nvmeof.target import TargetContext, TargetPolicy
from repro.sim.engine import Event
from repro.systems.base import OrderedStack

__all__ = ["HoraeStack", "HoraeTargetPolicy", "ORDERING_METADATA_SIZE"]

#: HORAE's ordering metadata is smaller than Rio's attribute (§6.5).
ORDERING_METADATA_SIZE = 16


class HoraeTargetPolicy(TargetPolicy):
    """Target-side control path: forward ordering metadata to PMR."""

    def __init__(self):
        self.target = None
        self._next_offset = 0
        self.control_writes = 0

    def attach(self, target) -> None:
        self.target = target

    def on_control(self, ctx: TargetContext, message: Message):
        if message.kind == "horae_ctrl":
            rpc_id, metadata = message.payload
            offset = self._next_offset
            self._next_offset = (
                offset + ORDERING_METADATA_SIZE
            ) % (ctx.pmr.size - ORDERING_METADATA_SIZE)
            # Persistent MMIO write of the ordering metadata (§6.1).
            yield from ctx.pmr.persist(
                ctx.core, offset, ORDERING_METADATA_SIZE, metadata
            )
            self.control_writes += 1
            yield from ctx.core.run(self.target.costs.response_post)
            ctx.endpoint.post_send(
                Message(kind="rpc_resp", payload=(rpc_id, True), nbytes=16)
            )
        elif message.kind == "horae_read_meta":
            rpc_id, _payload = message.payload
            records = [
                record
                for record in self.target.pmr.records().values()
                if isinstance(record, dict) and "epoch" in record
            ]
            yield from ctx.core.run(0.04e-6 * max(1, len(records)))
            ctx.endpoint.post_send(
                Message(
                    kind="rpc_resp",
                    payload=(rpc_id, records),
                    nbytes=max(
                        ORDERING_METADATA_SIZE,
                        ORDERING_METADATA_SIZE * len(records),
                    ),
                )
            )
        elif message.kind == "horae_discard":
            rpc_id, extents = message.payload
            for nsid, lba, nblocks in extents:
                ssd = self.target.ssds[nsid]
                yield from ctx.core.run(0.2e-6)
                yield ctx.env.timeout(2e-6)
                ssd.discard(lba, nblocks)
            ctx.endpoint.post_send(
                Message(kind="rpc_resp", payload=(rpc_id, len(extents)),
                        nbytes=16)
            )

    def on_restart(self) -> None:
        self._next_offset = 0


@dataclass
class _HoraeStream:
    group_bios: List[Bio] = field(default_factory=list)
    group_events: List[Event] = field(default_factory=list)
    #: Serialization point: the previous group's control-path completion.
    control_tail: Optional[Event] = None
    epoch: int = 0


class HoraeStack(OrderedStack):
    name = "horae"

    def __init__(
        self,
        cluster: Cluster,
        volume=None,
        num_streams: Optional[int] = None,
        merging_enabled: bool = True,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.volume = volume if volume is not None else cluster.volume()
        self.block_layer = BlockLayer(
            self.env,
            cluster.driver,
            self.volume,
            costs=cluster.costs,
            merging_enabled=merging_enabled,
        )
        self.driver = cluster.driver
        self._streams: Dict[int, _HoraeStream] = {}
        self.policies: List[HoraeTargetPolicy] = []
        for target in self.volume.targets():
            if isinstance(target.policy, HoraeTargetPolicy):
                # Shared target (multi-initiator scale-out): reuse the
                # installed policy so another initiator's PMR ring offset
                # is not reset.  Correct because all cross-group state is
                # keyed per stream and initiators own disjoint stream ids.
                self.policies.append(target.policy)
                continue
            policy = HoraeTargetPolicy()
            target.install_policy(policy)
            self.policies.append(policy)
        self._needs_flush = any(
            not ns.target.ssds[ns.nsid].profile.plp
            for ns in self.volume.namespaces
        )

    def submit_ordered(
        self,
        core: Core,
        bio: Bio,
        end_of_group: bool = True,
        flush: bool = False,
        kick: Optional[bool] = None,
    ):
        stream = self._streams.setdefault(bio.stream_id, _HoraeStream())
        if flush and self._needs_flush:
            bio.flags.flush = True
        event = Event(self.env)
        event.bio = bio  # error/status visibility for callers
        stream.group_bios.append(bio)
        stream.group_events.append(event)
        yield from core.run(0.05e-6)
        if end_of_group:
            bios, stream.group_bios = stream.group_bios, []
            events, stream.group_events = stream.group_events, []
            predecessor = stream.control_tail
            control_done = Event(self.env)
            stream.control_tail = control_done
            stream.epoch += 1
            self.env.process(
                self._run_group(
                    core, bio.stream_id, stream.epoch, bios, events,
                    predecessor, control_done,
                )
            )
        return event

    # ------------------------------------------------------------------

    def _fragment_map(self, bios: List[Bio]):
        """Per involved target: control endpoint + device-local extents.

        Alongside each extent the control path carries the per-block
        content checksums (HORAE's write verification material): recovery
        validates an epoch by *reading its data back and comparing*, not
        by asking whether the LBA holds anything durable — on a used
        (prefilled) drive every LBA does, which proves nothing about
        this epoch.  ``None`` when the workload carries no payload.
        """
        endpoints = {}
        extents: Dict[str, List] = {}
        checksums: Dict[str, List] = {}
        for bio in bios:
            for ns, request in self.block_layer.split_bio(bio):
                endpoints.setdefault(ns.target.name, ns.endpoints[0])
                extents.setdefault(ns.target.name, []).append(
                    (ns.nsid, request.lba, request.nblocks)
                )
                checksums.setdefault(ns.target.name, []).append(
                    tuple(request.payload)
                    if request.payload is not None
                    else None
                )
        return endpoints, extents, checksums

    def _run_group(
        self,
        core: Core,
        stream_id: int,
        epoch: int,
        bios: List[Bio],
        events: List[Event],
        predecessor: Optional[Event],
        control_done: Event,
    ):
        # ---- Control path: synchronous, serialized per stream ----
        if predecessor is not None and not predecessor.triggered:
            yield predecessor
            yield from core.context_switch()
        endpoints, extents, checksums = self._fragment_map(bios)
        waiters = []
        for target_name, endpoint in endpoints.items():
            metadata = {
                "stream": stream_id,
                "epoch": epoch,
                "extents": extents[target_name],
                "checksums": checksums[target_name],
                "target": target_name,
            }
            waiter = yield from self.driver.rpc(
                core, endpoint, "horae_ctrl", metadata,
                nbytes=ORDERING_METADATA_SIZE,
            )
            waiters.append(waiter)
        for waiter in waiters:
            yield waiter
        # Control metadata durable everywhere: the data path may proceed —
        # and, crucially, so may the *next* group's control path.
        control_done.succeed()

        # ---- Data path: asynchronous ----
        plug = Plug()
        completions = []
        for bio in bios:
            done = yield from self.block_layer.submit_bio(core, bio, plug=plug)
            completions.append(done)
        yield from self.block_layer.finish_plug(core, plug)
        yield self.env.all_of(completions)
        for event in events:
            if not event.triggered:
                event.succeed()

    # ------------------------------------------------------------------
    # Recovery (§6.5)
    # ------------------------------------------------------------------

    def recovery(self) -> "HoraeRecovery":
        return HoraeRecovery(self)


class HoraeRecovery:
    """HORAE's crash recovery: reload ordering metadata, validate the
    in-flight epochs by reading their data blocks, discard the suffix.

    The reload is cheaper than Rio's (16 B metadata vs 32 B attributes and
    no per-server list merge); the data-recovery phase — validation reads
    plus discards — dominates, as in §6.5.
    """

    def __init__(self, stack: "HoraeStack"):
        self.stack = stack

    def _endpoint_for(self, target):
        for ns in self.stack.volume.namespaces:
            if ns.target is target:
                return ns.endpoints[0]
        raise ValueError(f"no namespace on {target.name}")

    @staticmethod
    def _record_durable(target, record: dict) -> bool:
        """One metadata record's extents: does durable media hold *this
        epoch's* data?

        With checksums in the metadata the verdict compares the validation
        read against the epoch's own content — the fix for the
        used-drive hole where ``is_durable`` (does the LBA hold *any*
        durable version?) trivially passes on a prefilled device and a
        torn epoch survives recovery.  Records without checksums (no
        payload modelled) keep the presence check, which is exact on a
        factory-blank drive.
        """
        sums = record.get("checksums") or [None] * len(record["extents"])
        for (nsid, lba, nblocks), expected in zip(record["extents"], sums):
            ssd = target.ssds[nsid]
            if expected is None:
                if not all(
                    ssd.is_durable(block)
                    for block in range(lba, lba + nblocks)
                ):
                    return False
            elif any(
                ssd.durable_payload(lba + i) != expected[i]
                for i in range(nblocks)
            ):
                return False
        return True

    def run_initiator_recovery(self, core):
        """Generator: returns a :class:`repro.core.recovery.RecoveryReport`."""
        from repro.core.recovery import RecoveryReport

        report = RecoveryReport(mode="initiator")
        env = self.stack.env
        started = env.now

        # ---- phase 1: reload ordering metadata ----
        waiters = []
        for target in self.stack.volume.targets():
            endpoint = self._endpoint_for(target)
            waiter = yield from self.stack.driver.rpc(
                core, endpoint, "horae_read_meta", None
            )
            waiters.append(waiter)
        records = []
        for waiter in waiters:
            result = yield waiter
            records.extend(result)
        report.records_scanned = len(records)
        yield from core.run(0.03e-6 * max(1, len(records)))
        report.rebuild_seconds = env.now - started

        # ---- phase 2: validate epochs by reading data, then discard ----
        data_started = env.now
        targets = {t.name: t for t in self.stack.volume.targets()}
        per_stream: Dict[int, List[dict]] = {}
        for record in records:
            per_stream.setdefault(record["stream"], []).append(record)

        # Validation reads: one read per extent, issued concurrently.
        read_events = []
        for record in records:
            target = targets.get(record.get("target"))
            if target is None:
                continue
            for nsid, lba, nblocks in record["extents"]:
                bio = Bio(op="read", lba=0, nblocks=nblocks)
                # Issue the read directly to the right namespace.
                for ns in self.stack.volume.namespaces:
                    if ns.target is target and ns.nsid == nsid:
                        from repro.block.request import BlockRequest

                        request = BlockRequest(op="read", lba=lba,
                                               nblocks=nblocks, bios=[bio])
                        request.qp_index = 0
                        done = yield from self.stack.driver.submit(
                            core, ns, request
                        )
                        read_events.append(done)
                        break
        for event in read_events:
            yield event

        # Verdicts from the validated content; compute per-stream prefixes.
        # An epoch is the *atomic* unit of ordering: with a multi-target
        # volume one epoch leaves one metadata record per involved target,
        # and the epoch is durable only if every record's extents are —
        # validating records individually would let an epoch torn across
        # targets survive on the target whose half happened to persist.
        discards: Dict[str, List] = {}
        for stream_id, stream_records in per_stream.items():
            per_epoch: Dict[int, List[dict]] = {}
            for record in stream_records:
                per_epoch.setdefault(record["epoch"], []).append(record)
            prefix_ok = True
            prefix_epoch = 0
            for epoch in sorted(per_epoch):
                epoch_records = per_epoch[epoch]
                durable = all(
                    targets.get(record.get("target")) is not None
                    and self._record_durable(targets[record["target"]], record)
                    for record in epoch_records
                )
                if prefix_ok and durable:
                    prefix_epoch = epoch
                else:
                    # Beyond the prefix: discard the *whole* epoch on every
                    # involved target, including its durable fragments.
                    prefix_ok = False
                    for record in epoch_records:
                        target = targets.get(record.get("target"))
                        if target is not None:
                            discards.setdefault(target.name, []).extend(
                                record["extents"]
                            )
            report.prefixes[stream_id] = prefix_epoch

        waiters = []
        for target_name, extents in discards.items():
            report.discarded_extents += len(extents)
            endpoint = self._endpoint_for(targets[target_name])
            waiter = yield from self.stack.driver.rpc(
                core, endpoint, "horae_discard", extents,
                nbytes=max(16, 16 * len(extents)),
            )
            waiters.append(waiter)
        for waiter in waiters:
            yield waiter
        report.data_recovery_seconds = env.now - data_started
        return report
