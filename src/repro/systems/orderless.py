"""The orderless stack: stock NVMe over RDMA with no ordering guarantee.

This is the paper's upper bound ("orderless" in Figures 2, 10–12): every
request is dispatched asynchronously the moment it is submitted; nothing
waits for anything.  ``kick=False`` stages requests in a per-stream plug so
the batching experiments (Figures 3 and 12) exercise the stock block-layer
merging.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.block.mq import BlockLayer, Plug
from repro.block.request import Bio
from repro.cluster import Cluster
from repro.hw.cpu import Core
from repro.systems.base import OrderedStack

__all__ = ["OrderlessStack"]


class OrderlessStack(OrderedStack):
    name = "orderless"

    def __init__(
        self,
        cluster: Cluster,
        volume=None,
        num_streams: Optional[int] = None,
        merging_enabled: bool = True,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.volume = volume if volume is not None else cluster.volume()
        self.block_layer = BlockLayer(
            self.env,
            cluster.driver,
            self.volume,
            costs=cluster.costs,
            merging_enabled=merging_enabled,
        )
        self._plugs: Dict[int, Plug] = {}

    def submit_ordered(
        self,
        core: Core,
        bio: Bio,
        end_of_group: bool = True,
        flush: bool = False,
        kick: Optional[bool] = None,
    ):
        """Ordering flags are accepted and ignored — that is the point."""
        if flush:
            bio.flags.flush = True
        if kick is None:
            kick = True  # orderless never withholds dispatch by default
        if not kick:
            plug = self._plugs.setdefault(bio.stream_id, Plug())
            done = yield from self.block_layer.submit_bio(core, bio, plug=plug)
            return done
        plug = self._plugs.pop(bio.stream_id, None)
        if plug is not None:
            done = yield from self.block_layer.submit_bio(core, bio, plug=plug)
            yield from self.block_layer.finish_plug(core, plug)
            return done
        done = yield from self.block_layer.submit_bio(core, bio)
        return done
