"""The compared storage stacks (§6.1 "Compared systems").

Every stack exposes the same interface (:class:`~repro.systems.base.OrderedStack`):
ordered write submission with group boundaries and optional durability.
What differs is *how* order is enforced:

* :class:`~repro.systems.orderless.OrderlessStack` — no ordering guarantee;
  the upper bound every figure normalizes against.
* :class:`~repro.systems.linux.LinuxOrderedStack` — stock Linux NVMe over
  RDMA: the next ordered group is dispatched only after the previous one
  completed (plus a FLUSH on volatile-cache SSDs) — synchronous execution.
* :class:`~repro.systems.horae.HoraeStack` — HORAE [OSDI'20] extended to
  NVMe-oF: a synchronous control path persists ordering metadata in PMR
  before the data path runs asynchronously.
* :class:`~repro.systems.rio.RioStack` — Rio: fully asynchronous I/O
  pipeline with ordering attributes (adapter over
  :class:`repro.core.api.RioDevice`).
"""

from repro.systems.base import OrderedStack, make_stack
from repro.systems.horae import HoraeStack
from repro.systems.linux import LinuxOrderedStack
from repro.systems.orderless import OrderlessStack
from repro.systems.rio import RioStack

__all__ = [
    "OrderedStack",
    "make_stack",
    "OrderlessStack",
    "LinuxOrderedStack",
    "HoraeStack",
    "RioStack",
]
