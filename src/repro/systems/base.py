"""Common interface of the compared storage stacks.

A stack accepts *ordered write requests* grouped into ordered groups (the
unit of storage order, §4.2): requests within a group may be reordered
freely; groups must persist in submission order per stream.  ``flush``
additionally requests durability of the group (the fsync path).

The interface is deliberately the shape of ``rio_submit`` (§4.6) so that
one workload/file-system implementation drives all four systems.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.block.request import Bio, WriteFlags
from repro.hw.cpu import Core
from repro.sim.engine import Event

__all__ = ["OrderedStack", "make_stack"]


class OrderedStack:
    """Abstract ordered block device stack."""

    name = "abstract"

    def submit_ordered(
        self,
        core: Core,
        bio: Bio,
        end_of_group: bool = True,
        flush: bool = False,
        kick: Optional[bool] = None,
    ):
        """Generator: submit one ordered write; returns its completion event.

        The completion event fires when the request's ordering contract is
        satisfied for this stack (for Rio: released in order; for Linux:
        the synchronous chain reached it).  ``kick=False`` stages the
        request for batching where the stack supports it (Figure 12).
        """
        raise NotImplementedError

    def write_ordered(
        self,
        core: Core,
        stream_id: int,
        lba: int,
        nblocks: int,
        payload: Optional[List[Any]] = None,
        end_of_group: bool = True,
        flush: bool = False,
        ipu: bool = False,
        kick: Optional[bool] = None,
        deadline: Optional[float] = None,
    ):
        """Generator: convenience wrapper building the bio inline."""
        bio = Bio(
            op="write",
            lba=lba,
            nblocks=nblocks,
            payload=payload,
            stream_id=stream_id,
            flags=WriteFlags(ipu=ipu),
            deadline=deadline,
        )
        return (yield from self.submit_ordered(core, bio, end_of_group, flush, kick))

    def read(self, core: Core, stream_id: int, lba: int, nblocks: int):
        """Generator: orderless read; returns (event, bio)."""
        bio = Bio(op="read", lba=lba, nblocks=nblocks, stream_id=stream_id)
        done = yield from self.block_layer.submit_bio(core, bio)
        return done, bio


def make_stack(name: str, cluster, volume=None, num_streams: Optional[int] = None,
               **kwargs) -> OrderedStack:
    """Factory used by the experiment harness and the examples."""
    from repro.systems.barrier import BarrierStack
    from repro.systems.horae import HoraeStack
    from repro.systems.linux import LinuxOrderedStack
    from repro.systems.orderless import OrderlessStack
    from repro.systems.rio import RioStack

    stacks = {
        "orderless": OrderlessStack,
        "linux": LinuxOrderedStack,
        "horae": HoraeStack,
        "rio": RioStack,
        "barrier": BarrierStack,
    }
    if name == "rio-nomerge":
        return RioStack(cluster, volume, num_streams, merging_enabled=False,
                        **kwargs)
    if name not in stacks:
        raise ValueError(f"unknown stack: {name!r} (have {sorted(stacks)})")
    return stacks[name](cluster, volume, num_streams, **kwargs)
