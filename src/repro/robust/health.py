"""Per-target health scoring and the gray-failure circuit breaker.

A fail-slow ("gray") target answers every command, just 5–20× slower —
nothing times out cleanly, but every flow pinned to it browns out while
bystanders are fine.  The :class:`HealthMonitor` detects this from the
initiator's own completion stream, with no extra messages:

* a **fast** EWMA (high alpha) tracks recent per-command service latency,
  a **slow** EWMA (tiny alpha) tracks the long-run baseline; their ratio
  is a scale-free fail-slow detector that needs no absolute threshold;
* an **error** EWMA tracks the fraction of non-success completions
  (timeouts, aborts);
* a per-target **circuit breaker** trips open when either signal crosses
  its threshold, half-opens after ``recovery_time`` to let a probe
  command judge recovery, and closes again on a healthy probe.

**Ordering × failover.**  Unordered flows consult :meth:`pick` and steer
to the healthiest target — they can migrate freely.  Ordered streams
cannot (their per-server position history lives on one target), so the
initiator driver fails their submissions fast with ``STATUS_BROWNOUT``
while the breaker is open: an explicit brownout beats an unbounded queue.

Observations are pushed by the initiator driver; the monitor itself
draws no randomness and schedules no events, so attaching it never
perturbs a deterministic run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

__all__ = ["HealthConfig", "TargetHealth", "HealthMonitor"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class HealthConfig:
    """Tuning knobs of the health monitor and circuit breaker."""

    #: Smoothing of the recent-latency estimate (reacts within ~10 cmds).
    fast_alpha: float = 0.3
    #: Smoothing of the long-run baseline.  Must be stiff enough that the
    #: baseline does not chase a fail-slow episode: at 0.02 a hundred sick
    #: completions drag the baseline ~90% of the way to the sick latency
    #: and the fast/slow ratio collapses back under the trip factor before
    #: the breaker fires.  0.005 keeps the baseline within ~5% of healthy
    #: over the ~10 samples the fast EWMA needs to reach the sick level.
    slow_alpha: float = 0.005
    #: Smoothing of the error-fraction estimate.
    error_alpha: float = 0.1
    #: Trip when fast/slow latency exceeds this ratio (fail-slow).
    trip_latency_factor: float = 4.0
    #: Trip when the error EWMA exceeds this fraction (erroring target).
    trip_error_rate: float = 0.5
    #: Minimum observations before the breaker may trip (warm-up guard).
    min_samples: int = 16
    #: Virtual seconds an open breaker waits before half-opening.
    recovery_time: float = 200e-6


@dataclass
class TargetHealth:
    """Mutable health state of one target."""

    fast: Optional[float] = None
    slow: Optional[float] = None
    error_rate: float = 0.0
    samples: int = 0
    state: str = CLOSED
    opened_at: float = 0.0
    trips: int = 0

    @property
    def latency_ratio(self) -> float:
        if self.fast is None or self.slow is None or self.slow <= 0:
            return 1.0
        return self.fast / self.slow

    def score(self) -> float:
        """Higher is sicker: latency inflation plus an error penalty."""
        return self.latency_ratio + 10.0 * self.error_rate


class HealthMonitor:
    """EWMA health scores + circuit breakers for a set of targets."""

    def __init__(self, config: Optional[HealthConfig] = None, env=None):
        self.config = config if config is not None else HealthConfig()
        #: Optional environment for tracing breaker transitions.
        self.env = env
        self._targets: Dict[str, TargetHealth] = {}
        self.observations = 0
        self.failovers = 0

    def target(self, name: str) -> TargetHealth:
        health = self._targets.get(name)
        if health is None:
            health = self._targets[name] = TargetHealth()
        return health

    def states(self) -> Dict[str, str]:
        return {name: h.state for name, h in self._targets.items()}

    # ------------------------------------------------------------------

    def observe(
        self,
        name: str,
        latency: Optional[float],
        ok: bool,
        now: float,
    ) -> None:
        """Fold one completion (or abort: ``latency=None``) into the score."""
        cfg = self.config
        h = self.target(name)
        self.observations += 1
        h.samples += 1
        h.error_rate += cfg.error_alpha * ((0.0 if ok else 1.0) - h.error_rate)
        if latency is not None:
            h.fast = (
                latency if h.fast is None
                else cfg.fast_alpha * latency + (1 - cfg.fast_alpha) * h.fast
            )
            h.slow = (
                latency if h.slow is None
                else cfg.slow_alpha * latency + (1 - cfg.slow_alpha) * h.slow
            )
        if h.state == HALF_OPEN:
            if ok and h.latency_ratio <= cfg.trip_latency_factor:
                self._close(name, h)
            else:
                self._open(name, h, now, cause="probe failed")
        elif h.state == CLOSED and h.samples >= cfg.min_samples:
            if h.latency_ratio > cfg.trip_latency_factor:
                self._open(name, h, now, cause="fail-slow")
            elif h.error_rate > cfg.trip_error_rate:
                self._open(name, h, now, cause="errors")

    def _open(self, name: str, h: TargetHealth, now: float, cause: str) -> None:
        h.state = OPEN
        h.opened_at = now
        h.trips += 1
        if self.env is not None:
            self.env.trace("health", "breaker_open", target=name, cause=cause,
                           ratio=round(h.latency_ratio, 2),
                           error_rate=round(h.error_rate, 3))

    def _close(self, name: str, h: TargetHealth) -> None:
        h.state = CLOSED
        # Re-anchor the recent estimate on the baseline so the stale
        # sick-period latency cannot immediately re-trip the breaker.
        if h.slow is not None:
            h.fast = h.slow
        h.error_rate = 0.0
        if self.env is not None:
            self.env.trace("health", "breaker_close", target=name)

    # ------------------------------------------------------------------

    def is_open(self, name: str, now: float) -> bool:
        """True while the breaker blocks traffic to ``name``.

        An open breaker half-opens once ``recovery_time`` has elapsed:
        the next command is let through as a probe and its completion
        decides between closing and re-opening.
        """
        h = self._targets.get(name)
        if h is None or h.state == CLOSED:
            return False
        if h.state == OPEN:
            if now - h.opened_at >= self.config.recovery_time:
                h.state = HALF_OPEN
                return False
            return True
        return False  # half-open: probe traffic flows

    def pick(self, names: Sequence[str], now: float) -> str:
        """The healthiest target for an unordered flow: any closed-breaker
        target with the lowest score; falls back to the least-sick one
        when every breaker is open (shedding everywhere beats wedging)."""
        if not names:
            raise ValueError("pick() needs at least one candidate")
        healthy = [n for n in names if not self.is_open(n, now)]
        pool = healthy if healthy else list(names)
        best = min(pool, key=lambda n: self.target(n).score())
        if healthy and len(healthy) < len(names):
            self.failovers += 1
        return best
