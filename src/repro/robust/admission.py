"""Target admission control and the initiator-side retry budget.

**Admission** (:class:`AdmissionController`) sits in the target's receive
path, after the RECV completion is processed but *before* the ordering
policy runs and before any data is fetched — a shed command costs the
target one receive and one response, never an RDMA READ or an SSD slot.
Two triggers shed load:

* a **queue-depth cap** per class (ordered vs. unordered) on commands
  admitted and not yet completed;
* a **CoDel-style sojourn threshold**: when the EWMA of time-in-target of
  completing commands exceeds the target sojourn, new arrivals are shed
  even though the queue cap has not been hit (standing-queue detection).

**Ordering × shedding.**  An ordered stream's durable history must stay a
prefix: the target-side gate admits dense per-server positions, so a shed
command can never be "skipped over".  The controller therefore sheds a
whole *suffix*: rejecting position ``p`` of a stream plants a marker, and
every later position of that stream is shed until ``p`` itself is
admitted (the driver re-posts the same command — same CID, same
attribute — after a backoff).  The invariant tested by the property suite
is that an ordered position is only ever admitted when every smaller
position of its stream has been admitted before it.

**Retry budget** (:class:`RetryBudget`) is the initiator-side half: a
token bucket that earns a fixed fraction of a token per *fresh* command
and spends one token per retransmission, so retries are bounded to that
fraction of fresh traffic and synchronized expiries cannot snowball into
a retry storm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.nvmeof.command import OP_WRITE

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "QosClass",
    "RetryBudget",
    "TenantQos",
]

#: Admission classes.
ORDERED = "ordered"
UNORDERED = "unordered"


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning knobs of one target's admission controller."""

    #: Queue-depth cap per class: commands admitted and not yet completed.
    max_inflight_ordered: int = 64
    max_inflight_unordered: int = 64
    #: CoDel-style sojourn threshold in seconds (None disables): shed new
    #: arrivals while the EWMA time-in-target exceeds this.
    sojourn_target: Optional[float] = None
    #: EWMA smoothing factor for the sojourn estimate.
    sojourn_alpha: float = 0.2
    #: Never sojourn-shed below this inflight count — an almost idle
    #: target with one slow command is not a standing queue.
    sojourn_min_inflight: int = 8
    #: Device write-cache pressure (dirty fraction) at or above which new
    #: writes are shed (None disables — the default).  This is the
    #: cache-stall backpressure path: the target feeds the destination
    #: SSD's cache pressure into :meth:`AdmissionController.admit`, so a
    #: write that would park on a full, GC-throttled cache is refused at
    #: the door instead of wedging an admission slot for the whole stall.
    cache_pressure_limit: Optional[float] = None

    def __post_init__(self):
        if self.max_inflight_ordered < 1 or self.max_inflight_unordered < 1:
            raise ValueError("admission caps must be >= 1")
        if self.sojourn_target is not None and self.sojourn_target <= 0:
            raise ValueError("sojourn_target must be positive")
        if not 0.0 < self.sojourn_alpha <= 1.0:
            raise ValueError("sojourn_alpha must be in (0, 1]")
        if self.cache_pressure_limit is not None and not (
            0.0 < self.cache_pressure_limit <= 1.0
        ):
            raise ValueError("cache_pressure_limit must be in (0, 1]")


@dataclass(frozen=True)
class QosClass:
    """QoS parameters of one tenant service class.

    ``weight``    — weighted-fair share: the class's virtual work grows
                    by ``1/weight`` per admitted command, so a heavier
                    class may hold proportionally more of the window.
    ``rate_iops`` — per-*tenant* token-bucket refill rate (None = no
                    per-tenant pacing for members of this class).
    ``burst``     — token-bucket depth in commands.
    """

    name: str
    weight: float = 1.0
    rate_iops: Optional[float] = None
    burst: float = 32.0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("QoS class weight must be positive")
        if self.rate_iops is not None and self.rate_iops <= 0:
            raise ValueError("QoS rate_iops must be positive")
        if self.burst < 1.0:
            raise ValueError("QoS burst must hold >= 1 command")


class TenantQos:
    """Tenant-aware QoS policy for one admission controller.

    Two mechanisms, both deciding *before* any data is fetched:

    * **per-tenant token buckets** — a tenant whose class sets
      ``rate_iops`` may admit at most ``rate x window + burst`` commands
      over any window (shed reason ``"pace"``);
    * **weighted-fair deficits** — each class accumulates virtual work
      at ``1/weight`` per admit; a class more than ``quantum`` ahead of
      the least-served *active* class is shed (reason ``"wfq"``).  A
      class with no competitors is never wfq-shed (work conservation),
      and a class returning from idle is re-anchored to the current
      virtual time so banked idle credit cannot starve the backlog.
    """

    def __init__(
        self,
        classes: Tuple[QosClass, ...],
        classifier: Callable[[int], str],
        quantum: float = 8.0,
    ):
        if not classes:
            raise ValueError("TenantQos needs at least one class")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate QoS class names")
        if quantum <= 0:
            raise ValueError("WFQ quantum must be positive")
        self.classes = tuple(classes)
        self.classifier = classifier
        self.quantum = quantum
        self._by_name = {c.name: c for c in classes}

    def resolve(self, tenant: int) -> QosClass:
        return self._by_name[self.classifier(tenant)]

    @classmethod
    def from_directory(cls, directory, quantum: float = 8.0) -> "TenantQos":
        """Build the policy straight off a
        :class:`repro.tenants.TenantDirectory` (weights, rates and bursts
        come from its :class:`~repro.tenants.TenantClass` entries)."""
        classes = tuple(
            QosClass(name=c.name, weight=c.weight, rate_iops=c.rate_iops,
                     burst=c.burst)
            for c in directory.classes
        )
        return cls(classes, directory.class_name_of, quantum=quantum)


class AdmissionController:
    """Bounded per-class admission with ordering-aware suffix shedding.

    Usage (the target server does this)::

        token, reason = controller.admit(cmd, env.now)
        if token is None:
            ...error-complete with STATUS_QFULL (reason says why)...
        try:
            ...execute the command...
        finally:
            controller.complete(token, env.now)

    Every admitted token is completed exactly once (command conservation),
    including when the command dies mid-flight to a target crash — the
    ``finally`` runs during generator unwinding.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        qos: Optional[TenantQos] = None,
    ):
        self.config = config if config is not None else AdmissionConfig()
        self.qos = qos
        self._tokens = count(1)
        #: token -> (class, admit time, qos class name or None).
        self._entries: Dict[int, Tuple[str, float, Optional[str]]] = {}
        #: tenant -> [tokens, last refill time] (token-bucket pacing).
        self._buckets: Dict[int, List[float]] = {}
        #: QoS class -> accumulated virtual work (1/weight per admit).
        self._class_vwork: Dict[str, float] = {}
        #: QoS class -> commands admitted and not yet completed.
        self._class_inflight: Dict[str, int] = {}
        self._inflight: Dict[str, int] = {ORDERED: 0, UNORDERED: 0}
        self._sojourn_ewma: Dict[str, Optional[float]] = {
            ORDERED: None, UNORDERED: None,
        }
        #: Ordered suffix markers: stream -> first shed position.  While a
        #: marker is planted, every position >= it is shed until the marker
        #: position itself is admitted.
        self._shed_from: Dict[int, int] = {}
        #: Highest first-time-admitted position per stream (the prefix
        #: high-water mark the property suite checks against).
        self.admitted_upto: Dict[int, int] = {}
        self.admitted = 0
        self.shed = 0
        self.shed_by_reason: Dict[str, int] = {}
        #: Every ordered shed, in order: (stream, position, reason).
        self.shed_log: List[Tuple[int, int, str]] = []

    # ------------------------------------------------------------------

    @staticmethod
    def _attr_of(cmd) -> Any:
        request = getattr(cmd, "context", None)
        return getattr(request, "attr", None) if request is not None else None

    @staticmethod
    def _tenant_of(cmd) -> Optional[int]:
        request = getattr(cmd, "context", None)
        return getattr(request, "tenant", None) if request is not None else None

    def classify(self, cmd) -> str:
        attr = self._attr_of(cmd)
        if attr is not None and cmd.opcode == OP_WRITE:
            return ORDERED
        return UNORDERED

    def sojourn_estimate(self, cls: str) -> Optional[float]:
        return self._sojourn_ewma[cls]

    def inflight(self, cls: str) -> int:
        return self._inflight[cls]

    # ------------------------------------------------------------------

    def admit(
        self, cmd, now: float, pressure: float = 0.0,
    ) -> Tuple[Optional[int], Optional[str]]:
        """Decide one arrival: ``(token, None)`` or ``(None, reason)``.

        ``pressure`` is the destination device's write-cache pressure
        (dirty fraction) as observed by the caller; it only matters when
        the config sets a ``cache_pressure_limit``.
        """
        cls = self.classify(cmd)
        attr = self._attr_of(cmd) if cls == ORDERED else None
        stream = attr.stream_id if attr is not None else None
        pos = attr.server_pos if attr is not None else None

        if stream is not None and pos <= self.admitted_upto.get(stream, -1):
            # A retransmission of a position already admitted once: the
            # gate will suppress it as a duplicate, so ordering does not
            # depend on it — never plant a suffix marker for it (the hole
            # it would mark does not exist and nothing would fill it).
            stream = pos = None
            cls = UNORDERED

        if stream is not None:
            marker = self._shed_from.get(stream)
            if marker is not None and pos > marker:
                # Suffix rule: a later position of a shed stream must not
                # slip past the hole at ``marker``.
                return None, self._reject(cls, stream, pos, "suffix")
            if pos > self.admitted_upto.get(stream, -1) + 1:
                # Dense rule: admitting past a hole would park this command
                # at the target's in-order gate *while holding an admission
                # slot*; with the hole's command backing off at the
                # initiator, enough such parkers wedge the whole window
                # (slots free only on completion, completion needs the
                # hole).  Shedding keeps every admitted ordered command
                # immediately runnable.
                return None, self._reject(cls, stream, pos, "gap")

        cap = (
            self.config.max_inflight_ordered
            if cls == ORDERED
            else self.config.max_inflight_unordered
        )
        if self._inflight[cls] >= cap:
            return None, self._reject(cls, stream, pos, "qfull")
        if (
            self.config.cache_pressure_limit is not None
            and cmd.opcode == OP_WRITE
            and pressure >= self.config.cache_pressure_limit
        ):
            # Cache-stall backpressure: the destination device's volatile
            # write cache is (nearly) full, so this write would stall on
            # eviction anyway — shed it while it is still cheap.
            return None, self._reject(cls, stream, pos, "cache")
        sojourn = self._sojourn_ewma[cls]
        if (
            self.config.sojourn_target is not None
            and sojourn is not None
            and sojourn > self.config.sojourn_target
            and self._inflight[cls] >= self.config.sojourn_min_inflight
        ):
            return None, self._reject(cls, stream, pos, "sojourn")

        tenant = self._tenant_of(cmd)
        qcls: Optional[QosClass] = None
        if self.qos is not None and tenant is not None:
            qcls = self.qos.resolve(tenant)
            if qcls.rate_iops is not None and (
                self._bucket_refill(tenant, qcls, now) < 1.0
            ):
                # Per-tenant pacing: the bucket refills at rate_iops, so
                # over any window the tenant admits at most
                # rate x window + burst commands.
                return None, self._reject(cls, stream, pos, "pace")
            vwork = self._class_vwork.get(qcls.name, 0.0)
            behind = [
                self._class_vwork.get(name, 0.0)
                for name, inflight in self._class_inflight.items()
                if inflight > 0 and name != qcls.name
            ]
            if behind and vwork > min(behind) + self.qos.quantum:
                # Weighted-fair deficit: this class has pulled more than a
                # quantum ahead of the least-served competing class — shed
                # so the laggard's arrivals find slots.  With no active
                # competitor the check never fires (work conservation).
                return None, self._reject(cls, stream, pos, "wfq")

        if stream is not None:
            if self._shed_from.get(stream) == pos:
                del self._shed_from[stream]  # the hole is being filled
            upto = self.admitted_upto.get(stream, -1)
            self.admitted_upto[stream] = max(upto, pos)
        qos_name: Optional[str] = None
        if qcls is not None:
            qos_name = qcls.name
            if qcls.rate_iops is not None:
                self._buckets[tenant][0] -= 1.0
            if self._class_inflight.get(qos_name, 0) == 0:
                # Returning from idle: re-anchor to the current virtual
                # time so idle credit cannot be banked against the backlog.
                active = [
                    self._class_vwork.get(name, 0.0)
                    for name, inflight in self._class_inflight.items()
                    if inflight > 0
                ]
                if active:
                    self._class_vwork[qos_name] = max(
                        self._class_vwork.get(qos_name, 0.0), min(active))
            self._class_vwork[qos_name] = (
                self._class_vwork.get(qos_name, 0.0) + 1.0 / qcls.weight)
            self._class_inflight[qos_name] = (
                self._class_inflight.get(qos_name, 0) + 1)
        token = next(self._tokens)
        self._entries[token] = (cls, now, qos_name)
        self._inflight[cls] += 1
        self.admitted += 1
        return token, None

    def _bucket_refill(self, tenant: int, qcls: QosClass, now: float) -> float:
        """Refill ``tenant``'s bucket up to ``now``; returns the balance."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = [qcls.burst, now]
        tokens, last = bucket
        tokens = min(qcls.burst, tokens + qcls.rate_iops * (now - last))
        bucket[0] = tokens
        bucket[1] = now
        return tokens

    def qos_inflight(self, class_name: str) -> int:
        return self._class_inflight.get(class_name, 0)

    def qos_virtual_work(self, class_name: str) -> float:
        return self._class_vwork.get(class_name, 0.0)

    def _reject(self, cls: str, stream, pos, reason: str) -> str:
        self.shed += 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        if stream is not None:
            marker = self._shed_from.get(stream)
            if marker is None or pos < marker:
                self._shed_from[stream] = pos
            self.shed_log.append((stream, pos, reason))
        return reason

    def complete(self, token: int, now: float) -> None:
        """Account one admitted command's exit (response posted, or the
        handler unwound because the server crashed)."""
        entry = self._entries.pop(token, None)
        if entry is None:
            return
        cls, admitted_at, qos_name = entry
        self._inflight[cls] -= 1
        if qos_name is not None:
            self._class_inflight[qos_name] -= 1
        sojourn = now - admitted_at
        previous = self._sojourn_ewma[cls]
        if previous is None:
            self._sojourn_ewma[cls] = sojourn
        else:
            alpha = self.config.sojourn_alpha
            self._sojourn_ewma[cls] = alpha * sojourn + (1 - alpha) * previous

    def reset_markers(self) -> None:
        """Forget suffix markers (target restart: per-server positions are
        legitimately replayed in the new epoch)."""
        self._shed_from.clear()
        self.admitted_upto.clear()

    def __repr__(self) -> str:
        return (
            f"<AdmissionController admitted={self.admitted} shed={self.shed} "
            f"inflight={dict(self._inflight)}>"
        )


@dataclass
class RetryBudget:
    """Token-bucket retry budget: retries are a bounded fraction of fresh
    traffic.

    Each fresh command earns ``ratio`` tokens (clipped at ``cap``); each
    retransmission spends one whole token.  With the bucket empty the
    retransmission is suppressed — the command keeps waiting for its
    original post instead of joining a storm.  Total retries are
    therefore bounded by ``cap + ratio * fresh_commands``.
    """

    ratio: float = 0.2
    cap: float = 8.0
    tokens: float = field(init=False)
    earned: int = field(init=False, default=0)
    spent: int = field(init=False, default=0)
    suppressed: int = field(init=False, default=0)

    def __post_init__(self):
        if not 0.0 <= self.ratio <= 1.0:
            raise ValueError("retry budget ratio must be in [0, 1]")
        if self.cap < 1.0:
            raise ValueError("retry budget cap must be >= 1")
        self.tokens = self.cap  # start full: cold-start retries allowed

    def earn(self) -> None:
        self.earned += 1
        self.tokens = min(self.cap, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.suppressed += 1
        return False
