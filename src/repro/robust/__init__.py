"""Overload- and gray-failure-robustness plane.

Three cooperating mechanisms keep the stack on the good side of the
metastable-failure cliff:

* :mod:`repro.robust.admission` — bounded per-class admission at the
  target (queue-depth cap + CoDel-style sojourn threshold) with
  ordering-aware suffix shedding, plus the token-bucket retry budget the
  initiator driver uses to bound retransmission storms;
* :mod:`repro.robust.health` — per-target EWMA health scores and a
  circuit breaker, so unordered flows steer around a fail-slow target
  while ordered streams (which cannot migrate) surface brownout errors.

Everything here is deterministic and free when not installed: a cluster
without an admission controller, retry budget or health monitor performs
zero extra RNG draws and schedules zero extra events.
"""

from repro.robust.admission import AdmissionConfig, AdmissionController, RetryBudget
from repro.robust.health import HealthConfig, HealthMonitor, TargetHealth

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "RetryBudget",
    "HealthConfig",
    "HealthMonitor",
    "TargetHealth",
]
