"""Engine throughput measurement: the BENCH_engine.json trajectory.

One workload, four ways: ``procs`` in-phase ticker processes burning
``events`` timeout events total, run on

* the serial event-heap engine (the baseline every ratio is against),
* the calendar-queue engine (batched same-timestamp dispatch, inlined
  process resume),
* the sharded parallel engine at ``jobs=1`` (the windowed protocol's
  serial reference — its cost over the plain engine is the barrier
  overhead), and
* the sharded parallel engine at ``jobs=N`` (aggregate events/s across
  worker processes).

``repro bench-engine`` writes the report to ``results/BENCH_engine.json``
so re-anchors can track the trajectory; the committed artifact records
the dev container (cores included — parallel scaling is meaningless
without that denominator).  The same numbers are floor-gated in
``benchmarks/test_simulator_performance.py``.
"""

from __future__ import annotations

import os
import platform
import time
from functools import partial
from typing import Dict, Optional

from repro.sim.calendar import CalendarEnvironment
from repro.sim.engine import Environment
from repro.sim.parallel import run_sharded, tick_shard

__all__ = ["bench_engines", "run_ticker"]

#: Tick interval (virtual seconds) for the benchmark workload.
TICK = 1e-6


def run_ticker(env_cls, events: int, procs: int) -> float:
    """Run ``procs`` in-phase tickers totalling ``events`` events; returns
    the wall-clock seconds spent inside ``env.run``."""
    env = env_cls()
    per_proc = max(1, events // procs)

    def ticker():
        for _ in range(per_proc):
            yield env.timeout(TICK)

    for _ in range(procs):
        env.process(ticker())
    started = time.perf_counter()
    env.run()
    return time.perf_counter() - started


def _best_events_per_sec(fn, events: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        best = min(best, fn())
    return events / best


def bench_engines(
    events: int = 100_000,
    procs: int = 50,
    jobs: Optional[int] = None,
    repeats: int = 3,
) -> Dict:
    """Measure every engine on the shared ticker workload.

    Returns the BENCH report dict: one data point per engine with raw
    events/s and the speedup over the serial heap engine measured *on
    this host, in this run* — never against a stored number.
    """
    cpus = os.cpu_count() or 1
    if jobs is None:
        jobs = max(1, cpus)
    per_proc = max(1, events // procs)
    total = per_proc * procs

    serial = _best_events_per_sec(
        lambda: run_ticker(Environment, events, procs), total, repeats)
    calendar = _best_events_per_sec(
        lambda: run_ticker(CalendarEnvironment, events, procs),
        total, repeats)

    def sharded(shard_jobs: int, engine: str) -> float:
        shards = max(1, shard_jobs)
        builders = [partial(tick_shard, events=per_proc, interval=TICK)
                    for _ in range(shards * max(1, procs // shards))]
        shard_events = per_proc * len(builders)

        def once() -> float:
            started = time.perf_counter()
            run_sharded(builders, lookahead=float("inf"),
                        until=per_proc * TICK, jobs=shard_jobs,
                        engine=engine)
            return time.perf_counter() - started

        return _best_events_per_sec(once, shard_events, repeats)

    parallel_serial = sharded(1, "heap")
    parallel = sharded(jobs, "calendar")

    points = [
        {"engine": "heap", "jobs": 1, "events_per_sec": serial},
        {"engine": "calendar", "jobs": 1, "events_per_sec": calendar},
        {"engine": "parallel(jobs=1)", "jobs": 1,
         "events_per_sec": parallel_serial},
        {"engine": f"parallel(jobs={jobs})", "jobs": jobs,
         "events_per_sec": parallel},
    ]
    for point in points:
        point["events_per_sec"] = round(point["events_per_sec"], 1)
        point["speedup_vs_serial"] = round(
            point["events_per_sec"] / points[0]["events_per_sec"], 3)
    return {
        "benchmark": "engine-ticker",
        "workload": {"events": total, "procs": procs,
                     "tick_seconds": TICK, "repeats": repeats},
        "host": {"cpus": cpus, "platform": platform.platform(),
                 "python": platform.python_version()},
        "engines": points,
    }
