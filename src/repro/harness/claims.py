"""The paper's headline claims, checked programmatically.

:func:`evaluate_claims` runs a compact set of experiments once and grades
every headline claim of the paper against them, producing a reproduction
scorecard (``python -m repro claims``).  The benchmark suite asserts the
same relations figure-by-figure; this module is the one-page summary.

The underlying figure experiments are sweeps (see
:mod:`repro.harness.sweep`), so the scorecard parallelizes and memoizes
like any other sweep: ``evaluate_claims(jobs=4)`` fans the independent
simulation cells across four worker processes, and passing a
:class:`~repro.harness.cache.ResultCache` reuses any cell a previous
figure/claims run already computed (``python -m repro claims --jobs 4``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.harness import figures
from repro.harness import extensions
from repro.harness.cache import ResultCache
from repro.harness.sweep import configured

__all__ = ["Claim", "ClaimReport", "evaluate_claims"]


@dataclass
class Claim:
    section: str
    statement: str
    passed: bool
    measured: str


@dataclass
class ClaimReport:
    claims: List[Claim] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for c in self.claims if c.passed)

    @property
    def total(self) -> int:
        return len(self.claims)

    def render(self) -> str:
        lines = [f"== Reproduction scorecard: {self.passed}/{self.total} "
                 "headline claims hold =="]
        width = max(len(c.section) for c in self.claims)
        for claim in self.claims:
            mark = "PASS" if claim.passed else "FAIL"
            lines.append(f"[{mark}] {claim.section.ljust(width)}  "
                         f"{claim.statement}")
            lines.append(f"       measured: {claim.measured}")
        return "\n".join(lines)


def evaluate_claims(
    duration: float = 2.5e-3,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> ClaimReport:
    """Run the compact experiment set and grade every headline claim.

    With ``jobs``/``cache`` left at None the figure sweeps run on the
    process-wide default runner (so a caller who already called
    :func:`repro.harness.sweep.configure` keeps their settings); passing
    either overrides the runner for the duration of this evaluation.
    """
    if jobs is not None or cache is not None:
        with configured(jobs=jobs or 1, cache=cache):
            return evaluate_claims(duration=duration)
    report = ClaimReport()

    def add(section, statement, passed, measured):
        report.claims.append(Claim(section, statement, bool(passed), measured))

    # ---- block-device experiments ----
    flash = figures.fig10_block_device(panel="a", threads=(1, 8),
                                       duration=duration)
    optane = figures.fig10_block_device(panel="b", threads=(1, 8),
                                        duration=duration)

    def k(result, system, threads):
        return result.column("kiops", system=system, threads=threads)[0]

    add("§6.2/Fig10a",
        "Rio ~two orders of magnitude over ordered Linux on flash",
        k(flash, "rio", 1) > 50 * k(flash, "linux", 1),
        f"{k(flash, 'rio', 1) / max(k(flash, 'linux', 1), 1e-9):.0f}x at 1 thread")
    add("§6.2/Fig10a",
        "Rio above HORAE on flash (paper: 2.8x average)",
        k(flash, "rio", 1) > 2 * k(flash, "horae", 1),
        f"{k(flash, 'rio', 1) / max(k(flash, 'horae', 1), 1e-9):.1f}x at 1 thread")
    add("§6.2/Fig10b",
        "Rio well above Linux on Optane (paper: 9.4x average)",
        k(optane, "rio", 1) > 5 * k(optane, "linux", 1),
        f"{k(optane, 'rio', 1) / max(k(optane, 'linux', 1), 1e-9):.1f}x at 1 thread")
    add("§6.2",
        "Rio's throughput comes close to the orderless",
        all(k(r, "rio", t) > 0.85 * k(r, "orderless", t)
            for r in (flash, optane) for t in (1, 8)),
        "within 15% of orderless on both SSDs at 1 and 8 threads")
    add("§6.2",
        "Rio's CPU efficiency comes close to the orderless",
        optane.column("init_eff_norm", system="rio", threads=1)[0] > 0.8,
        f"{optane.column('init_eff_norm', system='rio', threads=1)[0]:.2f} "
        "normalized initiator efficiency")
    add("§3.1/Fig2",
        "orderless writes saturate the SSD with a single thread",
        k(optane, "orderless", 8) < 1.3 * k(optane, "orderless", 1),
        f"{k(optane, 'orderless', 1):.0f}K at 1 thread vs "
        f"{k(optane, 'orderless', 8):.0f}K at 8")
    add("§3.2/L1",
        "the FLUSH barrier dominates ordered Linux on flash",
        k(flash, "linux", 1) < 0.2 * k(optane, "linux", 1),
        f"linux: {k(flash, 'linux', 1):.1f}K (flash) vs "
        f"{k(optane, 'linux', 1):.1f}K (Optane) at 1 thread")

    # ---- merging (Lesson 3 / Figures 3, 12) ----
    merging = figures.fig03_merging_cpu(batches=(1, 16), duration=duration)
    base = merging.column("init_cpu_per_100kiops", batch=1)[0]
    deep = merging.column("init_cpu_per_100kiops", batch=16)[0]
    add("§3.2/L3",
        "merging substantially reduces CPU per operation",
        deep < 0.5 * base,
        f"initiator CPU per 100K IOPS: {base:.3f} -> {deep:.3f} cores")

    # ---- file system (Figures 13, 14) ----
    fs = figures.fig13_filesystem(threads=(1, 16), duration=duration * 1.5)

    def fsk(name, col, t):
        return fs.column(col, fs=name, threads=t)[0]

    add("§6.3/Fig13",
        "RioFS raises fsync throughput well above Ext4 (paper: 3.0x @16t)",
        fsk("riofs", "kops", 16) > 1.8 * fsk("ext4", "kops", 16),
        f"{fsk('riofs', 'kops', 16) / fsk('ext4', 'kops', 16):.1f}x at 16 threads")
    add("§6.3/Fig13",
        "RioFS cuts average fsync latency (paper: -67% vs Ext4)",
        fsk("riofs", "avg_latency_us", 1) < 0.6 * fsk("ext4", "avg_latency_us", 1),
        f"-{100 * (1 - fsk('riofs', 'avg_latency_us', 1) / fsk('ext4', 'avg_latency_us', 1)):.0f}% at 1 thread")
    breakdown = figures.fig14_latency_breakdown(iterations=20)
    jc = {row["fs"]: row["jc_dispatch_us"] for row in breakdown.rows}
    add("§6.3/Fig14",
        "commit-record dispatch: RioFS < HoraeFS < Ext4",
        jc["riofs"] < jc["horaefs"] < jc["ext4"],
        f"JC dispatch: riofs {jc['riofs']:.1f}us, horaefs "
        f"{jc['horaefs']:.1f}us, ext4 {jc['ext4']:.1f}us")

    # ---- applications (Figure 15) ----
    rocksdb = figures.fig15b_rocksdb(threads=(1, 12), duration=duration * 1.5)

    def rk(name, t):
        return rocksdb.column("kops", fs=name, threads=t)[0]

    add("§6.4/Fig15b",
        "RioFS raises RocksDB fillsync throughput over Ext4 (paper: 1.9x)",
        rk("riofs", 12) > 1.5 * rk("ext4", 12),
        f"{rk('riofs', 12) / rk('ext4', 12):.1f}x at 12 threads")
    add("§6.4/Fig15b",
        "RioFS above HoraeFS on RocksDB (paper: 1.5x)",
        rk("riofs", 12) > rk("horaefs", 12),
        f"{rk('riofs', 12) / rk('horaefs', 12):.2f}x at 12 threads")

    # ---- recovery (§6.5) ----
    recovery = figures.recovery_table(trials=2, threads=12,
                                      run_before_crash=1e-3)
    rio_row = recovery.series(system="rio")[0]
    horae_row = recovery.series(system="horae")[0]
    add("§6.5",
        "HORAE reloads its smaller ordering metadata faster than Rio",
        horae_row["rebuild_ms"] < rio_row["rebuild_ms"],
        f"rebuild: horae {horae_row['rebuild_ms']:.2f}ms vs rio "
        f"{rio_row['rebuild_ms']:.2f}ms")
    add("§6.5",
        "data recovery dominates order reconstruction",
        rio_row["data_recovery_ms"] > rio_row["rebuild_ms"],
        f"rio: {rio_row['data_recovery_ms']:.2f}ms data vs "
        f"{rio_row['rebuild_ms']:.2f}ms rebuild")

    # ---- design principles ----
    affinity = extensions.ablation_qp_affinity(duration=duration)
    on = affinity.series(affinity=True)[0]
    off = affinity.series(affinity=False)[0]
    add("§4.5/P2",
        "stream->QP affinity minimizes out-of-order gate arrivals",
        on["ooo_arrivals"] <= off["ooo_arrivals"]
        and on["kiops"] > 0.95 * off["kiops"],
        f"OOO arrivals {on['ooo_arrivals']} (affinity) vs "
        f"{off['ooo_arrivals']} (spray)")
    barrier = extensions.barrier_comparison(threads=(1, 8),
                                            duration=duration)
    b1 = barrier.column("kiops", system="barrier", threads=1)[0]
    b8 = barrier.column("kiops", system="barrier", threads=8)[0]
    r8 = barrier.column("kiops", system="rio", threads=8)[0]
    add("§2.2",
        "intermediate storage order is not a necessity and can be relaxed",
        b8 < 1.3 * b1 and r8 > 2 * b8,
        f"barrier flat at {b8:.0f}K from 1-8 threads; rio {r8:.0f}K")
    return report
