"""On-disk content-addressed result cache for experiment sweeps.

Every sweep cell (one :class:`~repro.harness.sweep.RunSpec`) is a pure
function of its arguments *and of the simulator's source code*: the
simulation is deterministic, so re-running an unchanged spec on unchanged
code always reproduces the same numbers.  That makes results perfectly
memoizable, and this module is the memo table:

* entries live under ``results/.cache/<code-version>/<dd>/<digest>.pkl``
  where ``<code-version>`` is a digest of every ``repro`` source file
  (so *any* code change invalidates the whole cache — coarse, but it can
  never serve a stale number) and ``<digest>`` is the spec's content hash;
* writes are atomic (temp file + ``os.replace``), so a crashed or killed
  sweep never leaves a half-written entry that a later run would trust;
* reads that fail to unpickle — truncated file, hand-edited entry, a
  pickle from an incompatible interpreter — are treated as misses: the
  corrupt file is deleted and the spec recomputes.  A bad cache can cost
  time, never correctness.

The cache is opt-in (``repro sweep --cache`` or
``SweepRunner(cache=ResultCache())``); the plain figure entry points never
touch the disk.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

__all__ = ["ResultCache", "code_version", "default_cache_dir",
           "env_fingerprint"]

#: Environment overrides (mostly for tests and CI):
#: ``REPRO_CACHE_DIR`` relocates the cache root;
#: ``REPRO_CACHE_VERSION`` pins the code-version key, bypassing the
#: source-tree digest.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_VERSION = "REPRO_CACHE_VERSION"

_code_version_memo: Optional[str] = None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``results/.cache`` under the working tree."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override)
    return Path("results") / ".cache"


def env_fingerprint() -> str:
    """Digest of result-affecting ``REPRO_*`` environment overrides.

    Engine floors, cost knobs and other ``REPRO_*`` variables change the
    numbers a spec memoises, so they must key the cache namespace just
    like the source tree does.  ``REPRO_CACHE_DIR`` only relocates the
    store and ``REPRO_CACHE_VERSION`` is already the namespace base, so
    both are excluded.  Returns ``""`` when no override is set (the
    common case keeps its short, stable version directory name).
    """
    items = sorted(
        (key, value)
        for key, value in os.environ.items()
        if key.startswith("REPRO_")
        and key not in (ENV_CACHE_DIR, ENV_CACHE_VERSION)
    )
    if not items:
        return ""
    digest = hashlib.sha256()
    for key, value in items:
        digest.update(key.encode())
        digest.update(b"=")
        digest.update(value.encode())
        digest.update(b"\0")
    return digest.hexdigest()[:12]


def code_version() -> str:
    """Digest of every ``repro`` source file (memoized per process),
    suffixed with :func:`env_fingerprint` when result-affecting
    ``REPRO_*`` overrides are set.

    Keying cache entries by this digest means a code change — any code
    change, even one that could not affect the numbers — starts a fresh
    cache namespace.  Stale directories from older versions are plain
    directories under the cache root and can be deleted freely.
    """
    global _code_version_memo
    env_suffix = env_fingerprint()
    override = os.environ.get(ENV_CACHE_VERSION)
    if override:
        return f"{override}-{env_suffix}" if env_suffix else override
    if _code_version_memo is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_memo = digest.hexdigest()[:16]
    if env_suffix:
        return f"{_code_version_memo}-{env_suffix}"
    return _code_version_memo


class ResultCache:
    """Pickle-backed content-addressed store: digest -> result.

    ``get``/``put`` never raise on I/O or serialization problems; the
    worst outcome of any cache failure is a recompute.  ``hits``,
    ``misses``, ``corrupt_dropped`` and ``put_failures`` count what
    happened for reporting (``repro sweep`` prints them).
    """

    def __init__(self, root: Optional[Path] = None,
                 version: Optional[str] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = version or code_version()
        self.hits = 0
        self.misses = 0
        self.corrupt_dropped = 0
        self.put_failures = 0

    # ------------------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        """Where the entry for ``digest`` lives (two-level fan-out)."""
        return self.root / self.version / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` otherwise."""
        path = self.path_for(digest)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            # Truncated/garbled/incompatible entry: drop it and recompute.
            self.corrupt_dropped += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.hits += 1
        return True, value

    def put(self, digest: str, value: Any) -> bool:
        """Store ``value`` atomically; returns False if it could not be."""
        path = self.path_for(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            # Unpicklable result, read-only disk, ...: sweep still returns
            # the computed value, it just will not be memoized.
            self.put_failures += 1
            return False
        return True

    def clear(self) -> int:
        """Delete this version's entries; returns how many were removed."""
        removed = 0
        version_root = self.root / self.version
        if not version_root.exists():
            return 0
        for entry in sorted(version_root.rglob("*.pkl")):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return (f"ResultCache(root={str(self.root)!r}, "
                f"version={self.version!r}, hits={self.hits}, "
                f"misses={self.misses})")
