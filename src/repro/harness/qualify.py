"""`repro qualify`: the SSD qualification matrix with per-cell floors.

Modeled on real NVMe qualification suites (block-size sweeps 4K–1MB,
queue depths 1–256, sequential/random/mixed patterns, sustained-write
preconditioning, SMART health checks), driven against the reproduced
stacks instead of a physical drive.  Three kinds of cells:

* **matrix** — one ``run_block_workload`` per (system, block size, queue
  depth, pattern) on the qualification layout, recording throughput,
  tail latency and the device's SMART health counters;
* **sustained** — a sustained sequential-write pass at QD 256 on a
  prefilled device, so the cell runs inside write-cache eviction
  pressure *and* steady-state GC (write amplification > 1);
* **oracle** — the crash-consistency checker (:mod:`repro.check`) at
  depth 256 on the same prefilled, GC-active device: enumerate crash
  points, replay recovery, count ordering violations.

Every cell is an independent seeded simulation: cells fan out across
``--jobs`` worker processes and memoize in the content-addressed result
cache, and because the reduce consumes results in spec order, a parallel
or cache-warm run is bit-identical to a serial cold one.

**Per-cell floors.**  Each cell carries a floor dict checked in the
reduce step (so floors can change without invalidating cached cells):

* ``min_kiops`` / ``min_mbps`` — throughput floors;
* ``max_p999_us`` — tail-latency ceiling (defaults to the measurement
  window: any recorded completion beats it, a stalled cell does not);
* ``min_write_amp`` / ``require_gc`` / ``min_cache_stalls`` — realism
  floors on sustained cells: the device must actually have entered
  steady-state GC and cache eviction pressure, otherwise the tentpole
  plumbing regressed;
* ``max_violations`` / ``min_crash_points`` — ordering-oracle floors on
  oracle cells: zero violations over at least one replayed crash point.

A failing floor marks the cell FAIL, is listed in the report, and makes
``repro qualify`` exit nonzero.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.harness.experiment import LAYOUTS, build_cluster, build_stack
from repro.harness.sweep import RunSpec, Sweep, run_sweep

__all__ = [
    "QUALIFY_SYSTEMS",
    "ORACLE_SYSTEMS",
    "FULL_BLOCKS_KIB",
    "FULL_QUEUE_DEPTHS",
    "FULL_PATTERNS",
    "PROFILES",
    "QualifyProfile",
    "QualifyCell",
    "QualifyReport",
    "probe_qualify_cell",
    "probe_qualify_oracle",
    "default_floors",
    "qualify_sweep",
    "qualify_report",
    "write_report",
    "perf_baseline",
    "bench_artifact",
]

#: Default qualification layout: the PM981 variant with a small namespace
#: and cache, so cells reach eviction pressure and steady-state GC.
DEFAULT_LAYOUT = "flash-qual"

#: The five compared systems (the full matrix covers all of them).
QUALIFY_SYSTEMS = ("orderless", "linux", "horae", "rio", "barrier")

#: Systems whose ordering contract the oracle cells check under GC.
ORACLE_SYSTEMS = ("rio", "horae", "barrier")

FULL_BLOCKS_KIB = (4, 16, 64, 256, 1024)
FULL_QUEUE_DEPTHS = (1, 8, 64, 256)
FULL_PATTERNS = ("seq", "rand", "mixed")


@dataclass(frozen=True)
class QualifyProfile:
    """Shape of one qualification run (which cells get generated)."""

    systems: Sequence[str]
    blocks_kib: Sequence[int]
    queue_depths: Sequence[int]
    patterns: Sequence[str]
    #: Measurement window / warmup of one matrix cell (virtual seconds).
    duration: float
    warmup: float
    #: Sustained-write pass: window and device prefill fraction.
    sustained_duration: float
    sustained_prefill: float
    #: Ordering-oracle cells: systems, in-flight depth, crash-point cap.
    oracle_systems: Sequence[str]
    oracle_depth: int
    oracle_max_points: int


PROFILES: Dict[str, QualifyProfile] = {
    # CI-sized: 2 systems x 2 blocks x 2 depths x 2 patterns, one
    # sustained pass per system, the full oracle trio.
    "smoke": QualifyProfile(
        systems=("rio", "linux"),
        blocks_kib=(4, 64),
        queue_depths=(1, 256),
        patterns=("seq", "rand"),
        duration=8e-4,
        warmup=2e-4,
        sustained_duration=1.2e-3,
        sustained_prefill=0.92,
        oracle_systems=ORACLE_SYSTEMS,
        oracle_depth=256,
        oracle_max_points=5,
    ),
    # The paper-scale matrix: 4K-1MB x QD 1/8/64/256 x seq/rand/mixed
    # x all five systems, plus sustained passes and the oracle trio.
    "full": QualifyProfile(
        systems=QUALIFY_SYSTEMS,
        blocks_kib=FULL_BLOCKS_KIB,
        queue_depths=FULL_QUEUE_DEPTHS,
        patterns=FULL_PATTERNS,
        duration=1.5e-3,
        warmup=3e-4,
        sustained_duration=2.5e-3,
        sustained_prefill=0.92,
        oracle_systems=ORACLE_SYSTEMS,
        oracle_depth=256,
        oracle_max_points=8,
    ),
}

#: Block size / queue depth of the sustained-write pass (64 KiB seq at
#: QD 256 -> 16 MiB in flight against a 2 MiB cache: guaranteed eviction
#: pressure on the qualification layout).
SUSTAINED_BLOCK_KIB = 64
SUSTAINED_QD = 256

#: Systems whose per-group synchronous FLUSH keeps the cache drained:
#: the ``min_cache_stalls`` realism floor does not apply to them.
SYNC_FLUSH_SYSTEMS = ("linux",)


# ----------------------------------------------------------------------
# Cells (top-level, JSON-kwargs functions for the sweep runner)
# ----------------------------------------------------------------------


def _cluster_health(cluster) -> Dict[str, float]:
    """Aggregate SMART health over every SSD in the cluster."""
    smarts = [
        ssd.smart() for target in cluster.targets for ssd in target.ssds
    ]
    out = {
        "cache_stalls": sum(s["cache_stalls"] for s in smarts),
        "cache_stall_ms": 1e3 * sum(s["cache_stall_time"] for s in smarts),
        "cache_evictions": sum(s["cache_evictions"] for s in smarts),
        "media_host_mb": sum(s["media_host_bytes"] for s in smarts) / 1e6,
        "media_gc_mb": sum(s["media_gc_bytes"] for s in smarts) / 1e6,
        "write_amp": max(s["write_amp"] for s in smarts),
        "utilization": max(s["utilization"] for s in smarts),
        "gc_active": max(s["gc_active"] for s in smarts),
        "wear_pct": max(s["wear_pct"] for s in smarts),
    }
    return out


def probe_qualify_cell(
    system: str,
    layout: str = DEFAULT_LAYOUT,
    block_kib: int = 4,
    queue_depth: int = 1,
    pattern: str = "rand",
    duration: float = 1.5e-3,
    warmup: float = 3e-4,
    prefill: float = 0.0,
    seed: int = 7,
) -> Dict[str, float]:
    """One qualification cell: fresh testbed, one block-workload run.

    Top-level and scalar-valued so the sweep runner can execute it in a
    worker process and key it in the content-addressed result cache.
    """
    from repro.apps.fio import run_block_workload
    from repro.hw.ssd import BLOCK_SIZE

    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r} (have {sorted(LAYOUTS)})")
    cluster = build_cluster(layout, seed=seed)
    if prefill:
        for target in cluster.targets:
            for ssd in target.ssds:
                ssd.prefill(prefill)
    stack = build_stack(system, cluster, num_streams=1)
    run = run_block_workload(
        cluster, stack, threads=1, duration=duration, warmup=warmup,
        write_blocks=max(1, block_kib * 1024 // BLOCK_SIZE),
        pattern=pattern, queue_depth=queue_depth, seed=seed,
    )
    metrics = {
        "kiops": run.iops / 1e3,
        "mbps": run.mb_per_sec,
        "p50_us": run.latency.p50 * 1e6,
        "p99_us": run.latency.p99 * 1e6,
        "p999_us": run.latency.p999 * 1e6,
        "samples": float(run.latency.count),
        "target_busy_cores": run.target_busy_cores,
    }
    metrics.update(_cluster_health(cluster))
    return metrics


def probe_qualify_oracle(
    system: str,
    layout: str = DEFAULT_LAYOUT,
    depth: int = 256,
    prefill: float = 0.92,
    max_points: int = 5,
    seed: int = 7,
) -> Dict[str, float]:
    """One ordering-oracle cell at the qualification extremes.

    Runs the crash-consistency checker with ``depth`` groups in flight on
    a prefilled (GC-active) device: every enumerated crash point is
    replayed through recovery and validated against the system's order
    contract.  GC is active for the whole run and the small cache forces
    eviction mid-epoch — exactly the regime the first-order device model
    never reached.
    """
    from repro.check import WorkloadSpec, check_workload

    spec = WorkloadSpec(
        system=system,
        layout=layout,
        seed=seed,
        streams=2,
        groups_per_stream=5,
        writes_per_group=2,
        depth=depth,
        flush_every=2,
        max_points=max_points,
        prefill=prefill,
    )
    report = check_workload(spec)
    env_probe = _oracle_probe(spec)
    return {
        "crash_points": float(report.crash_points),
        "groups_completed": float(report.groups_completed),
        "failing_points": float(len(report.failures)),
        "violations": float(
            sum(len(f.violations) for f in report.failures)
        ),
        **env_probe,
    }


def _oracle_probe(spec) -> Dict[str, float]:
    """Re-run the oracle workload once to report the device health the
    crash points were enumerated under (GC active, eviction pressure)."""
    from repro.check.workload import build_plan, build_testbed, start_workload

    env, cluster, stack = build_testbed(spec)
    plan = build_plan(spec)
    completions: List = []
    done = start_workload(env, cluster, stack, spec, plan, completions)
    env.run_until_event(done, limit=2.0)
    env.run(until=env.now + 2e-3)
    health = _cluster_health(cluster)
    return {
        "gc_active": health["gc_active"],
        "write_amp": health["write_amp"],
        "utilization": health["utilization"],
        "cache_evictions": health["cache_evictions"],
    }


# ----------------------------------------------------------------------
# Floors
# ----------------------------------------------------------------------


def default_floors(phase: str, duration: float) -> Dict[str, float]:
    """Conservative per-cell floors: loose enough to pass every healthy
    cell deterministically, tight enough that a stalled, wedged or
    contract-breaking cell fails loudly."""
    if phase == "matrix":
        return {
            "min_kiops": 0.05,
            "min_mbps": 0.1,
            "max_p999_us": duration * 1e6,
        }
    if phase == "sustained":
        return {
            "min_kiops": 0.05,
            "min_mbps": 0.1,
            "max_p999_us": duration * 1e6,
            # Realism floors: the pass must actually run inside GC and
            # cache eviction pressure, or the device model regressed.
            "require_gc": 1.0,
            "min_write_amp": 1.05,
            "min_cache_stalls": 1.0,
        }
    if phase == "oracle":
        return {
            "max_violations": 0.0,
            "min_crash_points": 1.0,
            # The checked run must have been GC-active, or the cell
            # silently stopped testing the interesting regime.
            "require_gc": 1.0,
        }
    raise ValueError(f"unknown qualification phase {phase!r}")


#: floor name -> (metric name, comparison): "ge" passes while
#: metric >= floor, "le" while metric <= floor.
_FLOOR_CHECKS = {
    "min_kiops": ("kiops", "ge"),
    "min_mbps": ("mbps", "ge"),
    "max_p999_us": ("p999_us", "le"),
    "min_write_amp": ("write_amp", "ge"),
    "min_cache_stalls": ("cache_stalls", "ge"),
    "require_gc": ("gc_active", "ge"),
    "max_violations": ("violations", "le"),
    "min_crash_points": ("crash_points", "ge"),
}


def check_floors(metrics: Dict[str, float],
                 floors: Dict[str, float]) -> List[str]:
    """Every floor the metrics break, as human-readable failure lines."""
    failures = []
    for floor_name, floor_value in sorted(floors.items()):
        metric_name, direction = _FLOOR_CHECKS[floor_name]
        value = metrics.get(metric_name)
        if value is None:
            failures.append(f"{floor_name}: metric {metric_name} missing")
            continue
        ok = value >= floor_value if direction == "ge" else value <= floor_value
        if not ok:
            op = ">=" if direction == "ge" else "<="
            failures.append(
                f"{floor_name}: {metric_name}={value:g} not {op} "
                f"{floor_value:g}"
            )
    return failures


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------


@dataclass
class QualifyCell:
    """One qualified cell: identity, measured metrics, floors, verdict."""

    key: str
    phase: str  # "matrix" | "sustained" | "oracle"
    system: str
    block_kib: int
    queue_depth: int
    pattern: str
    metrics: Dict[str, float] = field(default_factory=dict)
    floors: Dict[str, float] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "phase": self.phase,
            "system": self.system,
            "block_kib": self.block_kib,
            "queue_depth": self.queue_depth,
            "pattern": self.pattern,
            "metrics": self.metrics,
            "floors": self.floors,
            "failures": list(self.failures),
            "ok": self.ok,
        }


@dataclass
class QualifyReport:
    """The full qualification outcome: every cell plus summary notes."""

    profile: str
    layout: str
    seed: int
    cells: List[QualifyCell] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def passed(self) -> int:
        return sum(1 for cell in self.cells if cell.ok)

    @property
    def failed(self) -> int:
        return len(self.cells) - self.passed

    def cell(self, key: str) -> QualifyCell:
        for cell in self.cells:
            if cell.key == key:
                return cell
        raise KeyError(key)

    def as_dict(self) -> dict:
        return {
            "kind": "repro-qualify-report",
            "profile": self.profile,
            "layout": self.layout,
            "seed": self.seed,
            "cells": [cell.as_dict() for cell in self.cells],
            "notes": list(self.notes),
            "passed": self.passed,
            "failed": self.failed,
            "ok": self.ok,
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, fixed separators): the digest
        input, so two runs agree iff their reports are byte-identical."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    # -- rendering -----------------------------------------------------

    _HEADERS = ("cell", "kiops", "mbps", "p999_us", "wa", "gc",
                "stalls", "viol", "status")

    def _row(self, cell: QualifyCell) -> List[str]:
        m = cell.metrics

        def num(name, fmt="{:g}"):
            return fmt.format(m[name]) if name in m else "-"

        return [
            cell.key,
            num("kiops", "{:.2f}"),
            num("mbps", "{:.1f}"),
            num("p999_us", "{:.1f}"),
            num("write_amp", "{:.2f}"),
            num("gc_active"),
            num("cache_stalls"),
            num("violations"),
            "PASS" if cell.ok else "FAIL",
        ]

    def render(self) -> str:
        """ASCII table, one line per cell, plus failure detail lines."""
        rows = [self._row(cell) for cell in self.cells]
        widths = [
            max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
            for i, h in enumerate(self._HEADERS)
        ]
        lines = [
            f"== qualify: profile={self.profile} layout={self.layout} "
            f"seed={self.seed} =="
        ]
        lines.append("  ".join(
            h.ljust(widths[i]) for i, h in enumerate(self._HEADERS)
        ))
        lines.append("  ".join("-" * w for w in widths))
        for cell, row in zip(self.cells, rows):
            lines.append("  ".join(
                col.ljust(widths[i]) for i, col in enumerate(row)
            ))
            for failure in cell.failures:
                lines.append(f"    FAIL {failure}")
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append(
            f"result: {self.passed}/{len(self.cells)} cells pass"
            + ("" if self.ok else f" ({self.failed} FAILING)")
        )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = [
            f"### Qualification report: profile `{self.profile}`, "
            f"layout `{self.layout}`, seed {self.seed}",
            "",
            "| " + " | ".join(self._HEADERS) + " |",
            "|" + "|".join("---" for _ in self._HEADERS) + "|",
        ]
        for cell in self.cells:
            lines.append("| " + " | ".join(self._row(cell)) + " |")
        for cell in self.cells:
            for failure in cell.failures:
                lines.append(f"\n* **FAIL** `{cell.key}`: {failure}")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        lines.append(
            f"\n**{self.passed}/{len(self.cells)} cells pass**"
            + ("" if self.ok else f" — {self.failed} failing")
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Sweep assembly
# ----------------------------------------------------------------------


def qualify_sweep(
    profile: str = "smoke",
    systems: Optional[Sequence[str]] = None,
    blocks_kib: Optional[Sequence[int]] = None,
    queue_depths: Optional[Sequence[int]] = None,
    patterns: Optional[Sequence[str]] = None,
    layout: str = DEFAULT_LAYOUT,
    duration: Optional[float] = None,
    seed: int = 7,
    floors_override: Optional[Dict[str, Dict[str, float]]] = None,
    oracle: bool = True,
    sustained: bool = True,
) -> Sweep:
    """The qualification matrix as independent cells + a reduce step.

    ``floors_override`` maps cell key -> floor dict merged over the
    defaults (tests inject regressions this way); floors live in the
    reduce, so changing them never invalidates cached cells.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r} (have {sorted(PROFILES)})")
    shape = PROFILES[profile]
    systems = tuple(systems if systems is not None else shape.systems)
    blocks_kib = tuple(
        blocks_kib if blocks_kib is not None else shape.blocks_kib
    )
    queue_depths = tuple(
        queue_depths if queue_depths is not None else shape.queue_depths
    )
    patterns = tuple(patterns if patterns is not None else shape.patterns)
    duration = duration if duration is not None else shape.duration

    cells: List[QualifyCell] = []
    specs: List[RunSpec] = []

    def add(cell: QualifyCell, spec: RunSpec) -> None:
        cells.append(cell)
        specs.append(spec)

    for system in systems:
        for block_kib in blocks_kib:
            for qd in queue_depths:
                for pattern in patterns:
                    key = f"matrix/{system}/{block_kib}K/qd{qd}/{pattern}"
                    add(
                        QualifyCell(
                            key=key, phase="matrix", system=system,
                            block_kib=block_kib, queue_depth=qd,
                            pattern=pattern,
                            floors=default_floors("matrix", duration),
                        ),
                        RunSpec.make(
                            probe_qualify_cell, label=f"qualify/{key}",
                            system=system, layout=layout,
                            block_kib=block_kib, queue_depth=qd,
                            pattern=pattern, duration=duration,
                            warmup=shape.warmup, prefill=0.0, seed=seed,
                        ),
                    )
    if sustained:
        for system in systems:
            key = (f"sustained/{system}/{SUSTAINED_BLOCK_KIB}K/"
                   f"qd{SUSTAINED_QD}/seq")
            floors = default_floors("sustained", shape.sustained_duration)
            if system in SYNC_FLUSH_SYSTEMS:
                # Linux's per-group synchronous FLUSH keeps the write
                # cache drained below its own throughput ceiling, so
                # eviction pressure is structurally unreachable for it —
                # demanding stalls would fail a physically correct model.
                # GC and write amplification still apply.
                floors.pop("min_cache_stalls")
            add(
                QualifyCell(
                    key=key, phase="sustained", system=system,
                    block_kib=SUSTAINED_BLOCK_KIB, queue_depth=SUSTAINED_QD,
                    pattern="seq", floors=floors,
                ),
                RunSpec.make(
                    probe_qualify_cell, label=f"qualify/{key}",
                    system=system, layout=layout,
                    block_kib=SUSTAINED_BLOCK_KIB,
                    queue_depth=SUSTAINED_QD, pattern="seq",
                    duration=shape.sustained_duration,
                    warmup=shape.warmup,
                    prefill=shape.sustained_prefill, seed=seed,
                ),
            )
    if oracle:
        for system in shape.oracle_systems:
            key = f"oracle/{system}/qd{shape.oracle_depth}"
            add(
                QualifyCell(
                    key=key, phase="oracle", system=system,
                    block_kib=0, queue_depth=shape.oracle_depth,
                    pattern="ordered",
                    floors=default_floors("oracle", duration),
                ),
                RunSpec.make(
                    probe_qualify_oracle, label=f"qualify/{key}",
                    system=system, layout=layout,
                    depth=shape.oracle_depth,
                    prefill=shape.sustained_prefill,
                    max_points=shape.oracle_max_points, seed=seed,
                ),
            )

    overrides = floors_override or {}
    for cell in cells:
        if cell.key in overrides:
            cell.floors = {**cell.floors, **overrides[cell.key]}
    unknown = set(overrides) - {cell.key for cell in cells}
    if unknown:
        raise ValueError(f"floor overrides for unknown cells: {sorted(unknown)}")

    def reduce(results: List[Dict]) -> QualifyReport:
        report = QualifyReport(profile=profile, layout=layout, seed=seed)
        for cell, metrics in zip(cells, results):
            cell.metrics = {
                name: round(value, 4) for name, value in sorted(metrics.items())
            }
            cell.failures = check_floors(cell.metrics, cell.floors)
            report.cells.append(cell)
        gc_cells = [
            c for c in report.cells
            if c.metrics.get("gc_active") and c.metrics.get("cache_stalls")
        ]
        if gc_cells:
            report.notes.append(
                f"{len(gc_cells)} cells ran under steady-state GC with "
                "cache eviction pressure"
            )
        oracle_cells = [c for c in report.cells if c.phase == "oracle"]
        if oracle_cells:
            points = int(sum(
                c.metrics.get("crash_points", 0) for c in oracle_cells
            ))
            clean = all(
                c.metrics.get("violations", 1) == 0 for c in oracle_cells
            )
            report.notes.append(
                f"oracle: {points} crash points replayed across "
                f"{len(oracle_cells)} systems, "
                + ("zero ordering violations" if clean
                   else "ORDERING VIOLATIONS FOUND")
            )
        return report

    return Sweep(name="qualify", specs=specs, reduce=reduce)


def qualify_report(
    profile: str = "smoke",
    **kwargs,
) -> QualifyReport:
    """Run the qualification matrix on the process-wide sweep runner."""
    return run_sweep(qualify_sweep(profile=profile, **kwargs))


def write_report(report: QualifyReport, out_dir) -> List[str]:
    """Write ``qualify.json`` + ``qualify.md`` under ``out_dir``."""
    import os

    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, "qualify.json")
    md_path = os.path.join(out_dir, "qualify.md")
    with open(json_path, "w") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(md_path, "w") as handle:
        handle.write(report.render_markdown())
        handle.write("\n")
    return [json_path, md_path]


# ----------------------------------------------------------------------
# Perf-trajectory artifact (BENCH_qualify.json)
# ----------------------------------------------------------------------


def perf_baseline(events: int = 200_000) -> Dict[str, float]:
    """Wall-clock engine + stack throughput on this machine.

    The same two numbers the benchmark floors watch
    (``benchmarks/test_simulator_performance.py``): raw event rate of the
    simulator core, and end-to-end ordered writes/s through the rio stack.
    Wall-clock, so *not* deterministic — this feeds the committed perf
    trajectory, not the golden reports.
    """
    from repro.harness.experiment import fio_run
    from repro.sim.engine import Environment

    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1e-6)

    env.process(ticker())
    start = time.perf_counter()
    env.run(until=events * 1e-6)
    events_per_sec = events / max(time.perf_counter() - start, 1e-9)

    start = time.perf_counter()
    run = fio_run("rio", "optane", threads=2, duration=2e-3)
    writes_per_sec = run.ops / max(time.perf_counter() - start, 1e-9)

    return {
        "engine_events_per_sec": round(events_per_sec),
        "stack_writes_per_sec": round(writes_per_sec),
    }


def bench_artifact(report: QualifyReport) -> dict:
    """The committed perf-trajectory record: qualification headline
    numbers (deterministic) plus this machine's engine throughput."""
    def headline(cell: QualifyCell) -> dict:
        picked = {
            name: cell.metrics[name]
            for name in ("kiops", "mbps", "p999_us", "write_amp",
                         "gc_active", "cache_stalls", "violations",
                         "crash_points")
            if name in cell.metrics
        }
        picked["ok"] = cell.ok
        return picked

    return {
        "kind": "repro-bench-qualify",
        "profile": report.profile,
        "layout": report.layout,
        "seed": report.seed,
        "report_digest": report.digest(),
        "cells_pass": report.passed,
        "cells_total": len(report.cells),
        "cells": {cell.key: headline(cell) for cell in report.cells},
        "host_perf": perf_baseline(),
    }
