"""Saturation experiment: offered-load sweeps over the scale-out plane.

For each compared system, drive a sharded multi-initiator cluster
(:mod:`repro.scale`) with an open-loop Poisson load generator at an
ascending grid of offered loads and record, per load point:

* achieved throughput (the throughput-latency curve's x-axis),
* completion latency percentiles p50/p99/p999 (the y-axis — measured
  from *intended arrival time*, so queueing delay past the knee counts),
* busy cores on the initiator hosts and the targets (the
  busy-cores-vs-IOPS curve), and
* IOPS per busy initiator core — the paper's §6.1 CPU-efficiency metric
  at that load point.

The sweep decomposes into one independent, seeded simulation cell per
(system, offered load): cells fan out across ``--jobs`` workers and
memoize in the on-disk result cache, and because the reduce consumes
results in spec order, a parallel or cache-warm run is bit-identical to
a serial cold one (asserted by ``tests/harness/test_sweep.py``).

Entry points: ``repro saturate`` (CLI), :func:`saturation_curves`
(programmatic), :func:`saturation_sweep` (the raw sweep for custom
runners), :func:`knee_point` (locate where a curve saturates).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.harness.experiment import LAYOUTS, FigureResult
from repro.harness.sweep import RunSpec, Sweep, run_sweep

__all__ = [
    "DEFAULT_LOADS_KIOPS",
    "ENGINES",
    "SATURATE_SYSTEMS",
    "probe_saturation",
    "saturation_sweep",
    "saturation_curves",
    "knee_point",
]

#: Offered-load grid (kIOPS), ascending: brackets every system's knee on
#: the default single-Optane layout — barrier saturates ~85k, linux
#: ~125k, horae ~300k, rio ~510k.
DEFAULT_LOADS_KIOPS = (25, 50, 100, 200, 400, 800)

#: Systems compared by ``repro saturate`` (Figs. 10-12 plus barrier).
SATURATE_SYSTEMS = ("linux", "horae", "rio", "barrier")

#: A load point "keeps up" while achieved >= this fraction of offered;
#: the knee is the last such point.
KNEE_THRESHOLD = 0.9


#: Simulation-engine choices for a saturation cell.  "heap" is the
#: classic event-heap run loop; "calendar" is the bucketed batched-
#: dispatch scheduler (repro.sim.calendar) — bit-identical results,
#: different host-side cost profile.
ENGINES = ("heap", "calendar")


def probe_saturation(
    system: str,
    layout: str,
    offered_kiops: float,
    initiators: int = 2,
    tenants: int = 4,
    duration: float = 2e-3,
    warmup: float = 0.5e-3,
    write_blocks: int = 1,
    pattern: str = "rand",
    steering: str = "pin",
    seed: int = 42,
    engine: str = "heap",
) -> Dict[str, float]:
    """One saturation cell: fresh scale-out testbed, one open-loop run.

    Top-level and scalar-valued so the sweep runner can execute it in a
    worker process and key it in the content-addressed result cache.
    """
    from repro.scale import (
        OpenLoopConfig,
        ScaleOutCluster,
        ShardedStack,
        run_open_loop,
    )
    from repro.sim.calendar import CalendarEnvironment
    from repro.sim.engine import Environment

    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r} (have {sorted(LAYOUTS)})")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (have {ENGINES})")
    env = (CalendarEnvironment if engine == "calendar" else Environment)()
    cluster = ScaleOutCluster(
        env, LAYOUTS[layout], num_initiators=initiators, seed=seed,
        steering=steering,
    )
    stack = ShardedStack(cluster, system, num_streams=max(tenants, 1))
    run = run_open_loop(
        cluster, stack,
        OpenLoopConfig(
            offered_iops=offered_kiops * 1e3, tenants=tenants,
            duration=duration, warmup=warmup, write_blocks=write_blocks,
            pattern=pattern, seed=seed,
        ),
    )
    return {
        "offered_kiops": offered_kiops,
        "achieved_kiops": run.achieved_iops / 1e3,
        "p50_us": run.latency.p50 * 1e6,
        "p99_us": run.latency.p99 * 1e6,
        "p999_us": run.latency.p999 * 1e6,
        "initiator_busy_cores": run.initiator_busy_cores,
        "target_busy_cores": run.target_busy_cores,
        "kiops_per_core": run.iops_per_busy_core / 1e3,
        "samples": float(run.latency.count),
    }


def saturation_sweep(
    systems: Sequence[str] = SATURATE_SYSTEMS,
    loads_kiops: Sequence[float] = DEFAULT_LOADS_KIOPS,
    layout: str = "optane",
    initiators: int = 2,
    tenants: int = 4,
    duration: float = 2e-3,
    steering: str = "pin",
    seed: int = 42,
    engine: str = "heap",
) -> Sweep:
    """The saturation experiment as independent cells + a reduce step."""
    loads = sorted(loads_kiops)
    cells = [(system, load) for system in systems for load in loads]
    # The default engine is omitted from the cell kwargs so every cell
    # cached before the engine knob existed keeps its digest; a
    # non-default engine keys its own cells (results are asserted
    # bit-identical, but a scheduler bug must never poison heap cells).
    engine_kwargs = {} if engine == "heap" else {"engine": engine}
    specs = [
        RunSpec.make(
            probe_saturation,
            label=f"saturate/{system}/{load:g}k",
            system=system, layout=layout, offered_kiops=load,
            initiators=initiators, tenants=tenants, duration=duration,
            steering=steering, seed=seed, **engine_kwargs,
        )
        for system, load in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name="Saturation",
            description=(
                f"open-loop offered-load sweep, {layout}, "
                f"{initiators} initiator(s) x {tenants} tenant(s), "
                f"steering={steering}: throughput-latency and "
                "busy-cores-vs-IOPS curves"
            ),
            headers=[
                "system", "offered_kiops", "achieved_kiops",
                "p50_us", "p99_us", "p999_us",
                "initiator_cpu", "target_cpu", "kiops_per_core",
            ],
        )
        for (system, _load), run in zip(cells, results):
            result.add(
                system=system,
                offered_kiops=run["offered_kiops"],
                achieved_kiops=round(run["achieved_kiops"], 1),
                p50_us=round(run["p50_us"], 2),
                p99_us=round(run["p99_us"], 2),
                p999_us=round(run["p999_us"], 2),
                initiator_cpu=round(run["initiator_busy_cores"], 3),
                target_cpu=round(run["target_busy_cores"], 3),
                kiops_per_core=round(run["kiops_per_core"], 1),
            )
        for system in systems:
            knee = knee_point(result, system)
            if knee is not None:
                result.notes.append(
                    f"{system} knee: {knee['achieved_kiops']:g} kIOPS "
                    f"achieved at {knee['offered_kiops']:g} kIOPS offered, "
                    f"{knee['kiops_per_core']:g} kIOPS per busy "
                    "initiator core"
                )
        return result

    return Sweep(name="saturate", specs=specs, reduce=reduce)


def saturation_curves(
    systems: Sequence[str] = SATURATE_SYSTEMS,
    loads_kiops: Sequence[float] = DEFAULT_LOADS_KIOPS,
    layout: str = "optane",
    initiators: int = 2,
    tenants: int = 4,
    duration: float = 2e-3,
    steering: str = "pin",
    seed: int = 42,
    engine: str = "heap",
) -> FigureResult:
    """Run the saturation sweep on the process-wide runner."""
    return run_sweep(saturation_sweep(
        systems=systems, loads_kiops=loads_kiops, layout=layout,
        initiators=initiators, tenants=tenants, duration=duration,
        steering=steering, seed=seed, engine=engine,
    ))


def knee_point(result: FigureResult, system: str,
               threshold: float = KNEE_THRESHOLD) -> Optional[Dict]:
    """The last load point where ``system`` still keeps up with the
    offered rate (achieved >= threshold * offered); falls back to the
    highest-throughput row when it never does."""
    rows = result.series(system=system)
    if not rows:
        return None
    keeping_up = [
        row for row in rows
        if row["offered_kiops"] > 0
        and row["achieved_kiops"] >= threshold * row["offered_kiops"]
    ]
    if keeping_up:
        return max(keeping_up, key=lambda row: row["offered_kiops"])
    return max(rows, key=lambda row: row["achieved_kiops"])
