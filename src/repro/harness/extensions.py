"""Beyond the paper's figures: ablations and extension studies.

These back the design-choice ablations DESIGN.md calls out and the
paper's forward-looking claims:

* :func:`ablation_qp_affinity` — Principle 2 (§4.5): stream→QP affinity
  vs spraying requests across queue pairs;
* :func:`ablation_attribute_persistence` — §4.3.2's claim that storing
  ordering attributes "does not introduce much overhead";
* :func:`sensitivity_faster_ssd` — §3.1's prediction that faster SSDs
  make synchronous ordering relatively more expensive;
* :func:`transport_comparison` — §4.5's claim that Principle 2 (and the
  whole design) carries to TCP transports;
* :func:`multi_initiator_scaling` — the §4.9 extension: multiple
  initiator servers sharing one target array.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.fio import run_block_workload
from repro.cluster import Cluster
from repro.harness.experiment import FigureResult, build_cluster, fio_run
from repro.hw.ssd import OPTANE_905P
from repro.multi import MultiInitiatorCluster
from repro.sim.engine import Environment
from repro.systems import make_stack
from repro.systems.rio import RioStack

__all__ = [
    "ablation_qp_affinity",
    "ablation_attribute_persistence",
    "sensitivity_faster_ssd",
    "transport_comparison",
    "multi_initiator_scaling",
    "barrier_comparison",
    "oltp_comparison",
]


def oltp_comparison(
    threads: Sequence[int] = (1, 4, 8),
    duration: float = 4e-3,
    layout: str = "optane",
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> FigureResult:
    """MySQL-style OLTP (redo group commit + IPU page cleaning) on the
    three file systems — the §3.1 motivation workload generalized."""
    from repro.apps.oltp import run_oltp
    from repro.fs.filesystem import make_filesystem

    result = FigureResult(
        name="Extension: OLTP (MySQL-style)",
        description="redo-logged transactions with in-place page cleaning",
        headers=["fs", "threads", "ktps", "cleaner_runs"],
    )
    for kind in kinds:
        for count in threads:
            cluster = build_cluster(layout)
            fs = make_filesystem(kind, cluster,
                                 num_journals=(1 if kind == "ext4" else 24))
            run = run_oltp(cluster, fs, threads=count, duration=duration,
                           warmup=duration / 10)
            result.add(fs=kind, threads=count, ktps=run.tps / 1e3,
                       cleaner_runs=run.cleaner_runs)
    return result


def barrier_comparison(
    threads: Sequence[int] = (1, 4, 8, 12),
    duration: float = 3e-3,
    layout: str = "p5800x",
) -> FigureResult:
    """BarrierFS-style ordering vs Rio (§2.2's scalability argument).

    The paper could not run BarrierFS ("we do not have barrier-enabled
    storage"); the simulator can.  Barrier ordering avoids the FLUSH and
    the completion wait, but enforcing the *intermediate* order serializes
    persistence through one lane and funnels every core through one queue:
    on a fast drive it flatlines while Rio — which relaxes intermediate
    order — scales to device saturation.  This is exactly the paper's
    "intermediate storage order is not a necessity and can be relaxed".
    """
    result = FigureResult(
        name="Extension: barrier interface (§2.2)",
        description=f"BarrierFS-style stack vs Rio on {layout}: 4KB random "
        "ordered writes",
        headers=["system", "threads", "kiops"],
    )
    for system in ("barrier", "rio", "linux"):
        for count in threads:
            run = fio_run(system, layout, threads=count, duration=duration,
                          queue_depth=16)
            result.add(system=system, threads=count, kiops=run.iops / 1e3)
    return result


def ablation_qp_affinity(
    threads: int = 2,
    duration: float = 3e-3,
    layout: str = "optane",
    queue_depth: int = 8,
) -> FigureResult:
    """Stream→QP affinity on vs off: ordering stalls at the target.

    Run below device saturation so gate arrivals reflect *delivery* order
    (at saturation, data-fetch queueing shuffles arrivals for everyone)."""
    result = FigureResult(
        name="Ablation: Principle 2",
        description="stream->QP affinity vs spraying across queue pairs "
        "(4KB random ordered writes)",
        headers=["affinity", "kiops", "ooo_arrivals", "stall_ms"],
    )
    for affinity in (True, False):
        cluster = build_cluster(layout)
        stack = RioStack(cluster, num_streams=threads, qp_affinity=affinity)
        run = run_block_workload(cluster, stack, threads=threads,
                                 duration=duration, queue_depth=queue_depth)
        policy = stack.device.policies[0]
        result.add(
            affinity=affinity,
            kiops=run.iops / 1e3,
            ooo_arrivals=policy.out_of_order_arrivals,
            stall_ms=policy.stall_time * 1e3,
        )
    return result


def ablation_attribute_persistence(
    threads: int = 1,
    duration: float = 3e-3,
    layout: str = "optane",
) -> FigureResult:
    """Rio's PMR attribute writes vs the orderless baseline: the extra
    target CPU per operation is the cost of recoverable ordering."""
    result = FigureResult(
        name="Ablation: attribute persistence",
        description="target-side CPU cost of persisting ordering "
        "attributes (per 100K IOPS)",
        headers=["system", "kiops", "target_cpu", "tgt_cpu_per_100kiops",
                 "pmr_writes"],
    )
    for system in ("orderless", "rio"):
        cluster = build_cluster(layout)
        stack = make_stack(system, cluster, num_streams=threads)
        run = run_block_workload(cluster, stack, threads=threads,
                                 duration=duration)
        result.add(
            system=system,
            kiops=run.iops / 1e3,
            target_cpu=run.target_busy_cores,
            tgt_cpu_per_100kiops=run.target_busy_cores
            / max(run.iops / 1e5, 1e-9),
            pmr_writes=cluster.targets[0].pmr.writes,
        )
    return result


def sensitivity_faster_ssd(
    threads: int = 4,
    duration: float = 3e-3,
) -> FigureResult:
    """§3.1: with faster SSDs, synchronous ordering falls further behind.

    Enough threads that Rio can actually exploit the faster device; the
    synchronous systems stay latency-bound per thread."""
    result = FigureResult(
        name="Sensitivity: faster SSDs",
        description="Rio's advantage over synchronous ordering grows with "
        "device speed (4 threads, 4KB random ordered writes)",
        headers=["ssd", "system", "kiops", "rio_ratio"],
    )
    for layout in ("optane", "p5800x"):
        runs = {
            system: fio_run(system, layout, threads=threads,
                            duration=duration)
            for system in ("linux", "horae", "rio")
        }
        rio_iops = runs["rio"].iops
        for system, run in runs.items():
            result.add(
                ssd=layout,
                system=system,
                kiops=run.iops / 1e3,
                rio_ratio=rio_iops / run.iops if run.iops else None,
            )
    return result


def transport_comparison(
    threads: int = 2,
    duration: float = 3e-3,
) -> FigureResult:
    """RDMA vs TCP: the ordering story survives the transport change."""
    result = FigureResult(
        name="Extension: NVMe/TCP",
        description="ordered 4KB writes over RDMA vs TCP transports",
        headers=["transport", "system", "kiops", "initiator_cpu"],
    )
    for transport in ("rdma", "tcp"):
        for system in ("linux", "rio"):
            env = Environment()
            cluster = Cluster(env, target_ssds=((OPTANE_905P,),),
                              transport=transport)
            stack = make_stack(system, cluster, num_streams=threads)
            run = run_block_workload(cluster, stack, threads=threads,
                                     duration=duration)
            result.add(
                transport=transport,
                system=system,
                kiops=run.iops / 1e3,
                initiator_cpu=run.initiator_busy_cores,
            )
    return result


def multi_initiator_scaling(
    initiator_counts: Sequence[int] = (1, 2, 4),
    streams_per_initiator: int = 4,
    duration: float = 3e-3,
) -> FigureResult:
    """§4.9: aggregate ordered throughput of N initiators sharing two
    target servers (each initiator drives its own stream range)."""
    result = FigureResult(
        name="Extension: multiple initiators (§4.9)",
        description="aggregate ordered 4KB write throughput, two shared "
        "Optane targets",
        headers=["initiators", "total_kiops", "per_initiator_kiops"],
    )
    for count in initiator_counts:
        env = Environment()
        multi = MultiInitiatorCluster(
            env,
            target_ssds=((OPTANE_905P,), (OPTANE_905P,)),
            num_initiators=count,
            streams_per_initiator=streams_per_initiator,
        )
        done = [0]

        def writer(node, stream):
            core = node.server.cpus.pick(stream)
            area = (node.index * streams_per_initiator + stream) * 8_000_000
            inflight = []
            i = 0
            while env.now < duration:
                event = yield from node.rio.write(
                    core, stream, lba=area + i * 2, nblocks=1,
                )
                i += 1
                inflight.append(event)
                if len(inflight) >= 32:
                    yield env.any_of(inflight)
                    for e in inflight:
                        if e.triggered:
                            done[0] += 1
                    inflight = [e for e in inflight if not e.triggered]

        for node in multi.initiators:
            for stream in range(streams_per_initiator):
                env.process(writer(node, stream))
        env.run(until=duration)
        result.add(
            initiators=count,
            total_kiops=done[0] / duration / 1e3,
            per_initiator_kiops=done[0] / duration / 1e3 / count,
        )
    return result
