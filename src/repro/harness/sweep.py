"""Parallel experiment runner: hashable run specs, a worker pool, a cache.

Every figure, claims scorecard and chaos suite in this repository is a
*sweep*: dozens of completely independent simulations (one per
system × thread-count × ... cell) whose outputs are then reduced into one
table.  The seed code replayed them serially in one process; this module
decomposes them instead:

* :class:`RunSpec` — one cell, named by ``"module:function"`` plus a
  frozen kwargs tuple.  Specs are *content-addressed*: :meth:`RunSpec.digest`
  hashes a canonical JSON encoding, so the same cell always has the same
  identity across processes and runs.
* :class:`SweepRunner` — executes a list of specs, optionally across a
  ``multiprocessing`` pool (processes, not threads: runs are CPU-bound
  pure Python, so threads would serialize on the GIL) and optionally
  memoized through :class:`~repro.harness.cache.ResultCache`.  Results
  always come back **in spec order**, never completion order, so a
  parallel sweep is bit-identical to a serial one.
* :class:`Sweep` — specs plus a reduce step.  The figure entry points in
  :mod:`repro.harness.figures` each build a ``Sweep`` and feed it through
  the process-wide default runner, which ``repro sweep --jobs N --cache``
  reconfigures.

Cells must be *top-level* functions taking only canonically-encodable
kwargs (JSON scalars, lists/tuples, dicts) and returning picklable values
— that is what makes them shippable to workers and hashable for the
cache.  See ``probe_fio`` and friends in :mod:`repro.harness.figures`.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import multiprocessing
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.cache import ResultCache

__all__ = [
    "RunSpec",
    "Sweep",
    "SweepStats",
    "SweepRunner",
    "configure",
    "configured",
    "get_runner",
    "run_sweep",
]


# ----------------------------------------------------------------------
# Run specs
# ----------------------------------------------------------------------


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to canonical JSON-encodable form (or raise).

    Tuples and lists normalize to lists (a spec built with ``threads=(1, 2)``
    and one built with ``threads=[1, 2]`` are the same cell); dict keys are
    sorted by the JSON encoder.  Anything else is rejected so digests can
    never silently depend on ``repr`` formatting or object identity.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(val) for key, val in value.items()}
    raise TypeError(
        f"RunSpec kwargs must be JSON-encodable scalars/lists/dicts, "
        f"got {value!r} ({type(value).__name__})"
    )


def _freeze(value: Any) -> Any:
    """Hashable mirror of :func:`_canonical` for storing kwargs in a spec."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    return value


def _thaw(value: Any) -> Any:
    """Frozen kwargs back to call form (tuples stay tuples: the probes all
    take sequences, for which tuples are fine)."""
    return value


@dataclass(frozen=True)
class RunSpec:
    """One independent, hashable unit of sweep work.

    ``fn`` is a ``"package.module:function"`` path to a top-level callable;
    ``kwargs`` is a frozen, sorted tuple of ``(name, value)`` pairs.  The
    spec — not the callable — crosses process boundaries, so workers under
    any ``multiprocessing`` start method can re-resolve it by import.
    """

    fn: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    label: str = ""

    @classmethod
    def make(cls, fn: Any, label: str = "", **kwargs) -> "RunSpec":
        """Build a spec from a callable (or ``module:name`` string)."""
        if callable(fn):
            name = getattr(fn, "__qualname__", fn.__name__)
            if "." in name or "<" in name:
                raise TypeError(
                    f"sweep cells must be top-level functions, got {name!r}"
                )
            fn = f"{fn.__module__}:{name}"
        frozen = tuple(sorted((key, _freeze(val)) for key, val in kwargs.items()))
        spec = cls(fn=fn, kwargs=frozen, label=label)
        spec.digest()  # validate encodability eagerly, at build time
        return spec

    def resolve(self) -> Callable:
        module_name, _, fn_name = self.fn.partition(":")
        if not fn_name:
            raise ValueError(f"spec fn {self.fn!r} is not 'module:function'")
        module = importlib.import_module(module_name)
        return getattr(module, fn_name)

    def call_kwargs(self) -> Dict[str, Any]:
        return {key: _thaw(val) for key, val in self.kwargs}

    def execute(self) -> Any:
        return self.resolve()(**self.call_kwargs())

    def digest(self) -> str:
        """Content hash: same fn + same kwargs -> same digest, everywhere."""
        payload = json.dumps(
            {"fn": self.fn,
             "kwargs": {key: _canonical(val) for key, val in self.kwargs}},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def _execute_spec(spec: RunSpec) -> Any:
    """Top-level pool target (must be importable for pickling)."""
    return spec.execute()


# ----------------------------------------------------------------------
# Sweeps and the runner
# ----------------------------------------------------------------------


@dataclass
class Sweep:
    """A named batch of independent specs plus a reduce step.

    ``reduce`` receives the raw results **in spec order** and assembles
    the figure table; it runs in the parent process and may close over
    whatever context it likes.
    """

    name: str
    specs: List[RunSpec]
    reduce: Callable[[List[Any]], Any] = lambda results: results


@dataclass
class SweepStats:
    """What one :meth:`SweepRunner.map` call actually did."""

    scheduled: int = 0
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1

    def merged(self, other: "SweepStats") -> "SweepStats":
        return SweepStats(
            scheduled=self.scheduled + other.scheduled,
            cache_hits=self.cache_hits + other.cache_hits,
            executed=self.executed + other.executed,
            jobs=max(self.jobs, other.jobs),
        )

    def summary(self) -> str:
        return (f"{self.scheduled} spec(s): {self.cache_hits} cached, "
                f"{self.executed} executed (jobs={self.jobs})")


def _pool_context():
    """Prefer fork (cheap, inherits the imported simulator); fall back to
    the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class SweepRunner:
    """Executes spec lists serially or across a process pool, with memoization.

    ``jobs=1`` runs in-process (and is the reference for bit-identity);
    ``jobs=N`` fans uncached specs across ``N`` worker processes.  With a
    :class:`ResultCache` attached, completed specs are skipped on re-runs
    and fresh results are written back as they arrive.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        #: Aggregated over every ``map``/``run`` call on this runner.
        self.stats = SweepStats(jobs=jobs)

    # ------------------------------------------------------------------

    def map(self, specs: Sequence[RunSpec]) -> List[Any]:
        """All spec results, in spec order (parallel or not, cached or not)."""
        stats = SweepStats(scheduled=len(specs), jobs=self.jobs)
        results: List[Any] = [None] * len(specs)
        pending: List[Tuple[int, RunSpec, str]] = []

        if self.cache is not None:
            for index, spec in enumerate(specs):
                digest = spec.digest()
                hit, value = self.cache.get(digest)
                if hit:
                    results[index] = value
                    stats.cache_hits += 1
                else:
                    pending.append((index, spec, digest))
        else:
            pending = [(i, spec, "") for i, spec in enumerate(specs)]

        stats.executed = len(pending)
        if pending:
            if self.jobs == 1 or len(pending) == 1:
                fresh = [_execute_spec(spec) for _i, spec, _d in pending]
            else:
                workers = min(self.jobs, len(pending))
                with _pool_context().Pool(processes=workers) as pool:
                    fresh = pool.map(
                        _execute_spec, [spec for _i, spec, _d in pending]
                    )
            for (index, _spec, digest), value in zip(pending, fresh):
                results[index] = value
                if self.cache is not None:
                    self.cache.put(digest, value)

        self.stats = self.stats.merged(stats)
        return results

    def run(self, sweep: Sweep) -> Any:
        """Map the sweep's specs, then reduce them to the final artifact."""
        return sweep.reduce(self.map(sweep.specs))


# ----------------------------------------------------------------------
# Process-wide default runner (what the figure entry points use)
# ----------------------------------------------------------------------

_default_runner = SweepRunner(jobs=1, cache=None)


def get_runner() -> SweepRunner:
    """The process-wide runner used by :func:`run_sweep`."""
    return _default_runner


def configure(jobs: int = 1, cache: Optional[ResultCache] = None) -> SweepRunner:
    """Replace the default runner (what ``repro sweep`` does at startup)."""
    global _default_runner
    _default_runner = SweepRunner(jobs=jobs, cache=cache)
    return _default_runner


@contextmanager
def configured(jobs: int = 1, cache: Optional[ResultCache] = None):
    """Temporarily swap the default runner (tests, ``evaluate_claims``)."""
    global _default_runner
    previous = _default_runner
    _default_runner = SweepRunner(jobs=jobs, cache=cache)
    try:
        yield _default_runner
    finally:
        _default_runner = previous


def run_sweep(sweep: Sweep) -> Any:
    """Run a sweep on the default runner (serial and uncached unless
    :func:`configure`/:func:`configured` said otherwise)."""
    return _default_runner.run(sweep)
