"""Multi-tenant experiment: per-class knee curves and the noisy-neighbor
storm.

Two entry points ride the sweep runner / result cache:

* **knee curves** (:func:`tenants_sweep` / :func:`tenant_curves`, CLI
  ``repro tenants``) — the ``repro saturate`` offered-load sweep with the
  tenant plane layered on: a Zipf-skewed tenant population mapped onto
  the streams by a :class:`~repro.tenants.TenantDirectory`, optional
  diurnal rate modulation, optional QoS admission, and per-class
  (``gold``/``silver``/``bronze``) p50/p99/p999 columns.  A *degenerate*
  configuration (no Zipf skew, no diurnal, no QoS) reduces bit-exactly
  to the existing :func:`~repro.harness.saturate.probe_saturation`
  cells — same digests, same rows — so warm caches carry over.
* **noisy-neighbor storm** (:func:`probe_noisy_neighbor` /
  :func:`noisy_neighbor_result`) — the acceptance scenario: one quiet
  gold tenant and one bronze aggressor offering a multiple of the
  target's capacity.  With QoS on, the aggressor is paced/shed at target
  admission (token bucket + weighted-fair deficit) and the gold p999
  stays within its SLO; with QoS off the same seed demonstrably
  violates it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.harness.experiment import LAYOUTS, FigureResult
from repro.harness.saturate import (
    DEFAULT_LOADS_KIOPS,
    knee_point,
    probe_saturation,
    saturation_sweep,
)
from repro.harness.sweep import RunSpec, Sweep, run_sweep

__all__ = [
    "DEFAULT_TENANT_LOADS_KIOPS",
    "TENANT_SYSTEMS",
    "probe_tenants",
    "probe_noisy_neighbor",
    "tenants_sweep",
    "tenant_curves",
    "noisy_neighbor_result",
    "tenants_report",
]

#: Systems compared by ``repro tenants`` (the acceptance trio).
TENANT_SYSTEMS = ("linux", "horae", "rio")

#: Offered-load ladder for the per-class knee curves, in kIOPS.  The
#: same ladder (and the same int literals — digests care) as saturate's.
DEFAULT_TENANT_LOADS_KIOPS = DEFAULT_LOADS_KIOPS

#: Tenant classes reported as per-class columns, in severity order.
_CLASS_NAMES = ("gold", "silver", "bronze")

#: The storm's driver hardening: QFULL requeues with backoff turn
#: target-side sheds into initiator-side pacing (the overload plane's
#: ``full`` protection profile).
_STORM_COMMAND_TIMEOUT = 1.5e-3
_STORM_QFULL_BACKOFF = 20e-6


def _storm_hardening():
    from repro.nvmeof.initiator import DriverHardening

    return DriverHardening(
        command_timeout=_STORM_COMMAND_TIMEOUT,
        max_retries=5,
        backoff=2.0,
        jitter=0.25,
        retry_budget_ratio=0.1,
        retry_budget_cap=8.0,
        qfull_backoff=_STORM_QFULL_BACKOFF,
        qfull_max_requeues=256,
        fail_fast=True,
    )


def _install_qos(cluster, directory, quantum: float) -> list:
    """Arm every target with a QoS admission controller; returns them."""
    from repro.robust.admission import (
        AdmissionConfig,
        AdmissionController,
        TenantQos,
    )

    controllers = []
    for target in cluster.targets:
        controller = AdmissionController(
            AdmissionConfig(max_inflight_ordered=128,
                            max_inflight_unordered=128),
            qos=TenantQos.from_directory(directory, quantum=quantum),
        )
        target.install_admission(controller)
        controllers.append(controller)
    return controllers


def _shed_counts(cluster) -> Dict[str, float]:
    """Aggregate admission shed counters over every target."""
    by_reason: Dict[str, float] = {}
    total = 0.0
    for target in cluster.targets:
        if target.admission is None:
            continue
        total += target.admission.shed
        for reason, n in target.admission.shed_by_reason.items():
            by_reason[reason] = by_reason.get(reason, 0.0) + n
    return {
        "sheds": total,
        "shed_pace": by_reason.get("pace", 0.0),
        "shed_wfq": by_reason.get("wfq", 0.0),
    }


def probe_tenants(
    system: str,
    layout: str,
    offered_kiops: float,
    initiators: int = 2,
    streams: int = 4,
    num_tenants: int = 64,
    zipf_alpha: float = 1.1,
    diurnal_amplitude: float = 0.0,
    diurnal_period: float = 1e-3,
    qos: bool = False,
    quantum: float = 8.0,
    duration: float = 2e-3,
    warmup: float = 0.5e-3,
    write_blocks: int = 1,
    pattern: str = "rand",
    steering: str = "pin",
    seed: int = 42,
) -> Dict[str, float]:
    """One tenant-plane load point: fresh testbed, one open-loop run.

    Top-level and scalar-valued so the sweep runner can execute it in a
    worker process and key it in the content-addressed result cache.
    """
    from repro.scale import (
        OpenLoopConfig,
        ScaleOutCluster,
        ShardedStack,
        run_open_loop,
    )
    from repro.sim.engine import Environment
    from repro.tenants import (
        DiurnalProfile,
        TenantDirectory,
        TenantTrafficPlane,
    )

    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r} (have {sorted(LAYOUTS)})")
    env = Environment()
    cluster = ScaleOutCluster(
        env, LAYOUTS[layout], num_initiators=initiators, seed=seed,
        steering=steering,
        hardening=_storm_hardening() if qos else None,
    )
    stack = ShardedStack(cluster, system, num_streams=max(streams, 1))
    directory = TenantDirectory(
        num_tenants=num_tenants, num_streams=max(streams, 1), seed=seed,
        zipf_alpha=zipf_alpha,
    )
    plane = TenantTrafficPlane(
        directory,
        diurnal=DiurnalProfile(amplitude=diurnal_amplitude,
                               period=diurnal_period),
    )
    if qos:
        _install_qos(cluster, directory, quantum)
    run = run_open_loop(
        cluster, stack,
        OpenLoopConfig(
            offered_iops=offered_kiops * 1e3, tenants=max(streams, 1),
            duration=duration, warmup=warmup, write_blocks=write_blocks,
            pattern=pattern, seed=seed,
        ),
        plane=plane,
    )
    row: Dict[str, float] = {
        "offered_kiops": offered_kiops,
        "achieved_kiops": run.achieved_iops / 1e3,
        "p50_us": run.latency.p50 * 1e6,
        "p99_us": run.latency.p99 * 1e6,
        "p999_us": run.latency.p999 * 1e6,
        "initiator_busy_cores": run.initiator_busy_cores,
        "target_busy_cores": run.target_busy_cores,
        "kiops_per_core": run.iops_per_busy_core / 1e3,
        "samples": float(run.latency.count),
    }
    for name, stats in plane.class_summary().items():
        for key in ("count", "p50_us", "p99_us", "p999_us"):
            row[f"{name}_{key}"] = stats[key]
    row.update(_shed_counts(cluster))
    return row


def _is_degenerate(num_tenants: int, zipf_alpha: Optional[float],
                   diurnal_amplitude: float, qos: bool) -> bool:
    """True when the tenant plane adds nothing over plain saturation:
    no skew requested (``zipf_alpha`` None/0), no diurnal breathing, no
    QoS — or a single-tenant population, which cannot skew at all."""
    if qos or diurnal_amplitude != 0.0:
        return False
    return num_tenants == 1 or not zipf_alpha


def tenants_sweep(
    systems: Sequence[str] = TENANT_SYSTEMS,
    loads_kiops: Sequence[float] = DEFAULT_LOADS_KIOPS,
    layout: str = "optane",
    initiators: int = 2,
    streams: int = 4,
    num_tenants: int = 64,
    zipf_alpha: Optional[float] = 1.1,
    diurnal_amplitude: float = 0.0,
    diurnal_period: float = 1e-3,
    qos: bool = False,
    quantum: float = 8.0,
    duration: float = 2e-3,
    steering: str = "pin",
    seed: int = 42,
) -> Sweep:
    """The tenant experiment as independent cells + a reduce step.

    A degenerate configuration (see :func:`_is_degenerate`) *is* the
    saturation sweep: the very same ``probe_saturation`` cells — same
    digests, so a warm ``repro saturate`` cache satisfies it with zero
    executions — reduced to the very same rows.
    """
    if _is_degenerate(num_tenants, zipf_alpha, diurnal_amplitude, qos):
        base = saturation_sweep(
            systems=systems, loads_kiops=loads_kiops, layout=layout,
            initiators=initiators, tenants=streams, duration=duration,
            steering=steering, seed=seed,
        )
        return Sweep(name="tenants", specs=base.specs, reduce=base.reduce)

    loads = sorted(loads_kiops)
    cells = [(system, load) for system in systems for load in loads]
    specs = [
        RunSpec.make(
            probe_tenants,
            label=f"tenants/{system}/{load:g}k",
            system=system, layout=layout, offered_kiops=load,
            initiators=initiators, streams=streams,
            num_tenants=num_tenants, zipf_alpha=zipf_alpha,
            diurnal_amplitude=diurnal_amplitude,
            diurnal_period=diurnal_period, qos=qos, quantum=quantum,
            duration=duration, steering=steering, seed=seed,
        )
        for system, load in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name="Tenants",
            description=(
                f"tenant-plane offered-load sweep, {layout}, "
                f"{initiators} initiator(s), {num_tenants} tenant(s) over "
                f"{streams} stream(s), zipf_alpha={zipf_alpha:g}, "
                f"diurnal_amplitude={diurnal_amplitude:g}, "
                f"qos={'on' if qos else 'off'}: per-class tail-latency "
                "knee curves"
            ),
            headers=[
                "system", "offered_kiops", "achieved_kiops", "p99_us",
                "gold_p999_us", "silver_p999_us", "bronze_p999_us",
                "sheds",
            ],
        )
        for (system, _load), run in zip(cells, results):
            result.add(
                system=system,
                offered_kiops=run["offered_kiops"],
                achieved_kiops=round(run["achieved_kiops"], 1),
                p99_us=round(run["p99_us"], 2),
                gold_p999_us=round(run.get("gold_p999_us", 0.0), 2),
                silver_p999_us=round(run.get("silver_p999_us", 0.0), 2),
                bronze_p999_us=round(run.get("bronze_p999_us", 0.0), 2),
                sheds=run.get("sheds", 0.0),
            )
        for system in systems:
            knee = knee_point(result, system)
            if knee is not None:
                result.notes.append(
                    f"{system} knee: {knee['achieved_kiops']:g} kIOPS "
                    f"achieved at {knee['offered_kiops']:g} kIOPS offered; "
                    f"gold p999 {knee['gold_p999_us']:g} us, bronze p999 "
                    f"{knee['bronze_p999_us']:g} us"
                )
        return result

    return Sweep(name="tenants", specs=specs, reduce=reduce)


def tenant_curves(**kwargs) -> FigureResult:
    """Run the tenant sweep on the process-wide runner."""
    return run_sweep(tenants_sweep(**kwargs))


# ----------------------------------------------------------------------
# The noisy-neighbor storm (acceptance scenario)
# ----------------------------------------------------------------------


def _storm_class(tenant: int) -> str:
    """Storm tenancy: tenant 0 is the quiet gold tenant, everyone else
    is bronze (the aggressor)."""
    return "gold" if tenant == 0 else "bronze"


class _StormPlane:
    """Two-lane tenant plane: lane/stream 0 = gold, lane 1 = bronze."""

    def __init__(self):
        from repro.tenants import ClassAccountant, DEFAULT_CLASSES

        self.accountant = ClassAccountant(DEFAULT_CLASSES)
        self.ops_by_class: Dict[str, int] = {}

    def peak_factor(self) -> float:
        return 1.0

    def keep(self, rng, now: float) -> bool:
        return True

    def pick(self, stream: int, rng) -> int:
        return stream  # lane identity: tenant id == stream id

    def record(self, tenant: int, latency_s: float) -> None:
        name = _storm_class(tenant)
        self.accountant.record(name, latency_s)
        self.ops_by_class[name] = self.ops_by_class.get(name, 0) + 1

    def class_summary(self):
        return self.accountant.summary()


def probe_noisy_neighbor(
    system: str,
    layout: str = "optane",
    gold_kiops: float = 20.0,
    aggressor_kiops: float = 40.0,
    aggressor_lanes: int = 30,
    aggressor_blocks: int = 32,
    gold_slo_p999_us: float = 2_000.0,
    pace_kiops: float = 0.1,
    qos: bool = True,
    quantum: float = 8.0,
    duration: float = 3e-3,
    warmup: float = 2e-3,
    steering: str = "pin",
    seed: int = 42,
) -> Dict[str, float]:
    """The seeded storm: a quiet gold tenant vs. a bronze aggressor.

    The aggressor fans ``aggressor_kiops`` of *large* writes
    (``aggressor_blocks`` blocks — 128 KB at the default) over
    ``aggressor_lanes`` ordered streams, about twice what the device's
    serialized media pipe can program; the gold tenant offers
    ``gold_kiops`` of small writes on its own stream.  Large writes are
    the channel that hurts *every* compared system: the SSD programs
    media serially, so even linux's one-op-per-stream dispatch keeps the
    pipe backlogged by ``aggressor_lanes`` big writes and the gold
    tenant's 4 KB op waits milliseconds behind them (many lanes, because
    the compared systems serialize dispatch per stream — a single-stream
    aggressor could never flood the device).  With ``qos=True`` the
    target's admission pacing (a token bucket capped at ``pace_kiops``
    per aggressor tenant, plus the weighted-fair deficit) sheds the
    aggressor at the door — before any data is fetched or media touched —
    the driver's QFULL backoff paces it, and tenant-class core steering
    keeps gold's receive/completion processing on a private core slice;
    the gold tenant's p999 stays within ``gold_slo_p999_us``.  With
    ``qos=False`` the same seed drives the same storm through an
    unprotected target and demonstrably violates the SLO.
    """
    from repro.robust.admission import (
        AdmissionConfig,
        AdmissionController,
        QosClass,
        TenantQos,
    )
    from repro.scale import (
        OpenLoopConfig,
        ScaleOutCluster,
        ShardedStack,
        run_open_loop,
    )
    from repro.sim.engine import Environment

    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r} (have {sorted(LAYOUTS)})")
    if aggressor_lanes < 1:
        raise ValueError("need at least one aggressor lane")
    env = Environment()
    cluster = ScaleOutCluster(
        env, LAYOUTS[layout], num_initiators=1, seed=seed,
        steering=steering,
        # QFULL requeue/backoff turns target sheds into initiator-side
        # pacing; the unprotected run has no sheds to pace (and no
        # timeouts to mask the queueing it is meant to expose).
        hardening=_storm_hardening() if qos else None,
    )
    lanes = 1 + aggressor_lanes
    stack = ShardedStack(cluster, system, num_streams=lanes)
    if qos:
        tenant_qos = TenantQos(
            (
                QosClass("gold", weight=8.0),
                # burst=1: a big-write token banked per lane is ~60 us of
                # media occupancy, so idle credit must stay shallow.
                QosClass("bronze", weight=1.0,
                         rate_iops=pace_kiops * 1e3, burst=1.0),
            ),
            classifier=_storm_class,
            quantum=quantum,
        )
        for target in cluster.targets:
            target.install_admission(AdmissionController(
                AdmissionConfig(max_inflight_ordered=128,
                                max_inflight_unordered=128),
                qos=tenant_qos,
            ))
            target.install_tenant_steering(
                _storm_class, {"gold": (0.0, 0.2), "bronze": (0.2, 1.0)})
    plane = _StormPlane()
    run = run_open_loop(
        cluster, stack,
        OpenLoopConfig(
            offered_iops=(gold_kiops + aggressor_kiops) * 1e3,
            tenants=lanes, duration=duration, warmup=warmup,
            seed=seed,
            weights=(gold_kiops,) + (
                aggressor_kiops / aggressor_lanes,) * aggressor_lanes,
            blocks=(1,) + (aggressor_blocks,) * aggressor_lanes,
        ),
        plane=plane,
    )
    summary = plane.class_summary()
    gold = summary.get("gold", {})
    bronze = summary.get("bronze", {})
    row: Dict[str, float] = {
        "offered_kiops": gold_kiops + aggressor_kiops,
        "achieved_kiops": run.achieved_iops / 1e3,
        "gold_kiops": gold_kiops,
        "aggressor_kiops": aggressor_kiops,
        "gold_count": gold.get("count", 0.0),
        "gold_p50_us": gold.get("p50_us", 0.0),
        "gold_p99_us": gold.get("p99_us", 0.0),
        "gold_p999_us": gold.get("p999_us", 0.0),
        "bronze_count": bronze.get("count", 0.0),
        "bronze_p999_us": bronze.get("p999_us", 0.0),
        "gold_slo_p999_us": gold_slo_p999_us,
        "qos": 1.0 if qos else 0.0,
    }
    # The SLO covers availability too: a gold op that never completes
    # inside the window (starved behind the aggressor's backlog) is the
    # extreme tail, so "within SLO" requires both the p999 bound and
    # that at least half the expected gold ops actually completed.
    expected = gold_kiops * 1e3 * duration
    row["gold_expected"] = expected
    row["gold_complete_ratio"] = (
        gold.get("count", 0.0) / expected if expected else 0.0)
    row["gold_within_slo"] = (
        1.0
        if (0.0 < row["gold_p999_us"] <= gold_slo_p999_us
            and row["gold_complete_ratio"] >= 0.5)
        else 0.0
    )
    row.update(_shed_counts(cluster))
    return row


def noisy_neighbor_result(
    systems: Sequence[str] = TENANT_SYSTEMS,
    qos_modes: Sequence[bool] = (True, False),
    **kwargs,
) -> FigureResult:
    """The storm matrix (system x QoS on/off) as one cached sweep."""
    cells = [(system, qos) for system in systems for qos in qos_modes]
    specs = [
        RunSpec.make(
            probe_noisy_neighbor,
            label=f"storm/{system}/qos-{'on' if qos else 'off'}",
            system=system, qos=qos, **kwargs,
        )
        for system, qos in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name="Noisy neighbor",
            description=(
                "seeded noisy-neighbor storm: bronze aggressor at a "
                "multiple of capacity vs. one quiet gold tenant; QoS "
                "admission paces the aggressor so the gold p999 holds "
                "its SLO"
            ),
            headers=[
                "system", "qos", "gold_p999_us", "gold_slo_p999_us",
                "gold_done", "within_slo", "bronze_p999_us", "sheds",
                "shed_pace", "shed_wfq",
            ],
        )
        for (system, qos), run in zip(cells, results):
            result.add(
                system=system,
                qos="on" if qos else "off",
                gold_p999_us=round(run["gold_p999_us"], 2),
                gold_slo_p999_us=run["gold_slo_p999_us"],
                gold_done=round(run["gold_complete_ratio"], 2),
                within_slo="yes" if run["gold_within_slo"] else "NO",
                bronze_p999_us=round(run["bronze_p999_us"], 2),
                sheds=run["sheds"],
                shed_pace=run["shed_pace"],
                shed_wfq=run["shed_wfq"],
            )
        for (system, qos), run in zip(cells, results):
            if qos and not run["gold_within_slo"]:
                result.notes.append(
                    f"{system}: gold p999 {run['gold_p999_us']:g} us "
                    f"EXCEEDS SLO {run['gold_slo_p999_us']:g} us with QoS on"
                )
            if not qos and run["gold_within_slo"]:
                result.notes.append(
                    f"{system}: storm did not violate the gold SLO with "
                    "QoS off (aggressor too weak to demonstrate pacing)"
                )
        if not result.notes:
            result.notes.append(
                "all systems: QoS on holds the gold SLO under the storm; "
                "QoS off violates it (both directions demonstrated)"
            )
        return result

    return run_sweep(Sweep(name="tenants-storm", specs=specs, reduce=reduce))


def tenants_report(result: FigureResult) -> Dict:
    """A JSON-stable report of a tenant figure (golden-file friendly)."""
    return {
        "name": result.name,
        "headers": list(result.headers),
        "rows": [dict(row) for row in result.rows],
        "notes": list(result.notes),
    }
