"""Experiment harness: one entry point per paper table/figure.

Each ``figXX`` function in :mod:`repro.harness.figures` builds a fresh
simulated testbed, runs the paper's workload for that figure, and returns a
:class:`~repro.harness.experiment.FigureResult` whose rows mirror the
figure's series.  The ``benchmarks/`` directory calls these with reduced
windows; pass larger ``duration``/thread lists for higher-fidelity runs.
"""

from repro.harness.experiment import (
    FigureResult,
    build_cluster,
    build_stack,
    fio_run,
    LAYOUTS,
)
from repro.harness import figures

__all__ = [
    "FigureResult",
    "build_cluster",
    "build_stack",
    "fio_run",
    "LAYOUTS",
    "figures",
]
