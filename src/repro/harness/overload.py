"""Overload and gray-failure experiment: the robustness plane under fire.

Two seeded scenarios exercise :mod:`repro.robust` end to end:

* **Metastable overload** (:func:`overload_curves`) — drive the scale-out
  cluster 2-4x past the device's service capacity with the protection
  plane off and on, and record completed *and persisted* goodput,
  shed-rate and timeout-rate per load point.  Unprotected, in-device
  queueing exceeds the command timeout and the timeout retransmissions
  are acknowledged by the target's duplicate suppression while the
  original still queues — completions decouple from persistence and
  *outrun the device* (the completion mirage: completed goodput ~2x what
  the media can persist, with the persistence backlog growing without
  bound), until the retransmission load saturates the receive cores and
  goodput collapses in a storm of timeout aborts — the classic metastable
  failure.  Protected, the target sheds excess load *before* paying for
  it (admission control), the drivers pace shed commands in
  position-ordered AIMD waves under a retry budget, and completed
  goodput stays pinned to the persist rate at the device knee with zero
  failed operations.

* **Gray target** (:func:`gray_result`) — degrade one target's service
  times mid-run (``FaultPlan.degrade``: a fail-slow device, nothing
  errors).  Per-target health breakers trip on the fast/slow-EWMA latency
  ratio; ordered streams pinned to the sick shard brown out explicitly
  while *unordered* flows fail over to the healthy shard, and bystander
  tenants keep their tail latency.

Both scenarios run as independent, seeded cells on the sweep runner
(:mod:`repro.harness.sweep`), so ``--jobs N`` fans them out and a warm
cache replays them bit-identically (spec-order reduce, as with
``repro saturate``).  Entry point: ``repro overload`` (CLI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.harness.experiment import LAYOUTS, FigureResult
from repro.harness.sweep import RunSpec, Sweep, run_sweep

__all__ = [
    "DEFAULT_OVERLOAD_KIOPS",
    "PROTECTIONS",
    "OverloadRun",
    "probe_overload",
    "overload_sweep",
    "overload_curves",
    "probe_gray",
    "gray_result",
]

#: Offered-load grid (kIOPS) for the metastable scenario: ~0.8x, ~2x and
#: ~4x the device-limited knee of the default single-Optane layout
#: (~515k 4KiB ordered writes/s: the 905P's 2.2 GB/s media pipe and
#: 7-deep chip parallelism both land there).
DEFAULT_OVERLOAD_KIOPS = (400, 1100, 2200)

#: Protection profiles compared by ``repro overload``.
PROTECTIONS = ("off", "full")

#: Virtual-seconds knobs shared by both protection profiles.
_COMMAND_TIMEOUT_OFF = 100e-6
_COMMAND_TIMEOUT_FULL = 1.5e-3
_QFULL_BACKOFF = 20e-6


def _hardening(protection: str):
    """The driver hardening of one protection profile.

    ``off`` is a conventional timeout-and-retransmit driver: a per-attempt
    expiry tuned to healthy-path latency (~100 us, well under the
    in-device queueing that builds past the knee), no jitter, no budget,
    no QFULL handling — the configuration that turns overload metastable.
    Past the knee its retransmissions are duplicate-acked by the target
    while the original command still queues in the device (completions
    decouple from persistence); when the retransmission load saturates
    the receive cores, the ~475 us retry ladder expires before the gate
    is even reached and goodput collapses in timeout aborts.
    ``full`` is the robustness plane: a timeout with headroom, jittered
    backoff, a token-bucket retry budget, QFULL requeues and sticky
    fail-fast dead streams, paired with target-side admission control
    that bounds in-target queueing well below the timeout.
    """
    from repro.nvmeof.initiator import DriverHardening

    if protection == "off":
        return DriverHardening(
            command_timeout=_COMMAND_TIMEOUT_OFF,
            max_retries=3,
            backoff=1.5,
        )
    if protection == "full":
        return DriverHardening(
            command_timeout=_COMMAND_TIMEOUT_FULL,
            max_retries=5,
            backoff=2.0,
            jitter=0.25,
            retry_budget_ratio=0.1,
            retry_budget_cap=8.0,
            qfull_backoff=_QFULL_BACKOFF,
            qfull_max_requeues=256,
            fail_fast=True,
        )
    raise ValueError(f"unknown protection {protection!r} (have {PROTECTIONS})")


def _admission_config():
    from repro.robust.admission import AdmissionConfig

    return AdmissionConfig(
        max_inflight_ordered=128,
        max_inflight_unordered=128,
    )


@dataclass
class OverloadRun:
    """Measured outcome of one status-aware open-loop run."""

    offered_iops: float
    elapsed: float
    good_ops: int = 0
    failed_ops: int = 0
    failures_by_cause: Dict[str, int] = None
    p50_us: float = 0.0
    p99_us: float = 0.0
    p999_us: float = 0.0

    @property
    def goodput_iops(self) -> float:
        return self.good_ops / self.elapsed if self.elapsed else 0.0


def _cause_of(status: int) -> str:
    from repro.nvmeof.command import (
        STATUS_BROWNOUT,
        STATUS_DEADLINE,
        STATUS_QFULL,
        STATUS_TIMEOUT,
    )

    return {
        STATUS_QFULL: "shed",
        STATUS_TIMEOUT: "timeout",
        STATUS_DEADLINE: "deadline",
        STATUS_BROWNOUT: "brownout",
    }.get(status, "error")


def _run_status_loop(
    cluster,
    stack,
    offered_iops: float,
    tenants: int,
    duration: float,
    warmup: float,
    seed: int,
    next_lba_for=None,
    deadline_budget: Optional[float] = None,
    per_tenant: Optional[List] = None,
) -> OverloadRun:
    """Status-aware open loop: like
    :func:`repro.scale.loadgen.run_open_loop` but completions are split
    into goodput (every bio status 0) and failures by cause, so shedding
    and fast-fails are visible instead of counted as throughput.

    ``next_lba_for(tenant)`` optionally overrides the address generator
    (the gray scenario pins tenants to shards by LBA congruence);
    ``per_tenant`` optionally receives one LatencyRecorder per tenant.
    """
    from repro.scale.loadgen import (
        OPEN_LOOP_INFLIGHT_CAP,
        TENANT_AREA_BLOCKS,
    )
    from repro.sim.engine import Environment
    from repro.sim.rng import DeterministicRNG
    from repro.sim.stats import LatencyRecorder

    env: Environment = cluster.env
    end_time = warmup + duration
    per_tenant_rate = offered_iops / tenants
    run = OverloadRun(offered_iops=offered_iops, elapsed=duration,
                      failures_by_cause={})
    latency = LatencyRecorder()
    recorders = per_tenant if per_tenant is not None else []
    while len(recorders) < tenants:
        recorders.append(LatencyRecorder())

    def watch(tenant, arrival, events, tracker):
        yield tracker
        if not (warmup <= env.now <= end_time):
            return
        statuses = [
            e.bio.status for e in events if getattr(e, "bio", None) is not None
        ]
        bad = next((s for s in statuses if s), 0)
        if bad:
            run.failed_ops += 1
            cause = _cause_of(bad)
            run.failures_by_cause[cause] = (
                run.failures_by_cause.get(cause, 0) + 1
            )
            return
        run.good_ops += 1
        if arrival >= warmup:
            latency.record(env.now - arrival)
            recorders[tenant].record(env.now - arrival)

    def tenant_body(tenant: int):
        rng = DeterministicRNG(seed).fork(f"overload{tenant}")
        core = cluster.initiator.cpus.pick(tenant)
        if next_lba_for is not None:
            next_lba = next_lba_for(tenant)
        else:
            lba_rng = rng.fork("lba")
            base = tenant * TENANT_AREA_BLOCKS

            def next_lba() -> int:
                slot = lba_rng.randint(0, TENANT_AREA_BLOCKS // 4 - 1)
                return base + slot * 4

        arrival = 0.0
        inflight: List = []
        while True:
            arrival += rng.expovariate(per_tenant_rate)
            if arrival >= end_time:
                return
            if arrival > env.now:
                yield env.timeout(arrival - env.now)
            deadline = (
                env.now + deadline_budget
                if deadline_budget is not None else None
            )
            done = yield from stack.write_ordered(
                core, tenant, lba=next_lba(), nblocks=1,
                end_of_group=True, deadline=deadline,
            )
            events = [done]
            tracker = env.all_of(events)
            env.process(watch(tenant, arrival, events, tracker))
            inflight.append(tracker)
            while len(inflight) >= OPEN_LOOP_INFLIGHT_CAP:
                yield env.any_of(inflight)
                inflight = [t for t in inflight if not t.triggered]

    def measurement():
        yield env.timeout(warmup)
        cluster.start_cpu_window()
        yield env.timeout(duration)
        cluster.stop_cpu_window()

    env.process(measurement())
    for tenant in range(tenants):
        env.process(tenant_body(tenant))
    env.run(until=end_time)
    run.p50_us = latency.p50 * 1e6
    run.p99_us = latency.p99 * 1e6
    run.p999_us = latency.p999 * 1e6
    return run


def _plane_counters(cluster) -> Dict[str, float]:
    """Aggregate robustness-plane counters over targets and drivers."""
    received = sum(t.commands_received for t in cluster.targets)
    shed = sum(t.commands_shed for t in cluster.targets)
    drivers = [node.driver for node in cluster.nodes]
    suppressed = sum(
        d.retry_budget.suppressed for d in drivers
        if d.retry_budget is not None
    )
    return {
        "commands_received": float(received),
        "commands_shed": float(shed),
        "shed_rate": shed / received if received else 0.0,
        "timeouts": float(sum(d.commands_timed_out for d in drivers)),
        "retries": float(sum(d.retries for d in drivers)),
        "retries_suppressed": float(suppressed),
        "requeues": float(sum(d.commands_requeued for d in drivers)),
        "fast_fails": float(sum(d.commands_fast_failed for d in drivers)),
        "dead_streams": float(sum(d.streams_killed for d in drivers)),
    }


def probe_overload(
    system: str,
    layout: str,
    offered_kiops: float,
    protection: str,
    initiators: int = 2,
    tenants: int = 4,
    duration: float = 2e-3,
    warmup: float = 0.5e-3,
    seed: int = 42,
) -> Dict[str, float]:
    """One metastable-overload cell: fresh testbed, one status-aware run.

    Top-level and scalar-valued so the sweep runner can execute it in a
    worker process and key it in the content-addressed result cache.
    """
    from repro.scale import ScaleOutCluster, ShardedStack
    from repro.sim.engine import Environment

    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r} (have {sorted(LAYOUTS)})")
    env = Environment()
    cluster = ScaleOutCluster(
        env, LAYOUTS[layout], num_initiators=initiators, seed=seed,
        hardening=_hardening(protection),
    )
    if protection == "full":
        cluster.install_admission(_admission_config())
    stack = ShardedStack(cluster, system, num_streams=max(tenants, 1))

    def _persisted() -> float:
        return float(sum(
            ssd.commands_served
            for target in cluster.targets for ssd in target.ssds
        ))

    marks: Dict[str, float] = {}

    def persist_window():
        yield env.timeout(warmup)
        marks["start"] = _persisted()

    env.process(persist_window())
    run = _run_status_loop(
        cluster, stack, offered_kiops * 1e3, tenants, duration, warmup, seed,
    )
    # Completed vs persisted separates real goodput from the completion
    # mirage: an unprotected driver's timeout retransmissions get
    # duplicate-acked while the original still queues in the device, so
    # completions can exceed what the media actually persists.
    persisted_kiops = (_persisted() - marks.get("start", 0.0)) / duration / 1e3
    counters = _plane_counters(cluster)
    timeout_fails = run.failures_by_cause.get("timeout", 0)
    total_ops = run.good_ops + run.failed_ops
    goodput_kiops = run.goodput_iops / 1e3
    result = {
        "offered_kiops": offered_kiops,
        "goodput_kiops": goodput_kiops,
        "persisted_kiops": persisted_kiops,
        "completion_debt_kiops": goodput_kiops - persisted_kiops,
        "good_ops": float(run.good_ops),
        "failed_ops": float(run.failed_ops),
        "timeout_rate": timeout_fails / total_ops if total_ops else 0.0,
        "p50_us": run.p50_us,
        "p99_us": run.p99_us,
        "p999_us": run.p999_us,
    }
    result.update(counters)
    return result


def overload_sweep(
    systems: Sequence[str] = ("rio",),
    protections: Sequence[str] = PROTECTIONS,
    loads_kiops: Sequence[float] = DEFAULT_OVERLOAD_KIOPS,
    layout: str = "optane",
    initiators: int = 2,
    tenants: int = 4,
    duration: float = 2e-3,
    seed: int = 42,
) -> Sweep:
    """The metastable-overload experiment as independent cells + reduce."""
    loads = sorted(loads_kiops)
    cells = [
        (system, protection, load)
        for system in systems
        for protection in protections
        for load in loads
    ]
    specs = [
        RunSpec.make(
            probe_overload,
            label=f"overload/{system}/{protection}/{load:g}k",
            system=system, layout=layout, offered_kiops=load,
            protection=protection, initiators=initiators, tenants=tenants,
            duration=duration, seed=seed,
        )
        for system, protection, load in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name="Overload",
            description=(
                f"metastable-overload sweep, {layout}, {initiators} "
                f"initiator(s) x {tenants} tenant(s): goodput, shed-rate "
                "and timeout-rate vs offered load, protection off vs full"
            ),
            headers=[
                "system", "protection", "offered_kiops", "goodput_kiops",
                "persisted_kiops", "shed_rate", "timeout_rate",
                "dead_streams", "p999_us",
            ],
        )
        for (system, protection, _load), run in zip(cells, results):
            result.add(
                system=system,
                protection=protection,
                offered_kiops=run["offered_kiops"],
                goodput_kiops=round(run["goodput_kiops"], 1),
                persisted_kiops=round(run["persisted_kiops"], 1),
                shed_rate=round(run["shed_rate"], 3),
                timeout_rate=round(run["timeout_rate"], 3),
                dead_streams=int(run["dead_streams"]),
                p999_us=round(run["p999_us"], 2),
            )
        for system in systems:
            knee = _knee_goodput(result, system)
            if knee <= 0:
                continue
            top = max(loads)
            protected = _goodput_at(result, system, "full", top)
            naked = _goodput_at(result, system, "off", top)
            result.notes.append(
                f"{system} @ {top:g}k offered: protected goodput "
                f"{protected:g}k ({protected / knee:.0%} of the "
                f"{knee:g}k knee), unprotected {naked:g}k "
                f"({naked / knee:.0%})"
            )
            mirage = [
                row for row in result.series(system=system, protection="off")
                if row["goodput_kiops"]
                > 1.2 * max(row["persisted_kiops"], 1e-9)
            ]
            for row in mirage:
                result.notes.append(
                    f"{system} unprotected @ {row['offered_kiops']:g}k: "
                    f"completion mirage — {row['goodput_kiops']:g}k "
                    f"completed vs {row['persisted_kiops']:g}k persisted "
                    "(timeout retransmissions duplicate-acked while the "
                    "original still queues in the device)"
                )
        return result

    return Sweep(name="overload", specs=specs, reduce=reduce)


def _knee_goodput(result: FigureResult, system: str) -> float:
    """Best protected goodput over the grid — the knee reference the
    2x-overload acceptance compares against."""
    rows = result.series(system=system, protection="full")
    return max((row["goodput_kiops"] for row in rows), default=0.0)


def _goodput_at(result: FigureResult, system: str, protection: str,
                offered: float) -> float:
    rows = [
        row for row in result.series(system=system, protection=protection)
        if row["offered_kiops"] == offered
    ]
    return rows[0]["goodput_kiops"] if rows else 0.0


def overload_curves(
    systems: Sequence[str] = ("rio",),
    protections: Sequence[str] = PROTECTIONS,
    loads_kiops: Sequence[float] = DEFAULT_OVERLOAD_KIOPS,
    layout: str = "optane",
    initiators: int = 2,
    tenants: int = 4,
    duration: float = 2e-3,
    seed: int = 42,
) -> FigureResult:
    """Run the metastable-overload sweep on the process-wide runner."""
    return run_sweep(overload_sweep(
        systems=systems, protections=protections, loads_kiops=loads_kiops,
        layout=layout, initiators=initiators, tenants=tenants,
        duration=duration, seed=seed,
    ))


# ----------------------------------------------------------------------
# Gray-target (fail-slow) scenario
# ----------------------------------------------------------------------

def probe_gray(
    system: str = "rio",
    layout: str = "2optane-2targets",
    offered_kiops: float = 120,
    tenants: int = 4,
    unordered_tenants: int = 2,
    duration: float = 4e-3,
    warmup: float = 1e-3,
    degrade_at: float = 2e-3,
    degrade_factor: float = 8.0,
    seed: int = 42,
) -> Dict[str, float]:
    """One gray-target cell: degrade target 0 mid-run, measure isolation.

    Ordered tenants are pinned to shards by LBA congruence (tenant ``t``
    writes LBAs ``≡ t mod width`` on the striped volume, so its 1-block
    writes land on target ``t mod width`` only).  Unordered tenants pick
    their target per-op through the health monitor and fail over when the
    breaker on the sick target opens.
    """
    from repro.block.request import BlockRequest
    from repro.scale import ScaleOutCluster, ShardedStack
    from repro.scale.loadgen import TENANT_AREA_BLOCKS
    from repro.sim.engine import Environment
    from repro.sim.faults import FaultPlan
    from repro.sim.rng import DeterministicRNG
    from repro.sim.stats import LatencyRecorder

    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r} (have {sorted(LAYOUTS)})")
    profiles = LAYOUTS[layout]
    width = sum(len(t) for t in profiles)
    if len(profiles) < 2:
        raise ValueError("the gray scenario needs at least two targets")
    env = Environment()
    cluster = ScaleOutCluster(
        env, profiles, num_initiators=1, seed=seed,
        hardening=_hardening("full"),
    )
    cluster.install_admission(_admission_config())
    monitors = cluster.attach_health()
    stack = ShardedStack(cluster, system, num_streams=max(tenants, 1))
    plan = FaultPlan(seed=seed).degrade(
        at=warmup + degrade_at, target_index=0, factor=degrade_factor,
    )
    plan.install(cluster)

    sick_member = 0  # target 0 == volume member 0 (one SSD per target)

    def next_lba_for(tenant: int):
        rng = DeterministicRNG(seed).fork(f"gray-lba{tenant}")
        base = tenant * TENANT_AREA_BLOCKS
        member = tenant % width

        def next_lba() -> int:
            slot = rng.randint(0, TENANT_AREA_BLOCKS // (2 * width) - 1)
            # Stride 2*width keeps writes non-consecutive; the congruence
            # class pins every 1-block write to one stripe member.
            return base + slot * 2 * width + member

        return next_lba

    per_tenant: List[LatencyRecorder] = []

    # ---- unordered flows: health-steered driver-level writes ----
    node = cluster.nodes[0]
    unordered_ops = {"good": 0, "failed": 0, "by_target": {}}
    end_time = warmup + duration

    def unordered_body(flow: int):
        rng = DeterministicRNG(seed).fork(f"gray-unordered{flow}")
        core = node.cpus.pick(tenants + flow)
        rate = (offered_kiops * 1e3) / max(unordered_tenants, 1) / 4
        arrival = 0.0
        while True:
            arrival += rng.expovariate(rate)
            if arrival >= end_time:
                return
            if arrival > env.now:
                yield env.timeout(arrival - env.now)
            index = cluster.healthy_target_for(0, env.now)
            ns = node.namespaces[index]
            request = BlockRequest(
                op="write", lba=rng.randint(0, 1 << 20) * 2, nblocks=1,
                qp_index=core.index,
            )
            done = yield from node.driver.submit(core, ns, request)
            yield done
            if warmup <= env.now <= end_time:
                name = ns.target.name
                unordered_ops["by_target"][name] = (
                    unordered_ops["by_target"].get(name, 0) + 1
                )
                if request.status == 0:
                    unordered_ops["good"] += 1
                else:
                    unordered_ops["failed"] += 1

    for flow in range(unordered_tenants):
        env.process(unordered_body(flow))

    run = _run_status_loop(
        cluster, stack, offered_kiops * 1e3, tenants, duration, warmup, seed,
        next_lba_for=next_lba_for, per_tenant=per_tenant,
    )

    sick = [t for t in range(tenants) if t % width == sick_member]
    bystanders = [t for t in range(tenants) if t % width != sick_member]
    bystander_p999 = max(
        (per_tenant[t].p999 for t in bystanders if per_tenant[t].count),
        default=0.0,
    )
    sick_good = sum(
        1 for t in sick if per_tenant[t].count
    )
    monitor = monitors[0]
    sick_name = cluster.targets[0].name
    healthy = [t.name for t in cluster.targets[1:]]
    counters = _plane_counters(cluster)
    result = {
        "offered_kiops": offered_kiops,
        "goodput_kiops": run.goodput_iops / 1e3,
        "failed_ops": float(run.failed_ops),
        "brownouts": float(run.failures_by_cause.get("brownout", 0)),
        "bystander_p999_us": bystander_p999 * 1e6,
        "sick_tenants_active": float(sick_good),
        "breaker_trips": float(monitor.target(sick_name).trips),
        "sick_breaker_open": float(
            monitor.states().get(sick_name) != "closed"
        ),
        "healthy_breakers_closed": float(all(
            monitor.states().get(name, "closed") == "closed"
            for name in healthy
        )),
        "failovers": float(monitor.failovers),
        "unordered_good": float(unordered_ops["good"]),
        "unordered_failed": float(unordered_ops["failed"]),
        "unordered_on_sick": float(
            unordered_ops["by_target"].get(sick_name, 0)
        ),
        "unordered_on_healthy": float(sum(
            n for name, n in unordered_ops["by_target"].items()
            if name != sick_name
        )),
    }
    result.update(counters)
    return result


def gray_result(
    duration: float = 4e-3,
    seed: int = 42,
    offered_kiops: float = 120,
    degrade_factor: float = 8.0,
) -> FigureResult:
    """Run the gray-target scenario as a one-cell sweep (cached, seeded)."""
    spec = RunSpec.make(
        probe_gray,
        label=f"overload/gray/{seed}",
        duration=duration, seed=seed, offered_kiops=offered_kiops,
        degrade_factor=degrade_factor,
    )

    def reduce(results: List[Dict]) -> FigureResult:
        run = results[0]
        result = FigureResult(
            name="Gray target",
            description=(
                "fail-slow target 0 (service x"
                f"{degrade_factor:g} mid-run): breaker trips, ordered "
                "brownouts, unordered failover, bystander isolation"
            ),
            headers=["metric", "value"],
        )
        for key in (
            "offered_kiops", "goodput_kiops", "brownouts",
            "bystander_p999_us", "breaker_trips", "sick_breaker_open",
            "healthy_breakers_closed", "failovers", "unordered_on_sick",
            "unordered_on_healthy", "shed_rate", "dead_streams",
        ):
            value = run[key]
            result.add(metric=key, value=round(value, 3))
        return result

    return run_sweep(Sweep(name="overload-gray", specs=[spec], reduce=reduce))
