"""Per-figure reproduction entry points (paper §3 and §6).

Every function returns a :class:`~repro.harness.experiment.FigureResult`
whose rows are the same series the paper plots.  Default windows are sized
for the benchmark suite; raise ``duration`` (and thread lists) for
higher-fidelity runs — the shapes are stable well below one simulated
second because the simulation is deterministic.

Structure: each figure is a *sweep* — independent simulation cells plus a
reduce step — expressed with :mod:`repro.harness.sweep`:

* ``probe_*`` functions are the cells: top-level, picklable-kwarg,
  dict-returning, so they can run in worker processes and be memoized by
  the on-disk result cache;
* ``figXX_*_sweep`` builders turn figure parameters into a
  :class:`~repro.harness.sweep.Sweep` (specs + reduce);
* the public ``figXX_*`` entry points keep their original signatures and
  run the sweep on the process-wide runner — serial by default,
  parallel/cached under ``repro sweep --jobs N --cache`` or
  :func:`repro.harness.sweep.configured`.

Because cells are independent and the reduce consumes results in spec
order, a parallel run is bit-identical to a serial one
(``tests/harness/test_sweep.py`` asserts this).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.apps.fio import run_block_workload
from repro.apps.kvstore import run_fillsync
from repro.apps.varmail import run_varmail
from repro.fs.filesystem import make_filesystem
from repro.harness.experiment import (
    FigureResult,
    build_cluster,
    build_stack,
    fio_run,
)
from repro.harness.sweep import RunSpec, Sweep, run_sweep

__all__ = [
    "fig02_motivation",
    "fig03_merging_cpu",
    "fig10_block_device",
    "fig11_write_sizes",
    "fig12_batch_sizes",
    "fig13_filesystem",
    "fig14_latency_breakdown",
    "fig15a_varmail",
    "fig15b_rocksdb",
    "recovery_table",
    "probe_fio",
    "probe_fs_fsync",
    "probe_fsync_breakdown",
    "probe_varmail",
    "probe_fillsync",
    "probe_recovery_trial",
]

ORDERED_SYSTEMS = ("linux", "horae", "rio", "orderless")


# ======================================================================
# Sweep cells (top-level, picklable, cache-addressable)
# ======================================================================


def probe_fio(system: str, layout: str, threads: int, duration: float,
              seed: int = 42, **workload_kwargs) -> Dict[str, float]:
    """One block-workload cell: fresh testbed, one run, scalar outputs."""
    run = fio_run(system, layout, threads=threads, duration=duration,
                  seed=seed, **workload_kwargs)
    return {
        "ops": run.ops,
        "bytes_written": run.bytes_written,
        "elapsed": run.elapsed,
        "iops": run.iops,
        "kiops": run.iops / 1e3,
        "mb_per_sec": run.mb_per_sec,
        "initiator_busy_cores": run.initiator_busy_cores,
        "target_busy_cores": run.target_busy_cores,
        "initiator_efficiency": run.initiator_efficiency,
        "target_efficiency": run.target_efficiency,
        "commands_sent": run.commands_sent,
    }


def probe_fs_fsync(kind: str, threads: int, duration: float, warmup: float,
                   layout: str = "optane") -> Dict[str, float]:
    """One Figure 13 cell: per-thread 4 KB append+fsync to private files."""
    cluster = build_cluster(layout)
    fs = make_filesystem(kind, cluster,
                         num_journals=(1 if kind == "ext4" else 24))
    env = cluster.env
    end_time = warmup + duration
    completed = [0]

    def worker(thread_id):
        core = cluster.initiator.cpus.pick(thread_id)
        file = yield from fs.create(core, f"f{thread_id}")
        while env.now < end_time:
            yield from fs.append(core, file, nblocks=1)
            started = env.now
            yield from fs.fsync(core, file, thread_id=thread_id)
            if started >= warmup:
                completed[0] += 1

    for thread_id in range(threads):
        env.process(worker(thread_id))
    env.run(until=end_time)
    return {
        "kops": completed[0] / duration / 1e3,
        "avg_latency_us": fs.fsync_latency.mean * 1e6,
        "p99_latency_us": fs.fsync_latency.p99 * 1e6,
    }


def probe_fsync_breakdown(kind: str, layout: str = "optane",
                          iterations: int = 50) -> Dict[str, float]:
    """One Figure 14 cell: D/JM/JC dispatch timeline of append+fsync."""
    cluster = build_cluster(layout)
    fs = make_filesystem(kind, cluster,
                         num_journals=(1 if kind == "ext4" else 24))
    env = cluster.env

    def worker():
        core = cluster.initiator.cpus.pick(0)
        file = yield from fs.create(core, "probe")
        for _ in range(iterations):
            yield from fs.append(core, file, nblocks=1)
            yield from fs.fsync(core, file, thread_id=0)

    env.run_until_event(env.process(worker()))
    breakdowns = [b for j in fs.journals for b in j.breakdowns]
    count = max(1, len(breakdowns))
    return {
        "d_dispatch_us": sum(b.data_dispatched - b.started
                             for b in breakdowns) / count * 1e6,
        "jm_dispatch_us": sum(b.jm_dispatched - b.started
                              for b in breakdowns) / count * 1e6,
        "jc_dispatch_us": sum(b.jc_dispatched - b.started
                              for b in breakdowns) / count * 1e6,
        "total_us": sum(b.total for b in breakdowns) / count * 1e6,
    }


def probe_varmail(kind: str, threads: int, duration: float,
                  layout: str = "optane") -> Dict[str, float]:
    """One Figure 15(a) cell: the Varmail personality on one file system."""
    cluster = build_cluster(layout)
    fs = make_filesystem(kind, cluster,
                         num_journals=(1 if kind == "ext4" else 24))
    run = run_varmail(cluster, fs, threads=threads, duration=duration,
                      warmup=duration / 10)
    return {"kops": run.ops_per_sec / 1e3}


def probe_fillsync(kind: str, threads: int, duration: float,
                   layout: str = "optane") -> Dict[str, float]:
    """One Figure 15(b) cell: RocksDB-style fillsync on one file system."""
    cluster = build_cluster(layout)
    fs = make_filesystem(kind, cluster,
                         num_journals=(1 if kind == "ext4" else 24))
    run = run_fillsync(cluster, fs, threads=threads, duration=duration,
                       warmup=duration / 10)
    return {
        "kops": run.ops_per_sec / 1e3,
        "initiator_cpu": run.initiator_busy_cores,
    }


def probe_recovery_trial(system: str, seed: int, threads: int, layout: str,
                         run_before_crash: float) -> Dict[str, float]:
    """One §6.5 cell: ordered-write load, crash, restart, timed recovery."""
    cluster = build_cluster(layout, seed=seed)
    stack = build_stack(system, cluster, num_streams=threads)
    env = cluster.env

    def writer(thread_id):
        core = cluster.initiator.cpus.pick(thread_id)
        lba = thread_id * 16_000_000
        inflight = []
        while True:
            done = yield from stack.write_ordered(
                core, thread_id, lba=lba, nblocks=1,
            )
            lba += 2
            inflight.append(done)
            if len(inflight) >= 32:
                yield env.any_of(inflight)
                inflight = [e for e in inflight if not e.triggered]

    for thread_id in range(threads):
        env.process(writer(thread_id))
    env.run(until=run_before_crash)
    for target in cluster.targets:
        target.crash()
    env.run(until=env.now + 200e-6)
    for target in cluster.targets:
        target.restart()

    holder = {}

    def recover():
        core = cluster.initiator.cpus.pick(0)
        report = yield from stack.recovery().run_initiator_recovery(core)
        holder["report"] = report

    env.run_until_event(env.process(recover()))
    report = holder["report"]
    return {
        "rebuild_seconds": report.rebuild_seconds,
        "data_recovery_seconds": report.data_recovery_seconds,
        "records_scanned": report.records_scanned,
        "discarded_extents": report.discarded_extents,
    }


# ======================================================================
# Figure 2 — motivation: the cost of storage order (§3.1)
# ======================================================================


def fig02_motivation_sweep(
    ssd: str = "flash",
    threads: Sequence[int] = (1, 2, 4, 8, 12),
    duration: float = 4e-3,
) -> Sweep:
    systems = ("linux", "horae", "orderless")
    cells = [(system, count) for system in systems for count in threads]
    specs = [
        RunSpec.make(
            probe_fio, label=f"fig02/{system}/t{count}",
            system=system, layout=ssd, threads=count, duration=duration,
            journal_pattern=True, queue_depth=8,
        )
        for system, count in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name=f"Figure 2({'a' if ssd == 'flash' else 'b'})",
            description=f"motivation, {ssd} SSD: 2x4KB + 1x4KB ordered writes "
            "(metadata-journaling pattern), throughput in 4KB-block IOPS",
            headers=["system", "threads", "kiops", "mb_per_sec"],
        )
        for (system, count), run in zip(cells, results):
            blocks_per_sec = run["bytes_written"] / 4096 / run["elapsed"]
            result.add(
                system=system,
                threads=count,
                kiops=blocks_per_sec / 1e3,
                mb_per_sec=run["mb_per_sec"],
            )
        return result

    return Sweep(name=f"fig02-{ssd}", specs=specs, reduce=reduce)


def fig02_motivation(
    ssd: str = "flash",
    threads: Sequence[int] = (1, 2, 4, 8, 12),
    duration: float = 4e-3,
) -> FigureResult:
    """Ordered (Linux NVMe-oF, HORAE) vs orderless; journaling pattern."""
    return run_sweep(fig02_motivation_sweep(ssd, threads, duration))


# ======================================================================
# Figure 3 — merging reduces CPU overhead (§3.2, Lesson 3)
# ======================================================================


def fig03_merging_cpu_sweep(
    batches: Sequence[int] = (1, 2, 4, 8, 16),
    ssd: str = "optane",
    duration: float = 4e-3,
) -> Sweep:
    specs = [
        RunSpec.make(
            probe_fio, label=f"fig03/b{batch}",
            system="orderless", layout=ssd, threads=1, duration=duration,
            pattern="seq", batch=batch, queue_depth=64,
        )
        for batch in batches
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name="Figure 3",
            description=f"merging motivation on {ssd}: orderless sequential "
            "4KB, 1 thread; CPU cost per 100K IOPS vs mergeable batch size",
            headers=[
                "batch", "kiops", "initiator_cpu", "target_cpu",
                "init_cpu_per_100kiops", "tgt_cpu_per_100kiops", "commands",
            ],
        )
        for batch, run in zip(batches, results):
            result.add(
                batch=batch,
                kiops=run["iops"] / 1e3,
                initiator_cpu=run["initiator_busy_cores"],
                target_cpu=run["target_busy_cores"],
                init_cpu_per_100kiops=run["initiator_busy_cores"]
                / max(run["iops"] / 1e5, 1e-9),
                tgt_cpu_per_100kiops=run["target_busy_cores"]
                / max(run["iops"] / 1e5, 1e-9),
                commands=run["commands_sent"],
            )
        return result

    return Sweep(name="fig03", specs=specs, reduce=reduce)


def fig03_merging_cpu(
    batches: Sequence[int] = (1, 2, 4, 8, 16),
    ssd: str = "optane",
    duration: float = 4e-3,
) -> FigureResult:
    """Orderless, 1 thread, sequential 4 KB; CPU busy-cores vs plug depth."""
    return run_sweep(fig03_merging_cpu_sweep(batches, ssd, duration))


# ======================================================================
# Figure 10 — block device performance (§6.2)
# ======================================================================

_FIG10_LAYOUTS = {
    "a": ("flash", "flash SSD"),
    "b": ("optane", "Optane SSD"),
    "c": ("4ssd-1target", "4-SSD logical volume, one target"),
    "d": ("4ssd-2targets", "4 SSDs across two target servers"),
}


def fig10_block_device_sweep(
    panel: str = "b",
    threads: Sequence[int] = (1, 2, 4, 8, 12),
    duration: float = 4e-3,
    systems: Sequence[str] = ORDERED_SYSTEMS,
) -> Sweep:
    layout, label = _FIG10_LAYOUTS[panel]
    cells = [(system, count) for system in systems for count in threads]
    specs = [
        RunSpec.make(
            probe_fio, label=f"fig10{panel}/{system}/t{count}",
            system=system, layout=layout, threads=count, duration=duration,
            pattern="rand", write_blocks=1,
        )
        for system, count in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name=f"Figure 10({panel})",
            description=f"block device, {label}: 4KB random ordered writes; "
            "CPU efficiency normalized to orderless at the same thread count",
            headers=[
                "system", "threads", "kiops",
                "init_eff_norm", "tgt_eff_norm",
                "initiator_cpu", "target_cpu",
            ],
        )
        runs = dict(zip(cells, results))
        baseline: Dict[int, Tuple[float, float]] = {}
        for count in threads:
            run = runs.get(("orderless", count))
            if run is not None:
                baseline[count] = (run["initiator_efficiency"],
                                   run["target_efficiency"])
        for system in systems:
            for count in threads:
                run = runs[(system, count)]
                base = baseline.get(count, (0.0, 0.0))
                result.add(
                    system=system,
                    threads=count,
                    kiops=run["iops"] / 1e3,
                    init_eff_norm=(
                        run["initiator_efficiency"] / base[0]
                        if base[0] else None
                    ),
                    tgt_eff_norm=(
                        run["target_efficiency"] / base[1]
                        if base[1] else None
                    ),
                    initiator_cpu=run["initiator_busy_cores"],
                    target_cpu=run["target_busy_cores"],
                )
        return result

    return Sweep(name=f"fig10{panel}", specs=specs, reduce=reduce)


def fig10_block_device(
    panel: str = "b",
    threads: Sequence[int] = (1, 2, 4, 8, 12),
    duration: float = 4e-3,
    systems: Sequence[str] = ORDERED_SYSTEMS,
) -> FigureResult:
    """4 KB random ordered writes: throughput + normalized CPU efficiency."""
    return run_sweep(fig10_block_device_sweep(panel, threads, duration,
                                              systems))


# ======================================================================
# Figure 11 — varying write sizes (§6.2.2)
# ======================================================================


def fig11_write_sizes_sweep(
    sizes_blocks: Sequence[int] = (1, 2, 4, 8, 16),
    patterns: Sequence[str] = ("seq", "rand"),
    ssd: str = "optane",
    duration: float = 4e-3,
    systems: Sequence[str] = ORDERED_SYSTEMS,
) -> Sweep:
    cells = [
        (system, pattern, size)
        for system in systems
        for pattern in patterns
        for size in sizes_blocks
    ]
    specs = [
        RunSpec.make(
            probe_fio, label=f"fig11/{system}/{pattern}/{size * 4}kb",
            system=system, layout=ssd, threads=1, duration=duration,
            pattern=pattern, write_blocks=size,
        )
        for system, pattern, size in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name="Figure 11",
            description=f"write-size sweep on {ssd}, 1 thread: throughput "
            "and initiator CPU (busy cores)",
            headers=["system", "pattern", "kb", "mb_per_sec", "initiator_cpu"],
        )
        for (system, pattern, size), run in zip(cells, results):
            result.add(
                system=system,
                pattern=pattern,
                kb=size * 4,
                mb_per_sec=run["mb_per_sec"],
                initiator_cpu=run["initiator_busy_cores"],
            )
        return result

    return Sweep(name="fig11", specs=specs, reduce=reduce)


def fig11_write_sizes(
    sizes_blocks: Sequence[int] = (1, 2, 4, 8, 16),
    patterns: Sequence[str] = ("seq", "rand"),
    ssd: str = "optane",
    duration: float = 4e-3,
    systems: Sequence[str] = ORDERED_SYSTEMS,
) -> FigureResult:
    """One thread, ordered writes of 4–64 KB."""
    return run_sweep(fig11_write_sizes_sweep(sizes_blocks, patterns, ssd,
                                             duration, systems))


# ======================================================================
# Figure 12 — varying batch sizes / merging (§6.2.3)
# ======================================================================


def fig12_batch_sizes_sweep(
    panel: str = "a",
    batches: Sequence[int] = (1, 2, 4, 8, 16),
    ssd: str = "optane",
    duration: float = 4e-3,
    systems: Sequence[str] = ("rio", "rio-nomerge", "horae", "orderless"),
) -> Sweep:
    threads = 1 if panel == "a" else 12
    cells = [(system, batch) for system in systems for batch in batches]
    specs = [
        RunSpec.make(
            probe_fio, label=f"fig12{panel}/{system}/b{batch}",
            system=system, layout=ssd, threads=threads, duration=duration,
            pattern="seq", batch=batch, queue_depth=64,
        )
        for system, batch in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name=f"Figure 12({panel})",
            description=f"batch-size sweep on {ssd}, {threads} thread(s): "
            "throughput + CPU efficiency normalized to orderless",
            headers=[
                "system", "batch", "kiops", "init_eff_norm", "commands",
            ],
        )
        runs = dict(zip(cells, results))
        baseline: Dict[int, float] = {}
        for batch in batches:
            run = runs.get(("orderless", batch))
            if run is not None:
                baseline[batch] = run["initiator_efficiency"]
        for system in systems:
            for batch in batches:
                run = runs[(system, batch)]
                base = baseline.get(batch, 0.0)
                result.add(
                    system=system,
                    batch=batch,
                    kiops=run["iops"] / 1e3,
                    init_eff_norm=(run["initiator_efficiency"] / base)
                    if base else None,
                    commands=run["commands_sent"],
                )
        return result

    return Sweep(name=f"fig12{panel}", specs=specs, reduce=reduce)


def fig12_batch_sizes(
    panel: str = "a",
    batches: Sequence[int] = (1, 2, 4, 8, 16),
    ssd: str = "optane",
    duration: float = 4e-3,
    systems: Sequence[str] = ("rio", "rio-nomerge", "horae", "orderless"),
) -> FigureResult:
    """Mergeable sequential 4 KB batches; 1 thread (a) or 12 threads (b)."""
    return run_sweep(fig12_batch_sizes_sweep(panel, batches, ssd, duration,
                                             systems))


# ======================================================================
# Figure 13 — file system fsync performance (§6.3)
# ======================================================================


def fig13_filesystem_sweep(
    threads: Sequence[int] = (1, 4, 8, 16, 24),
    duration: float = 6e-3,
    warmup: float = 0.5e-3,
    layout: str = "optane",
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> Sweep:
    cells = [(kind, count) for kind in kinds for count in threads]
    specs = [
        RunSpec.make(
            probe_fs_fsync, label=f"fig13/{kind}/t{count}",
            kind=kind, threads=count, duration=duration, warmup=warmup,
            layout=layout,
        )
        for kind, count in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name="Figure 13",
            description="file systems on a remote Optane SSD: 4KB "
            "append+fsync; throughput, average and p99 fsync latency",
            headers=["fs", "threads", "kops", "avg_latency_us",
                     "p99_latency_us"],
        )
        for (kind, count), run in zip(cells, results):
            result.add(fs=kind, threads=count, **run)
        return result

    return Sweep(name="fig13", specs=specs, reduce=reduce)


def fig13_filesystem(
    threads: Sequence[int] = (1, 4, 8, 16, 24),
    duration: float = 6e-3,
    warmup: float = 0.5e-3,
    layout: str = "optane",
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> FigureResult:
    """Per-thread 4 KB append + fsync to private files on a remote 905P."""
    return run_sweep(fig13_filesystem_sweep(threads, duration, warmup,
                                            layout, kinds))


# ======================================================================
# Figure 14 — fsync latency breakdown (§6.3)
# ======================================================================


def fig14_latency_breakdown_sweep(
    layout: str = "optane",
    iterations: int = 50,
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> Sweep:
    specs = [
        RunSpec.make(
            probe_fsync_breakdown, label=f"fig14/{kind}",
            kind=kind, layout=layout, iterations=iterations,
        )
        for kind in kinds
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name="Figure 14",
            description="fsync internal latency breakdown (microseconds): "
            "time until D/JM/JC dispatched and total completion",
            headers=["fs", "d_dispatch_us", "jm_dispatch_us",
                     "jc_dispatch_us", "total_us"],
        )
        for kind, run in zip(kinds, results):
            result.add(fs=kind, **run)
        return result

    return Sweep(name="fig14", specs=specs, reduce=reduce)


def fig14_latency_breakdown(
    layout: str = "optane",
    iterations: int = 50,
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> FigureResult:
    """Dispatch timeline of one append+fsync: D, JM, JC phases."""
    return run_sweep(fig14_latency_breakdown_sweep(layout, iterations, kinds))


# ======================================================================
# Figure 15 — applications (§6.4)
# ======================================================================


def fig15a_varmail_sweep(
    threads: Sequence[int] = (1, 4, 8, 16, 24),
    duration: float = 6e-3,
    layout: str = "optane",
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> Sweep:
    cells = [(kind, count) for kind in kinds for count in threads]
    specs = [
        RunSpec.make(
            probe_varmail, label=f"fig15a/{kind}/t{count}",
            kind=kind, threads=count, duration=duration, layout=layout,
        )
        for kind, count in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name="Figure 15(a)",
            description="Varmail (Filebench personality) on a remote "
            "Optane SSD",
            headers=["fs", "threads", "kops"],
        )
        for (kind, count), run in zip(cells, results):
            result.add(fs=kind, threads=count, kops=run["kops"])
        return result

    return Sweep(name="fig15a", specs=specs, reduce=reduce)


def fig15a_varmail(
    threads: Sequence[int] = (1, 4, 8, 16, 24),
    duration: float = 6e-3,
    layout: str = "optane",
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> FigureResult:
    return run_sweep(fig15a_varmail_sweep(threads, duration, layout, kinds))


def fig15b_rocksdb_sweep(
    threads: Sequence[int] = (1, 6, 12, 24, 36),
    duration: float = 6e-3,
    layout: str = "optane",
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> Sweep:
    cells = [(kind, count) for kind in kinds for count in threads]
    specs = [
        RunSpec.make(
            probe_fillsync, label=f"fig15b/{kind}/t{count}",
            kind=kind, threads=count, duration=duration, layout=layout,
        )
        for kind, count in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name="Figure 15(b)",
            description="RocksDB-style fillsync (16B keys, 1KB values) on a "
            "remote Optane SSD",
            headers=["fs", "threads", "kops", "initiator_cpu"],
        )
        for (kind, count), run in zip(cells, results):
            result.add(fs=kind, threads=count, **run)
        return result

    return Sweep(name="fig15b", specs=specs, reduce=reduce)


def fig15b_rocksdb(
    threads: Sequence[int] = (1, 6, 12, 24, 36),
    duration: float = 6e-3,
    layout: str = "optane",
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> FigureResult:
    return run_sweep(fig15b_rocksdb_sweep(threads, duration, layout, kinds))


# ======================================================================
# §6.5 — recovery time
# ======================================================================


def recovery_table_sweep(
    trials: int = 5,
    threads: int = 36,
    layout: str = "2optane-2targets",
    run_before_crash: float = 2e-3,
    seed: int = 42,
) -> Sweep:
    systems = ("rio", "horae")
    cells = [(system, trial) for system in systems for trial in range(trials)]
    specs = [
        RunSpec.make(
            probe_recovery_trial, label=f"recovery/{system}/trial{trial}",
            system=system, seed=seed + trial, threads=threads, layout=layout,
            run_before_crash=run_before_crash,
        )
        for system, trial in cells
    ]

    def reduce(results: List[Dict]) -> FigureResult:
        result = FigureResult(
            name="Recovery (§6.5)",
            description="crash recovery time, averaged over trials",
            headers=["system", "rebuild_ms", "data_recovery_ms", "records",
                     "discarded"],
        )
        by_system = dict(zip(cells, results))

        def avg(xs):
            return sum(xs) / len(xs) if xs else 0.0

        for system in systems:
            reports = [by_system[(system, trial)] for trial in range(trials)]
            result.add(
                system=system,
                rebuild_ms=avg([r["rebuild_seconds"] for r in reports]) * 1e3,
                data_recovery_ms=avg(
                    [r["data_recovery_seconds"] for r in reports]
                ) * 1e3,
                records=avg([r["records_scanned"] for r in reports]),
                discarded=avg([r["discarded_extents"] for r in reports]),
            )
        result.notes.append(
            "HORAE's reload moves 16 B metadata records (vs Rio's 32 B "
            "attributes); both data-recovery phases run discards "
            "concurrently per SSD/server, and HORAE additionally pays "
            "validation reads."
        )
        return result

    return Sweep(name="recovery", specs=specs, reduce=reduce)


def recovery_table(
    trials: int = 5,
    threads: int = 36,
    layout: str = "2optane-2targets",
    run_before_crash: float = 2e-3,
    seed: int = 42,
) -> FigureResult:
    """Worst-case recovery: continuous ordered writes, then a crash.

    Reproduces §6.5: Rio reconstructs the global order from PMR ordering
    attributes and discards out-of-order data.  The HORAE row models its
    smaller ordering-metadata reload.
    """
    return run_sweep(recovery_table_sweep(trials, threads, layout,
                                          run_before_crash, seed))


from repro.harness.overload import overload_sweep  # noqa: E402
from repro.harness.saturate import saturation_sweep  # noqa: E402
from repro.harness.tenants import tenants_sweep  # noqa: E402

#: Every figure's sweep builder, for ``repro sweep`` and the tests.
SWEEP_BUILDERS = {
    "fig02": fig02_motivation_sweep,
    "fig03": fig03_merging_cpu_sweep,
    "fig10": fig10_block_device_sweep,
    "fig11": fig11_write_sizes_sweep,
    "fig12": fig12_batch_sizes_sweep,
    "fig13": fig13_filesystem_sweep,
    "fig14": fig14_latency_breakdown_sweep,
    "fig15a": fig15a_varmail_sweep,
    "fig15b": fig15b_rocksdb_sweep,
    "recovery": recovery_table_sweep,
    "saturate": saturation_sweep,
    "overload": overload_sweep,
    "tenants": tenants_sweep,
}
