"""Per-figure reproduction entry points (paper §3 and §6).

Every function returns a :class:`~repro.harness.experiment.FigureResult`
whose rows are the same series the paper plots.  Default windows are sized
for the benchmark suite; raise ``duration`` (and thread lists) for
higher-fidelity runs — the shapes are stable well below one simulated
second because the simulation is deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.apps.fio import run_block_workload
from repro.apps.kvstore import run_fillsync
from repro.apps.varmail import run_varmail
from repro.fs.filesystem import make_filesystem
from repro.harness.experiment import (
    FigureResult,
    build_cluster,
    build_stack,
    fio_run,
)
from repro.sim.engine import Environment

__all__ = [
    "fig02_motivation",
    "fig03_merging_cpu",
    "fig10_block_device",
    "fig11_write_sizes",
    "fig12_batch_sizes",
    "fig13_filesystem",
    "fig14_latency_breakdown",
    "fig15a_varmail",
    "fig15b_rocksdb",
    "recovery_table",
]

ORDERED_SYSTEMS = ("linux", "horae", "rio", "orderless")


# ======================================================================
# Figure 2 — motivation: the cost of storage order (§3.1)
# ======================================================================


def fig02_motivation(
    ssd: str = "flash",
    threads: Sequence[int] = (1, 2, 4, 8, 12),
    duration: float = 4e-3,
) -> FigureResult:
    """Ordered (Linux NVMe-oF, HORAE) vs orderless; journaling pattern."""
    result = FigureResult(
        name=f"Figure 2({'a' if ssd == 'flash' else 'b'})",
        description=f"motivation, {ssd} SSD: 2x4KB + 1x4KB ordered writes "
        "(metadata-journaling pattern), throughput in 4KB-block IOPS",
        headers=["system", "threads", "kiops", "mb_per_sec"],
    )
    for system in ("linux", "horae", "orderless"):
        for count in threads:
            run = fio_run(
                system,
                ssd,
                threads=count,
                duration=duration,
                journal_pattern=True,
                queue_depth=8,
            )
            blocks_per_sec = run.bytes_written / 4096 / run.elapsed
            result.add(
                system=system,
                threads=count,
                kiops=blocks_per_sec / 1e3,
                mb_per_sec=run.mb_per_sec,
            )
    return result


# ======================================================================
# Figure 3 — merging reduces CPU overhead (§3.2, Lesson 3)
# ======================================================================


def fig03_merging_cpu(
    batches: Sequence[int] = (1, 2, 4, 8, 16),
    ssd: str = "optane",
    duration: float = 4e-3,
) -> FigureResult:
    """Orderless, 1 thread, sequential 4 KB; CPU busy-cores vs plug depth."""
    result = FigureResult(
        name="Figure 3",
        description=f"merging motivation on {ssd}: orderless sequential 4KB, "
        "1 thread; CPU cost per 100K IOPS vs mergeable batch size",
        headers=[
            "batch", "kiops", "initiator_cpu", "target_cpu",
            "init_cpu_per_100kiops", "tgt_cpu_per_100kiops", "commands",
        ],
    )
    for batch in batches:
        run = fio_run(
            "orderless",
            ssd,
            threads=1,
            duration=duration,
            pattern="seq",
            batch=batch,
            queue_depth=64,
        )
        result.add(
            batch=batch,
            kiops=run.iops / 1e3,
            initiator_cpu=run.initiator_busy_cores,
            target_cpu=run.target_busy_cores,
            init_cpu_per_100kiops=run.initiator_busy_cores / max(run.iops / 1e5, 1e-9),
            tgt_cpu_per_100kiops=run.target_busy_cores / max(run.iops / 1e5, 1e-9),
            commands=run.commands_sent,
        )
    return result


# ======================================================================
# Figure 10 — block device performance (§6.2)
# ======================================================================

_FIG10_LAYOUTS = {
    "a": ("flash", "flash SSD"),
    "b": ("optane", "Optane SSD"),
    "c": ("4ssd-1target", "4-SSD logical volume, one target"),
    "d": ("4ssd-2targets", "4 SSDs across two target servers"),
}


def fig10_block_device(
    panel: str = "b",
    threads: Sequence[int] = (1, 2, 4, 8, 12),
    duration: float = 4e-3,
    systems: Sequence[str] = ORDERED_SYSTEMS,
) -> FigureResult:
    """4 KB random ordered writes: throughput + normalized CPU efficiency."""
    layout, label = _FIG10_LAYOUTS[panel]
    result = FigureResult(
        name=f"Figure 10({panel})",
        description=f"block device, {label}: 4KB random ordered writes; "
        "CPU efficiency normalized to orderless at the same thread count",
        headers=[
            "system", "threads", "kiops",
            "init_eff_norm", "tgt_eff_norm",
            "initiator_cpu", "target_cpu",
        ],
    )
    baseline: Dict[int, Tuple[float, float]] = {}
    ordered = [s for s in systems if s != "orderless"] + (
        ["orderless"] if "orderless" in systems else []
    )
    runs = {}
    for system in ordered:
        for count in threads:
            runs[(system, count)] = fio_run(
                system, layout, threads=count, duration=duration,
                pattern="rand", write_blocks=1,
            )
    for count in threads:
        run = runs.get(("orderless", count))
        if run is not None:
            baseline[count] = (run.initiator_efficiency, run.target_efficiency)
    for system in systems:
        for count in threads:
            run = runs[(system, count)]
            base = baseline.get(count, (0.0, 0.0))
            result.add(
                system=system,
                threads=count,
                kiops=run.iops / 1e3,
                init_eff_norm=(
                    run.initiator_efficiency / base[0] if base[0] else None
                ),
                tgt_eff_norm=(
                    run.target_efficiency / base[1] if base[1] else None
                ),
                initiator_cpu=run.initiator_busy_cores,
                target_cpu=run.target_busy_cores,
            )
    return result


# ======================================================================
# Figure 11 — varying write sizes (§6.2.2)
# ======================================================================


def fig11_write_sizes(
    sizes_blocks: Sequence[int] = (1, 2, 4, 8, 16),
    patterns: Sequence[str] = ("seq", "rand"),
    ssd: str = "optane",
    duration: float = 4e-3,
    systems: Sequence[str] = ORDERED_SYSTEMS,
) -> FigureResult:
    """One thread, ordered writes of 4–64 KB."""
    result = FigureResult(
        name="Figure 11",
        description=f"write-size sweep on {ssd}, 1 thread: throughput and "
        "initiator CPU (busy cores)",
        headers=["system", "pattern", "kb", "mb_per_sec", "initiator_cpu"],
    )
    for system in systems:
        for pattern in patterns:
            for size in sizes_blocks:
                run = fio_run(
                    system, ssd, threads=1, duration=duration,
                    pattern=pattern, write_blocks=size,
                )
                result.add(
                    system=system,
                    pattern=pattern,
                    kb=size * 4,
                    mb_per_sec=run.mb_per_sec,
                    initiator_cpu=run.initiator_busy_cores,
                )
    return result


# ======================================================================
# Figure 12 — varying batch sizes / merging (§6.2.3)
# ======================================================================


def fig12_batch_sizes(
    panel: str = "a",
    batches: Sequence[int] = (1, 2, 4, 8, 16),
    ssd: str = "optane",
    duration: float = 4e-3,
    systems: Sequence[str] = ("rio", "rio-nomerge", "horae", "orderless"),
) -> FigureResult:
    """Mergeable sequential 4 KB batches; 1 thread (a) or 12 threads (b)."""
    threads = 1 if panel == "a" else 12
    result = FigureResult(
        name=f"Figure 12({panel})",
        description=f"batch-size sweep on {ssd}, {threads} thread(s): "
        "throughput + CPU efficiency normalized to orderless",
        headers=[
            "system", "batch", "kiops", "init_eff_norm", "commands",
        ],
    )
    baseline: Dict[int, float] = {}
    runs = {}
    for system in systems:
        for batch in batches:
            runs[(system, batch)] = fio_run(
                system, ssd, threads=threads, duration=duration,
                pattern="seq", batch=batch, queue_depth=64,
            )
    for batch in batches:
        run = runs.get(("orderless", batch))
        if run is not None:
            baseline[batch] = run.initiator_efficiency
    for system in systems:
        for batch in batches:
            run = runs[(system, batch)]
            base = baseline.get(batch, 0.0)
            result.add(
                system=system,
                batch=batch,
                kiops=run.iops / 1e3,
                init_eff_norm=(run.initiator_efficiency / base) if base else None,
                commands=run.commands_sent,
            )
    return result


# ======================================================================
# Figure 13 — file system fsync performance (§6.3)
# ======================================================================


def fig13_filesystem(
    threads: Sequence[int] = (1, 4, 8, 16, 24),
    duration: float = 6e-3,
    warmup: float = 0.5e-3,
    layout: str = "optane",
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> FigureResult:
    """Per-thread 4 KB append + fsync to private files on a remote 905P."""
    result = FigureResult(
        name="Figure 13",
        description="file systems on a remote Optane SSD: 4KB append+fsync; "
        "throughput, average and p99 fsync latency",
        headers=["fs", "threads", "kops", "avg_latency_us", "p99_latency_us"],
    )
    for kind in kinds:
        for count in threads:
            cluster = build_cluster(layout)
            fs = make_filesystem(kind, cluster,
                                 num_journals=(1 if kind == "ext4" else 24))
            env = cluster.env
            end_time = warmup + duration
            completed = [0]

            def worker(thread_id, fs=fs, env=env, cluster=cluster,
                       end_time=end_time, completed=completed):
                core = cluster.initiator.cpus.pick(thread_id)
                file = yield from fs.create(core, f"f{thread_id}")
                while env.now < end_time:
                    yield from fs.append(core, file, nblocks=1)
                    started = env.now
                    yield from fs.fsync(core, file, thread_id=thread_id)
                    if started >= warmup:
                        completed[0] += 1

            for thread_id in range(count):
                env.process(worker(thread_id))
            env.run(until=end_time)
            result.add(
                fs=kind,
                threads=count,
                kops=completed[0] / duration / 1e3,
                avg_latency_us=fs.fsync_latency.mean * 1e6,
                p99_latency_us=fs.fsync_latency.p99 * 1e6,
            )
    return result


# ======================================================================
# Figure 14 — fsync latency breakdown (§6.3)
# ======================================================================


def fig14_latency_breakdown(
    layout: str = "optane",
    iterations: int = 50,
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> FigureResult:
    """Dispatch timeline of one append+fsync: D, JM, JC phases."""
    result = FigureResult(
        name="Figure 14",
        description="fsync internal latency breakdown (microseconds): "
        "time until D/JM/JC dispatched and total completion",
        headers=["fs", "d_dispatch_us", "jm_dispatch_us", "jc_dispatch_us",
                 "total_us"],
    )
    for kind in kinds:
        cluster = build_cluster(layout)
        fs = make_filesystem(kind, cluster,
                             num_journals=(1 if kind == "ext4" else 24))
        env = cluster.env

        def worker(fs=fs, env=env, cluster=cluster):
            core = cluster.initiator.cpus.pick(0)
            file = yield from fs.create(core, "probe")
            for _ in range(iterations):
                yield from fs.append(core, file, nblocks=1)
                yield from fs.fsync(core, file, thread_id=0)

        env.run_until_event(env.process(worker()))
        breakdowns = [b for j in fs.journals for b in j.breakdowns]
        count = max(1, len(breakdowns))
        result.add(
            fs=kind,
            d_dispatch_us=sum(b.data_dispatched - b.started for b in breakdowns)
            / count * 1e6,
            jm_dispatch_us=sum(b.jm_dispatched - b.started for b in breakdowns)
            / count * 1e6,
            jc_dispatch_us=sum(b.jc_dispatched - b.started for b in breakdowns)
            / count * 1e6,
            total_us=sum(b.total for b in breakdowns) / count * 1e6,
        )
    return result


# ======================================================================
# Figure 15 — applications (§6.4)
# ======================================================================


def fig15a_varmail(
    threads: Sequence[int] = (1, 4, 8, 16, 24),
    duration: float = 6e-3,
    layout: str = "optane",
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> FigureResult:
    result = FigureResult(
        name="Figure 15(a)",
        description="Varmail (Filebench personality) on a remote Optane SSD",
        headers=["fs", "threads", "kops"],
    )
    for kind in kinds:
        for count in threads:
            cluster = build_cluster(layout)
            fs = make_filesystem(kind, cluster,
                                 num_journals=(1 if kind == "ext4" else 24))
            run = run_varmail(cluster, fs, threads=count, duration=duration,
                              warmup=duration / 10)
            result.add(fs=kind, threads=count, kops=run.ops_per_sec / 1e3)
    return result


def fig15b_rocksdb(
    threads: Sequence[int] = (1, 6, 12, 24, 36),
    duration: float = 6e-3,
    layout: str = "optane",
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> FigureResult:
    result = FigureResult(
        name="Figure 15(b)",
        description="RocksDB-style fillsync (16B keys, 1KB values) on a "
        "remote Optane SSD",
        headers=["fs", "threads", "kops", "initiator_cpu"],
    )
    for kind in kinds:
        for count in threads:
            cluster = build_cluster(layout)
            fs = make_filesystem(kind, cluster,
                                 num_journals=(1 if kind == "ext4" else 24))
            run = run_fillsync(cluster, fs, threads=count, duration=duration,
                               warmup=duration / 10)
            result.add(
                fs=kind,
                threads=count,
                kops=run.ops_per_sec / 1e3,
                initiator_cpu=run.initiator_busy_cores,
            )
    return result


# ======================================================================
# §6.5 — recovery time
# ======================================================================


def recovery_table(
    trials: int = 5,
    threads: int = 36,
    layout: str = "2optane-2targets",
    run_before_crash: float = 2e-3,
    seed: int = 42,
) -> FigureResult:
    """Worst-case recovery: continuous ordered writes, then a crash.

    Reproduces §6.5: Rio reconstructs the global order from PMR ordering
    attributes and discards out-of-order data.  The HORAE row models its
    smaller ordering-metadata reload.
    """
    result = FigureResult(
        name="Recovery (§6.5)",
        description="crash recovery time, averaged over trials",
        headers=["system", "rebuild_ms", "data_recovery_ms", "records",
                 "discarded"],
    )
    for system in ("rio", "horae"):
        rebuilds, datas, records_counts, discardeds = [], [], [], []
        for trial in range(trials):
            cluster = build_cluster(layout, seed=seed + trial)
            stack = build_stack(system, cluster, num_streams=threads)
            env = cluster.env

            def writer(thread_id, env=env, cluster=cluster, stack=stack):
                core = cluster.initiator.cpus.pick(thread_id)
                lba = thread_id * 16_000_000
                inflight = []
                while True:
                    done = yield from stack.write_ordered(
                        core, thread_id, lba=lba, nblocks=1,
                    )
                    lba += 2
                    inflight.append(done)
                    if len(inflight) >= 32:
                        yield env.any_of(inflight)
                        inflight = [e for e in inflight if not e.triggered]

            for thread_id in range(threads):
                env.process(writer(thread_id))
            env.run(until=run_before_crash)
            for target in cluster.targets:
                target.crash()
            env.run(until=env.now + 200e-6)
            for target in cluster.targets:
                target.restart()

            holder = {}

            def recover(env=env, cluster=cluster, stack=stack, holder=holder):
                core = cluster.initiator.cpus.pick(0)
                report = yield from stack.recovery() \
                    .run_initiator_recovery(core)
                holder["report"] = report

            env.run_until_event(env.process(recover()))
            report = holder["report"]
            rebuilds.append(report.rebuild_seconds)
            datas.append(report.data_recovery_seconds)
            records_counts.append(report.records_scanned)
            discardeds.append(report.discarded_extents)

        def avg(xs):
            return sum(xs) / len(xs) if xs else 0.0

        result.add(
            system=system,
            rebuild_ms=avg(rebuilds) * 1e3,
            data_recovery_ms=avg(datas) * 1e3,
            records=avg(records_counts),
            discarded=avg(discardeds),
        )
    result.notes.append(
        "HORAE's reload moves 16 B metadata records (vs Rio's 32 B "
        "attributes); both data-recovery phases run discards concurrently "
        "per SSD/server, and HORAE additionally pays validation reads."
    )
    return result
