"""Chaos harness: ordered workloads under randomized transient faults.

Each *trial* builds a fresh cluster with driver hardening enabled
(per-command expiry + retries, RPC timeouts, liveness watching), installs a
seeded :class:`~repro.sim.faults.FaultPlan` (probabilistic message
loss/corruption/delay plus at least one queue-pair breakdown and one target
stall), runs a multi-stream ordered-write workload over one of the
reproduced stacks, and audits the outcome:

* **forward progress** — every group completes before the virtual-time
  limit and nothing deadlocks (a drained heap with pending liveness-watched
  completions raises :class:`~repro.sim.engine.SimDeadlock`);
* **in-order completion** — per stream, groups complete in submission
  order (checked for stacks that promise it: Rio and Linux);
* **no duplicate applies / prefix property** — the target-side audit log
  must show each ``(stream, position)`` submitted to the SSD exactly once
  and in strictly increasing position order, even though the initiator
  retransmits commands under loss (§4.4's idempotence argument);
* **no leaks** — the driver's pending tables must be empty after the run.

:func:`measure_degradation` runs a timed fault burst only (no
probabilistic loss) and bins completions into before/during/after windows
so graceful degradation — a dip during the burst, recovery after — can be
asserted quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster import Cluster
from repro.harness.experiment import LAYOUTS
from repro.nvmeof.initiator import DriverHardening
from repro.sim.engine import Environment, Event, SimulationError
from repro.sim.faults import FaultPlan
from repro.sim.rng import DeterministicRNG
from repro.sim.trace import Tracer
from repro.systems.base import make_stack

__all__ = [
    "CHAOS_HARDENING",
    "ChaosResult",
    "build_fault_plan",
    "run_chaos_trial",
    "chaos_suite_sweep",
    "run_chaos_suite",
    "measure_degradation",
    "build_scale_fault_plan",
    "run_scale_chaos_trial",
    "run_tenant_chaos_trial",
]

#: Hardening profile used by every chaos trial: generous retry budget so
#: sub-5% message loss cannot plausibly exhaust it, expiry long enough to
#: ride out a target stall without spurious aborts dominating.
CHAOS_HARDENING = DriverHardening(
    command_timeout=400e-6,
    rpc_timeout=400e-6,
    max_retries=10,
    backoff=1.5,
    watch_liveness=True,
)

#: Private LBA area per workload stream (blocks), far apart per stream.
STREAM_AREA_BLOCKS = 1_000_000


@dataclass
class ChaosResult:
    """Audited outcome of one chaos trial."""

    system: str
    seed: int
    threads: int
    groups_per_thread: int
    deadlocked: bool = False
    deadlock_reason: str = ""
    completed_groups: int = 0
    elapsed: float = 0.0
    #: (stream, group_index, completion_time) in completion order.
    completion_log: List[Tuple[int, int, float]] = field(default_factory=list)
    #: Streams whose groups completed out of submission order.
    completion_order_violations: List[Tuple[int, List[int]]] = field(
        default_factory=list
    )
    #: (stream, server_pos, epoch) keys applied to an SSD more than once.
    duplicate_applies: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Per-stream position regressions in the target submission order.
    submission_order_violations: List[Tuple[int, int, int]] = field(
        default_factory=list
    )
    #: Writes completed in error (bio.status != 0).
    errors: List[Tuple[int, int, int]] = field(default_factory=list)
    leak_error: str = ""
    # -- fault / recovery accounting --
    fault_counts: Dict[str, int] = field(default_factory=dict)
    messages_dropped: int = 0
    messages_corrupted: int = 0
    messages_delayed: int = 0
    retries: int = 0
    rpc_retries: int = 0
    reconnects: int = 0
    commands_resubmitted: int = 0
    commands_timed_out: int = 0
    duplicates_suppressed: int = 0
    trace_events: int = 0
    #: Live (non-cancelled) event-heap entries at the end of the run.
    #: Completed watchdog arms must disarm their expiry timeouts; a large
    #: value here means commands are leaking armed timers (see
    #: ``Timeout.cancel``).
    heap_live_entries: int = 0
    #: Multi-initiator trials only: per-node driver reconnect/retry
    #: counts, indexed by initiator host (empty for single-host trials).
    node_reconnects: List[int] = field(default_factory=list)
    node_retries: List[int] = field(default_factory=list)
    #: SMART snapshot per device (``"t0/q0"`` keys) at the end of the run:
    #: lets qualification trials assert the fault burst actually landed in
    #: the GC / cache-pressure regime, not on an idle factory-fresh drive.
    device_health: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Tenant trials only: per-class latency accounting over the measured
    #: window (``{class: {count, mean_us, p50_us, p99_us, p999_us}}``),
    #: so noisy-neighbor chaos regressions can bound the quiet class's
    #: tail while the aggressor is being shed (empty for classless trials).
    class_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Tenant trials only: admission sheds by reason across all targets.
    sheds_by_reason: Dict[str, float] = field(default_factory=dict)

    @property
    def total_groups(self) -> int:
        return self.threads * self.groups_per_thread

    @property
    def ok(self) -> bool:
        """True when every robustness invariant held for this trial."""
        return (
            not self.deadlocked
            and self.completed_groups == self.total_groups
            and not self.completion_order_violations
            and not self.duplicate_applies
            and not self.submission_order_violations
            and not self.errors
            and not self.leak_error
        )

    def summary(self) -> str:
        status = "ok" if self.ok else "FAILED"
        return (
            f"{self.system:>8} seed={self.seed:<4} {status}: "
            f"{self.completed_groups}/{self.total_groups} groups in "
            f"{self.elapsed * 1e3:.2f}ms  "
            f"drops={self.messages_dropped} corrupt={self.messages_corrupted} "
            f"retries={self.retries} reconnects={self.reconnects} "
            f"dups_suppressed={self.duplicates_suppressed} "
            f"faults={self.fault_counts}"
        )


def build_fault_plan(
    seed: int,
    num_qps: int,
    num_targets: int,
    horizon: float = 400e-6,
    max_loss: float = 0.05,
) -> FaultPlan:
    """A randomized plan meeting the chaos-suite floor: probabilistic
    loss/corruption/delay at or below ``max_loss`` each, plus at least one
    queue-pair breakdown and one target stall inside ``horizon``.  The
    default horizon is short enough that the timed faults land while the
    default trial workload is still in flight on every stack."""
    rng = DeterministicRNG(seed).fork("chaos-plan")
    plan = FaultPlan(
        seed=seed * 7919 + 13,
        message_loss=rng.uniform(0.005, max_loss),
        corruption=rng.uniform(0.0, 0.01),
        delay_probability=rng.uniform(0.0, 0.03),
        delay_range=(5e-6, 40e-6),
    )
    for _ in range(rng.randint(1, 2)):
        plan.qp_breakdown(
            at=rng.uniform(0.15 * horizon, 0.75 * horizon),
            qp_index=rng.randint(0, num_qps - 1),
        )
    for _ in range(rng.randint(1, 2)):
        plan.target_stall(
            at=rng.uniform(0.15 * horizon, 0.75 * horizon),
            target_index=rng.randint(0, num_targets - 1),
            duration=rng.uniform(50e-6, 200e-6),
        )
    return plan


def _ordered_workload(
    env: Environment,
    cluster: Cluster,
    stack,
    thread_id: int,
    groups: int,
    writes_per_group: int,
    depth: int,
    on_group_done,
):
    """Generator: issue ``groups`` ordered groups on one stream, keeping at
    most ``depth`` groups in flight (Rio pipelines; Linux chains anyway)."""
    core = cluster.initiator.cpus.pick(thread_id)
    base = thread_id * STREAM_AREA_BLOCKS
    inflight: List[Event] = []
    for group in range(groups):
        last_event: Optional[Event] = None
        for w in range(writes_per_group):
            last = w == writes_per_group - 1
            last_event = yield from stack.write_ordered(
                core,
                thread_id,
                lba=base + (group * writes_per_group + w) * 2,
                nblocks=1,
                end_of_group=last,
                kick=last,
            )
        assert last_event is not None
        last_event.callbacks.append(on_group_done(thread_id, group))
        inflight.append(last_event)
        while len(inflight) >= depth:
            yield inflight.pop(0)
    for event in inflight:
        if not event.triggered:
            yield event


def run_chaos_trial(
    system: str = "rio",
    seed: int = 0,
    layout: str = "optane",
    threads: int = 4,
    groups_per_thread: int = 12,
    writes_per_group: int = 2,
    depth: int = 4,
    plan: Optional[FaultPlan] = None,
    limit: float = 50e-3,
    trace: bool = True,
    prefill: float = 0.0,
    plan_spec: Optional[dict] = None,
) -> ChaosResult:
    """One seeded trial: build, inject, run, audit.

    ``prefill`` fills that fraction of each device's logical capacity
    before the workload starts (see :meth:`NvmeSsd.prefill`) so trials on
    the qualification layout run with steady-state GC and cache eviction
    pressure active — the regime where a crash lands mid-drain.

    ``plan_spec`` is the JSON-encodable alternative to ``plan`` (a
    :meth:`FaultPlan.to_dict` document, i.e. a ScenarioSpec ``faults``
    section): unlike a live ``FaultPlan`` it survives
    :class:`~repro.harness.sweep.RunSpec` encoding, so spec-driven chaos
    sweeps can fan trials out across worker processes and memoize them.
    """
    if plan_spec is not None:
        if plan is not None:
            raise ValueError("pass plan or plan_spec, not both")
        plan = FaultPlan.from_dict(plan_spec)
    env = Environment()
    if trace:
        env.tracer = Tracer(categories={"fault", "driver", "rio.gate"})
    cluster = Cluster(
        env,
        target_ssds=LAYOUTS[layout],
        initiator_cores=max(threads, 2),
        target_cores=8,
        num_qps=max(threads, 2),
        seed=seed,
        hardening=CHAOS_HARDENING,
    )
    if prefill:
        for target in cluster.targets:
            for ssd in target.ssds:
                ssd.prefill(prefill)
    stack = make_stack(system, cluster, num_streams=threads)
    if plan is None:
        plan = build_fault_plan(
            seed, num_qps=max(threads, 2), num_targets=len(cluster.targets)
        )
    plan.install(cluster)

    result = ChaosResult(
        system=system,
        seed=seed,
        threads=threads,
        groups_per_thread=groups_per_thread,
    )
    total = threads * groups_per_thread
    all_done = Event(env)
    bios: List = []

    def on_group_done(stream: int, group: int):
        def callback(event: Event) -> None:
            result.completion_log.append((stream, group, env.now))
            bio = getattr(event, "bio", None)
            if bio is not None:
                bios.append((stream, group, bio))
            if len(result.completion_log) == total and not all_done.triggered:
                all_done.succeed()

        return callback

    for thread_id in range(threads):
        env.process(
            _ordered_workload(
                env,
                cluster,
                stack,
                thread_id,
                groups_per_thread,
                writes_per_group,
                depth,
                on_group_done,
            )
        )

    try:
        env.run_until_event(all_done, limit=limit)
    except SimulationError as exc:  # includes SimDeadlock
        result.deadlocked = True
        result.deadlock_reason = f"{type(exc).__name__}: {exc}"

    result.completed_groups = len(result.completion_log)
    result.elapsed = env.now
    result.heap_live_entries = env.live_heap_size()

    # -- audits --------------------------------------------------------
    if system in ("rio", "linux"):
        per_stream: Dict[int, List[int]] = {}
        for stream, group, _t in result.completion_log:
            per_stream.setdefault(stream, []).append(group)
        for stream, order in sorted(per_stream.items()):
            if order != sorted(order):
                result.completion_order_violations.append((stream, order))
    for stream, group, bio in bios:
        if bio.status:
            result.errors.append((stream, group, bio.status))
    for target in cluster.targets:
        result.duplicate_applies.extend(target.duplicate_applies())
        result.submission_order_violations.extend(
            target.submission_order_violations()
        )
        result.duplicates_suppressed += target.duplicates_suppressed
        for ssd in target.ssds:
            result.device_health[ssd.name] = ssd.smart()
    if not result.deadlocked:
        try:
            cluster.driver.assert_no_leaks()
        except AssertionError as exc:
            result.leak_error = str(exc)

    result.fault_counts = plan.counts()
    result.messages_dropped = plan.messages_dropped
    result.messages_corrupted = plan.messages_corrupted
    result.messages_delayed = plan.messages_delayed
    driver = cluster.driver
    result.retries = driver.retries
    result.rpc_retries = driver.rpc_retries
    result.reconnects = driver.reconnects
    result.commands_resubmitted = driver.commands_resubmitted
    result.commands_timed_out = driver.commands_timed_out
    if env.tracer is not None:
        result.trace_events = len(env.tracer.events)
    return result


def chaos_suite_sweep(
    systems: Tuple[str, ...] = ("rio", "horae", "linux"),
    trials: int = 30,
    base_seed: int = 1000,
    **trial_kwargs,
):
    """The chaos suite as a :class:`~repro.harness.sweep.Sweep`.

    Each trial is one spec (seeded, independent, returning a picklable
    :class:`ChaosResult`), so the suite fans out across worker processes
    and memoizes like the figure sweeps.  Raises ``TypeError`` if
    ``trial_kwargs`` contains something spec-encodable kwargs can't carry
    (e.g. a pre-built :class:`~repro.sim.faults.FaultPlan`) — use
    :func:`run_chaos_suite`, which falls back to the inline loop.
    """
    from repro.harness.sweep import RunSpec, Sweep

    specs = [
        RunSpec.make(
            run_chaos_trial,
            label=f"chaos/{system}/seed{base_seed + i}",
            system=system,
            seed=base_seed + i,
            **trial_kwargs,
        )
        for system in systems
        for i in range(trials)
    ]
    return Sweep(name="chaos-suite", specs=specs)


def run_chaos_suite(
    systems: Tuple[str, ...] = ("rio", "horae", "linux"),
    trials: int = 30,
    base_seed: int = 1000,
    jobs: Optional[int] = None,
    cache=None,
    **trial_kwargs,
) -> List[ChaosResult]:
    """``trials`` seeded trials per system; returns every result.

    ``jobs``/``cache`` route the trials through a
    :class:`~repro.harness.sweep.SweepRunner` (parallel workers and/or the
    on-disk result cache).  Left at None the suite runs inline — and it
    always does when ``trial_kwargs`` carries objects a spec can't encode,
    such as an explicit ``plan``.
    """
    if jobs is not None or cache is not None:
        from repro.harness.sweep import SweepRunner

        try:
            sweep = chaos_suite_sweep(
                systems=systems, trials=trials, base_seed=base_seed,
                **trial_kwargs,
            )
        except TypeError:
            pass  # unencodable kwargs: fall through to the inline loop
        else:
            return SweepRunner(jobs=jobs or 1, cache=cache).map(sweep.specs)
    results: List[ChaosResult] = []
    for system in systems:
        for i in range(trials):
            results.append(
                run_chaos_trial(system=system, seed=base_seed + i, **trial_kwargs)
            )
    return results


def measure_degradation(
    system: str = "rio",
    seed: int = 7,
    threads: int = 4,
    groups_per_thread: int = 120,
    fault_start: float = 500e-6,
    fault_end: float = 900e-6,
) -> Dict[str, float]:
    """Throughput before/during/after a timed fault burst.

    The plan has *no* probabilistic faults — only a queue-pair breakdown
    and a target stall inside ``[fault_start, fault_end)`` — so the
    before/after windows are clean and the dip is attributable.
    Returns completions-per-second rates for the three windows.
    """
    plan = FaultPlan(seed=seed)
    plan.qp_breakdown(at=fault_start, qp_index=0)
    plan.target_stall(
        at=fault_start + 20e-6,
        target_index=0,
        duration=(fault_end - fault_start) * 0.6,
    )
    result = run_chaos_trial(
        system=system,
        seed=seed,
        threads=threads,
        groups_per_thread=groups_per_thread,
        plan=plan,
    )
    before = [t for _s, _g, t in result.completion_log if t < fault_start]
    during = [
        t for _s, _g, t in result.completion_log if fault_start <= t < fault_end
    ]
    after = [t for _s, _g, t in result.completion_log if t >= fault_end]
    end = result.elapsed
    return {
        "ok": float(result.ok),
        "before_rate": len(before) / fault_start if fault_start else 0.0,
        "during_rate": len(during) / (fault_end - fault_start),
        "after_rate": (
            len(after) / (end - fault_end) if end > fault_end else 0.0
        ),
        "completed": float(result.completed_groups),
        "total": float(result.total_groups),
    }


# ----------------------------------------------------------------------
# Multi-initiator (scale-out) chaos
# ----------------------------------------------------------------------


def build_scale_fault_plan(
    seed: int,
    victim_qp_range: Tuple[int, int],
    horizon: float = 200e-6,
) -> FaultPlan:
    """A breakdown-only plan confined to one initiator host's queue pairs.

    ``victim_qp_range`` is the half-open ``[lo, hi)`` slice of
    ``fabric.queue_pairs`` owned by the victim host (hosts connect in
    index order, so host ``i`` owns one contiguous run of QP indices).
    No probabilistic loss is injected: the bystander hosts' fabric paths
    stay fault-free by construction, which is exactly what makes the
    blast-radius assertions in ``benchmarks/test_chaos.py`` sharp.
    """
    lo, hi = victim_qp_range
    if hi <= lo:
        raise ValueError("victim owns no queue pairs")
    rng = DeterministicRNG(seed).fork("scale-chaos-plan")
    plan = FaultPlan(seed=seed * 7919 + 29)
    for _ in range(rng.randint(1, 2)):
        plan.qp_breakdown(
            at=rng.uniform(0.15 * horizon, 0.75 * horizon),
            qp_index=rng.randint(lo, hi - 1),
        )
    return plan


def run_tenant_chaos_trial(
    system: str = "rio",
    seed: int = 0,
    layout: str = "optane",
    gold_kiops: float = 20.0,
    aggressor_kiops: float = 40.0,
    aggressor_lanes: int = 30,
    aggressor_blocks: int = 32,
    pace_kiops: float = 0.1,
    qos: bool = True,
    quantum: float = 8.0,
    duration: float = 3e-3,
    warmup: float = 2e-3,
    faults: bool = True,
) -> ChaosResult:
    """The noisy-neighbor storm with transient faults layered on.

    Same seeded testbed as
    :func:`repro.harness.tenants.probe_noisy_neighbor` — one quiet gold
    tenant vs. a bronze aggressor of large writes at a multiple of the
    media pipe's capacity, QoS admission pacing the aggressor when
    ``qos`` — plus, when ``faults``, a queue-pair breakdown on one of the
    aggressor's lanes and a target stall, both landing inside the
    measured window.  The per-class latencies go to
    :attr:`ChaosResult.class_latency` so the regression can bound the
    gold tail while faults and shedding are both active; the usual
    target-side audits (duplicate applies, submission order) apply
    unchanged.
    """
    from repro.harness.tenants import (
        _storm_class,
        _storm_hardening,
        _StormPlane,
    )
    from repro.robust.admission import (
        AdmissionConfig,
        AdmissionController,
        QosClass,
        TenantQos,
    )
    from repro.scale import (
        OpenLoopConfig,
        ScaleOutCluster,
        ShardedStack,
        run_open_loop,
    )

    env = Environment()
    cluster = ScaleOutCluster(
        env,
        LAYOUTS[layout],
        num_initiators=1,
        seed=seed,
        hardening=_storm_hardening() if qos else None,
    )
    lanes = 1 + aggressor_lanes
    stack = ShardedStack(cluster, system, num_streams=lanes)
    if qos:
        tenant_qos = TenantQos(
            (
                QosClass("gold", weight=8.0),
                QosClass("bronze", weight=1.0,
                         rate_iops=pace_kiops * 1e3, burst=1.0),
            ),
            classifier=_storm_class,
            quantum=quantum,
        )
        for target in cluster.targets:
            target.install_admission(AdmissionController(
                AdmissionConfig(max_inflight_ordered=128,
                                max_inflight_unordered=128),
                qos=tenant_qos,
            ))
            target.install_tenant_steering(
                _storm_class, {"gold": (0.0, 0.2), "bronze": (0.2, 1.0)})
    plan: Optional[FaultPlan] = None
    if faults:
        # Break an aggressor lane's queue pair (gold's lane 0 pins to QP
        # 0 — the faults stress recovery, not the quiet tenant's path)
        # and stall the target briefly, both inside the measured window.
        plan = FaultPlan(seed=seed * 7919 + 41)
        burst_at = warmup + 0.2 * duration
        plan.qp_breakdown(at=burst_at, qp_index=1 + aggressor_lanes // 2)
        plan.target_stall(at=burst_at + 0.1 * duration, target_index=0,
                          duration=150e-6)
        plan.install(cluster)

    plane = _StormPlane()
    run_open_loop(
        cluster, stack,
        OpenLoopConfig(
            offered_iops=(gold_kiops + aggressor_kiops) * 1e3,
            tenants=lanes, duration=duration, warmup=warmup, seed=seed,
            weights=(gold_kiops,) + (
                aggressor_kiops / aggressor_lanes,) * aggressor_lanes,
            blocks=(1,) + (aggressor_blocks,) * aggressor_lanes,
        ),
        plane=plane,
    )

    result = ChaosResult(
        system=system, seed=seed, threads=lanes, groups_per_thread=0,
    )
    result.elapsed = env.now
    result.completed_groups = 0
    result.class_latency = plane.class_summary()
    result.heap_live_entries = env.live_heap_size()
    for target in cluster.targets:
        result.duplicate_applies.extend(target.duplicate_applies())
        result.submission_order_violations.extend(
            target.submission_order_violations()
        )
        result.duplicates_suppressed += target.duplicates_suppressed
        for ssd in target.ssds:
            result.device_health[ssd.name] = ssd.smart()
        if target.admission is not None:
            for reason, n in target.admission.shed_by_reason.items():
                result.sheds_by_reason[reason] = (
                    result.sheds_by_reason.get(reason, 0.0) + n)
    if plan is not None:
        result.fault_counts = plan.counts()
        result.messages_dropped = plan.messages_dropped
        result.messages_corrupted = plan.messages_corrupted
        result.messages_delayed = plan.messages_delayed
    for node in cluster.nodes:
        result.node_reconnects.append(node.driver.reconnects)
        result.node_retries.append(node.driver.retries)
        result.retries += node.driver.retries
        result.rpc_retries += node.driver.rpc_retries
        result.reconnects += node.driver.reconnects
        result.commands_resubmitted += node.driver.commands_resubmitted
        result.commands_timed_out += node.driver.commands_timed_out
    # No group structure in an open-loop storm: per-class op counts live
    # in class_latency; `ok` reduces to the target-side audits.
    return result


def run_scale_chaos_trial(
    system: str = "rio",
    seed: int = 0,
    layout: str = "optane",
    initiators: int = 2,
    victim: int = 0,
    threads: int = 4,
    groups_per_thread: int = 12,
    writes_per_group: int = 2,
    depth: int = 4,
    limit: float = 50e-3,
    faults: bool = True,
    trace: bool = True,
) -> ChaosResult:
    """One seeded multi-initiator trial: break QPs on one host only.

    Builds a sharded scale-out cluster (:mod:`repro.scale`) with
    ``initiators`` hosts fanning in to the layout's targets, runs the
    usual ordered workload (stream ``s`` lives on host ``s % N``), and —
    when ``faults`` — installs a breakdown-only plan aimed at the
    ``victim`` host's queue pairs.  ``faults=False`` runs the identical
    seeded trial fault-free, giving tests a baseline to bound the
    bystander hosts' completion times against.  Per-host driver activity
    lands in ``node_reconnects`` / ``node_retries``.
    """
    from repro.scale import ScaleOutCluster, ShardedStack

    env = Environment()
    if trace:
        env.tracer = Tracer(categories={"fault", "driver", "rio.gate"})
    num_qps = max(threads, 2)
    cluster = ScaleOutCluster(
        env,
        LAYOUTS[layout],
        num_initiators=initiators,
        initiator_cores=max(threads, 2),
        target_cores=8,
        num_qps=num_qps,
        seed=seed,
        hardening=CHAOS_HARDENING,
    )
    stack = ShardedStack(cluster, system, num_streams=threads)
    plan: Optional[FaultPlan] = None
    if faults:
        qps_per_node = len(cluster.fabric.queue_pairs) // initiators
        plan = build_scale_fault_plan(
            seed,
            (victim * qps_per_node, (victim + 1) * qps_per_node),
        )
        plan.install(cluster)

    result = ChaosResult(
        system=system,
        seed=seed,
        threads=threads,
        groups_per_thread=groups_per_thread,
    )
    total = threads * groups_per_thread
    all_done = Event(env)
    bios: List = []

    def on_group_done(stream: int, group: int):
        def callback(event: Event) -> None:
            result.completion_log.append((stream, group, env.now))
            bio = getattr(event, "bio", None)
            if bio is not None:
                bios.append((stream, group, bio))
            if len(result.completion_log) == total and not all_done.triggered:
                all_done.succeed()

        return callback

    for thread_id in range(threads):
        env.process(
            _ordered_workload(
                env,
                cluster,
                stack,
                thread_id,
                groups_per_thread,
                writes_per_group,
                depth,
                on_group_done,
            )
        )

    try:
        env.run_until_event(all_done, limit=limit)
    except SimulationError as exc:  # includes SimDeadlock
        result.deadlocked = True
        result.deadlock_reason = f"{type(exc).__name__}: {exc}"

    result.completed_groups = len(result.completion_log)
    result.elapsed = env.now
    result.heap_live_entries = env.live_heap_size()

    # -- audits (same invariants as the single-host trial) -------------
    if system in ("rio", "linux"):
        per_stream: Dict[int, List[int]] = {}
        for stream, group, _t in result.completion_log:
            per_stream.setdefault(stream, []).append(group)
        for stream, order in sorted(per_stream.items()):
            if order != sorted(order):
                result.completion_order_violations.append((stream, order))
    for stream, group, bio in bios:
        if bio.status:
            result.errors.append((stream, group, bio.status))
    for target in cluster.targets:
        result.duplicate_applies.extend(target.duplicate_applies())
        result.submission_order_violations.extend(
            target.submission_order_violations()
        )
        result.duplicates_suppressed += target.duplicates_suppressed
        for ssd in target.ssds:
            result.device_health[ssd.name] = ssd.smart()
    if not result.deadlocked:
        for node in cluster.nodes:
            try:
                node.driver.assert_no_leaks()
            except AssertionError as exc:
                result.leak_error = f"node {node.index}: {exc}"

    if plan is not None:
        result.fault_counts = plan.counts()
        result.messages_dropped = plan.messages_dropped
        result.messages_corrupted = plan.messages_corrupted
        result.messages_delayed = plan.messages_delayed
    for node in cluster.nodes:
        result.node_reconnects.append(node.driver.reconnects)
        result.node_retries.append(node.driver.retries)
        result.retries += node.driver.retries
        result.rpc_retries += node.driver.rpc_retries
        result.reconnects += node.driver.reconnects
        result.commands_resubmitted += node.driver.commands_resubmitted
        result.commands_timed_out += node.driver.commands_timed_out
    if env.tracer is not None:
        result.trace_events = len(env.tracer.events)
    return result
