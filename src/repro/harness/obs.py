"""Observability harness: traced runs and span-based figure reconstruction.

:func:`traced_fsync_run` is the fixed-seed workload behind ``repro trace``,
``repro metrics`` and the golden-trace regression suite: one thread doing
``iterations`` append+fsync pairs against a fresh cluster, with an
:class:`~repro.sim.obs.Observability` attached *before* the cluster is
built (so construction-time gauge registrations land in the registry).
It deliberately mirrors
:func:`repro.harness.figures.fig14_latency_breakdown`'s worker, which lets
:func:`fig14_breakdown_from_spans` reconstruct the same figure purely from
the span forest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.fs.filesystem import make_filesystem
from repro.harness.experiment import FigureResult, build_cluster
from repro.sim.engine import Environment
from repro.sim.obs import Observability
from repro.sim.obs.analysis import fig14_averages
from repro.sim.trace import Tracer

__all__ = ["TracedRun", "traced_fsync_run", "fig14_breakdown_from_spans"]


@dataclass
class TracedRun:
    """One finished instrumented workload run."""

    kind: str
    env: Environment
    cluster: Any
    fs: Any
    obs: Observability


def traced_fsync_run(
    kind: str,
    layout: str = "optane",
    iterations: int = 8,
    seed: int = 42,
    with_tracer: bool = False,
) -> TracedRun:
    """Run the Fig. 14 append+fsync probe with observability attached.

    With ``with_tracer=True`` an unfiltered :class:`Tracer` is attached
    too, so the Chrome export can interleave instant events with spans.
    """
    env = Environment()
    obs = Observability(env)
    if with_tracer:
        env.tracer = Tracer()
    cluster = build_cluster(layout, env=env, seed=seed)
    fs = make_filesystem(kind, cluster,
                         num_journals=(1 if kind == "ext4" else 24))

    def worker():
        core = cluster.initiator.cpus.pick(0)
        file = yield from fs.create(core, "probe")
        for _ in range(iterations):
            yield from fs.append(core, file, nblocks=1)
            yield from fs.fsync(core, file, thread_id=0)

    # Mirror fig14_latency_breakdown exactly: run to worker completion (a
    # full drain would never terminate — Rio's release acker is a perpetual
    # periodic process).  run_until_event drains same-timestamp callbacks,
    # so every span of the workload is closed when this returns.
    env.run_until_event(env.process(worker()))
    return TracedRun(kind=kind, env=env, cluster=cluster, fs=fs, obs=obs)


def fig14_breakdown_from_spans(
    layout: str = "optane",
    iterations: int = 50,
    kinds: Sequence[str] = ("ext4", "horaefs", "riofs"),
) -> FigureResult:
    """Figure 14, reconstructed from lifecycle spans instead of the
    journal's hand-maintained :class:`~repro.fs.journal.CommitBreakdown`
    accumulators (the differential test holds the two within 1%)."""
    result = FigureResult(
        name="Figure 14 (from spans)",
        description="fsync internal latency breakdown reconstructed from "
        "lifecycle spans (microseconds)",
        headers=["fs", "d_dispatch_us", "jm_dispatch_us", "jc_dispatch_us",
                 "total_us"],
    )
    for kind in kinds:
        run = traced_fsync_run(kind, layout=layout, iterations=iterations)
        result.add(fs=kind, **fig14_averages(run.obs.spans))
    return result
