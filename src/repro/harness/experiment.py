"""Shared experiment plumbing: testbeds, stacks, result tables.

``LAYOUTS`` encodes the paper's hardware configurations (§6.1):

* ``flash``          — one PM981 on one target (Figures 2(a), 10(a));
* ``optane``         — one 905P on one target (Figures 2(b), 10(b), 13–15);
* ``4ssd-1target``   — flash + Optane pairs as a 4-SSD volume on one target
  (Figure 10(c); we model four SSDs on target 1);
* ``4ssd-2targets``  — two SSDs per target across two targets
  (Figure 10(d), §6.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.fio import BlockWorkloadResult, run_block_workload
from repro.cluster import Cluster
from repro.hw.ssd import (
    FLASH_PM981,
    FLASH_PM981_QUAL,
    OPTANE_905P,
    OPTANE_P4800X,
    OPTANE_P5800X,
    SsdProfile,
)
from repro.sim.engine import Environment
from repro.systems.base import OrderedStack, make_stack

__all__ = ["LAYOUTS", "FigureResult", "build_cluster", "build_stack", "fio_run"]

LAYOUTS: Dict[str, tuple] = {
    "flash": ((FLASH_PM981,),),
    "optane": ((OPTANE_905P,),),
    "p4800x": ((OPTANE_P4800X,),),
    "4ssd-1target": ((FLASH_PM981, OPTANE_905P, FLASH_PM981, OPTANE_P4800X),),
    "4ssd-2targets": (
        (FLASH_PM981, OPTANE_905P),
        (FLASH_PM981, OPTANE_P4800X),
    ),
    "2optane-2targets": ((OPTANE_905P,), (OPTANE_P4800X,)),
    "p5800x": ((OPTANE_P5800X,),),
    # Qualification layout: the PM981 variant with a small namespace and
    # write cache, so `repro qualify` cells reach cache eviction pressure
    # and steady-state GC within a short deterministic run.
    "flash-qual": ((FLASH_PM981_QUAL,),),
}


@dataclass
class FigureResult:
    """One reproduced figure/table: headers plus one dict per row."""

    name: str
    description: str
    headers: List[str]
    rows: List[Dict] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **row) -> None:
        self.rows.append(row)

    def series(self, **filters) -> List[Dict]:
        """Rows matching all the given column=value filters."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in filters.items())
        ]

    def column(self, name: str, **filters) -> List:
        return [row[name] for row in self.series(**filters)]

    def render_markdown(self) -> str:
        """GitHub-flavored markdown table."""
        lines = [f"### {self.name}: {self.description}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_fmt(row.get(h)) for h in self.headers) + " |"
            )
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def render(self) -> str:
        """ASCII table, one line per row."""
        widths = {
            h: max(len(h), *(len(_fmt(row.get(h))) for row in self.rows))
            if self.rows
            else len(h)
            for h in self.headers
        }
        lines = [f"== {self.name}: {self.description} =="]
        lines.append("  ".join(h.ljust(widths[h]) for h in self.headers))
        lines.append("  ".join("-" * widths[h] for h in self.headers))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(h)).ljust(widths[h]) for h in self.headers)
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6:
            return f"{value / 1e6:.2f}M"
        if abs(value) >= 1e3:
            return f"{value / 1e3:.1f}K"
        if abs(value) < 0.01:
            return f"{value * 1e6:.1f}u"
        return f"{value:.3f}"
    return str(value)


def build_cluster(layout: str, env: Optional[Environment] = None,
                  seed: int = 42) -> Cluster:
    """A fresh cluster for the named hardware layout."""
    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r} (have {sorted(LAYOUTS)})")
    env = env or Environment()
    return Cluster(env, target_ssds=LAYOUTS[layout], seed=seed)


def build_stack(system: str, cluster: Cluster, num_streams: int) -> OrderedStack:
    return make_stack(system, cluster, num_streams=num_streams)


def fio_run(
    system: str,
    layout: str,
    threads: int,
    duration: float,
    seed: int = 42,
    **workload_kwargs,
) -> BlockWorkloadResult:
    """Fresh testbed + stack + one block workload run."""
    cluster = build_cluster(layout, seed=seed)
    stack = build_stack(system, cluster, num_streams=max(threads, 1))
    return run_block_workload(
        cluster, stack, threads=threads, duration=duration, **workload_kwargs
    )
