"""Command-line interface: regenerate any reproduced figure or table.

Usage::

    python -m repro list
    python -m repro run fig10b
    python -m repro run fig13 --duration 0.01
    python -m repro run all
    python -m repro run examples/specs/combined_check.json --jobs 2
    python -m repro spec validate examples/specs/*.json
    python -m repro spec diff a.json b.json
    python -m repro sweep all --jobs 4
    python -m repro sweep fig10b --jobs 2 --no-cache
    python -m repro claims --jobs 4
    python -m repro qualify --profile smoke --jobs 4
    python -m repro qualify --profile full --out-dir results/qualify
    python -m repro trace --fs riofs --out rio.trace.json
    python -m repro metrics --fs riofs --format csv

``--duration`` is *virtual* seconds of measured window per configuration;
the simulation is deterministic, so longer windows change results by
little but take proportionally longer to run.

``sweep`` is ``run`` on the parallel sweep runner: the figure's
independent simulation cells fan out across ``--jobs`` worker processes,
and (unless ``--no-cache``) results are memoized in an on-disk
content-addressed cache (``results/.cache/`` by default, keyed by spec
digest + code version) so repeated invocations only pay for what changed.
See ``docs/running_experiments.md``.

``run`` also accepts a **ScenarioSpec** JSON path instead of a figure
name (any argument containing a path separator or ending in ``.json``):
the spec is validated, compiled onto the sweep runner and executed with
output bit-identical to the equivalent kwargs invocation — including
legacy ``WorkloadSpec``/fault-plan/reproducer JSON, which is upgraded to
spec v1 on load.  ``spec`` validates, canonicalizes, digests and diffs
spec files without running anything.  See ``docs/scenario_spec.md``.

``trace`` runs the instrumented fsync probe and exports the request
lifecycle spans as a Chrome ``chrome://tracing`` / Perfetto JSON file;
``metrics`` exports the metrics registry snapshot as CSV or JSON.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, Optional

from repro.harness import figures
from repro.harness import extensions

__all__ = ["main", "FIGURES"]

#: name -> (callable, description, accepts-duration)
FIGURES: Dict[str, tuple] = {
    "fig2a": (lambda **kw: figures.fig02_motivation(ssd="flash", **kw),
              "motivation, flash SSD (§3.1)", True),
    "fig2b": (lambda **kw: figures.fig02_motivation(ssd="optane", **kw),
              "motivation, Optane SSD (§3.1)", True),
    "fig3": (figures.fig03_merging_cpu,
             "merging cuts CPU overhead (§3.2)", True),
    "fig10a": (lambda **kw: figures.fig10_block_device(panel="a", **kw),
               "block device, flash (§6.2)", True),
    "fig10b": (lambda **kw: figures.fig10_block_device(panel="b", **kw),
               "block device, Optane (§6.2)", True),
    "fig10c": (lambda **kw: figures.fig10_block_device(panel="c", **kw),
               "block device, 4-SSD volume (§6.2)", True),
    "fig10d": (lambda **kw: figures.fig10_block_device(panel="d", **kw),
               "block device, two targets (§6.2)", True),
    "fig11": (figures.fig11_write_sizes, "write-size sweep (§6.2.2)", True),
    "fig12a": (lambda **kw: figures.fig12_batch_sizes(panel="a", **kw),
               "batch sizes, 1 thread (§6.2.3)", True),
    "fig12b": (lambda **kw: figures.fig12_batch_sizes(panel="b", **kw),
               "batch sizes, 12 threads (§6.2.3)", True),
    "fig13": (figures.fig13_filesystem, "file system fsync (§6.3)", True),
    "fig14": (lambda **kw: figures.fig14_latency_breakdown(),
              "fsync latency breakdown (§6.3)", False),
    "fig15a": (figures.fig15a_varmail, "Varmail (§6.4)", True),
    "fig15b": (figures.fig15b_rocksdb, "RocksDB fillsync (§6.4)", True),
    "recovery": (lambda **kw: figures.recovery_table(),
                 "recovery time (§6.5)", False),
    "ablation-affinity": (lambda **kw: extensions.ablation_qp_affinity(**kw),
                          "Principle 2 ablation", True),
    "ablation-attrs": (
        lambda **kw: extensions.ablation_attribute_persistence(**kw),
        "attribute-persistence overhead", True),
    "sensitivity-ssd": (lambda **kw: extensions.sensitivity_faster_ssd(**kw),
                        "faster-SSD sensitivity (§3.1)", True),
    "tcp": (lambda **kw: extensions.transport_comparison(**kw),
            "NVMe/TCP extension (§4.5)", True),
    "multi-initiator": (lambda **kw: extensions.multi_initiator_scaling(**kw),
                        "multi-initiator extension (§4.9)", True),
    "barrier": (lambda **kw: extensions.barrier_comparison(**kw),
                "BarrierFS-style interface comparison (§2.2)", True),
    "oltp": (lambda **kw: extensions.oltp_comparison(**kw),
             "MySQL-style OLTP on the three file systems", True),
    "saturate": (lambda **kw: _saturation_curves(**kw),
                 "scale-out saturation: throughput-latency curves", True),
    "overload": (lambda **kw: _overload_curves(**kw),
                 "robustness plane: metastable-overload sweep", True),
    "overload-gray": (lambda **kw: _gray_result(**kw),
                      "robustness plane: gray (fail-slow) target scenario",
                      True),
}


def _saturation_curves(**kwargs):
    from repro.harness.saturate import saturation_curves

    return saturation_curves(**kwargs)


def _overload_curves(**kwargs):
    from repro.harness.overload import overload_curves

    return overload_curves(**kwargs)


def _gray_result(**kwargs):
    from repro.harness.overload import gray_result

    return gray_result(**kwargs)


def _is_spec_path(name: str) -> bool:
    """``repro run`` disambiguation: figure names never contain a path
    separator or a ``.json`` suffix, spec files always do."""
    import os

    return (os.sep in name or "/" in name or name.endswith(".json"))


def _cmd_run_spec(args) -> int:
    """``repro run <spec.json>``: validate, compile, execute, report."""
    from repro.harness.cache import ResultCache
    from repro.spec import SpecError, load_spec_file, run_scenario

    if args.duration is not None:
        print("--duration applies to figure names only; a ScenarioSpec "
              "carries its own durations (edit the spec instead)",
              file=sys.stderr)
        return 2
    try:
        spec = load_spec_file(args.figure)
    except SpecError as exc:
        print(f"invalid spec: {exc}", file=sys.stderr)
        return 2
    cache = ResultCache(root=args.cache_dir) if args.cache else None
    started = time.time()
    outcome = run_scenario(
        spec, jobs=args.jobs, cache=cache,
        reproducer_dir=(args.reproducers if spec.scenario == "check"
                        else None),
    )
    result = outcome.result
    if args.format == "markdown" and hasattr(result, "render_markdown"):
        print(result.render_markdown())
    else:
        print(outcome.render())
    if not outcome.ok:
        if args.reproducers and spec.scenario != "check":
            for path in outcome.dump_reproducers(args.reproducers):
                print(f"reproducer spec -> {path}")
        elif not args.reproducers:
            for repro_spec in outcome.reproducers:
                print(f"reproducer spec: {repro_spec.canonical_json()}")
    if spec.scenario == "check":
        for path in getattr(result, "dumped", []):
            print(f"reproducer -> {path}")
    line = f"[run {spec.scenario} {spec.digest()[:12]}: "
    if outcome.cached:
        line += "scenario cache hit"
    else:
        line += outcome.stats.summary()
    line += f"; {time.time() - started:.1f}s wall"
    if cache is not None:
        line += (f"; cache {cache.root}/{cache.version}: "
                 f"{cache.hits} hit(s)]")
    else:
        line += "; cache disabled]"
    print(line)
    return 0 if outcome.ok else 1


def _cmd_spec(args) -> int:
    """``repro spec validate|canon|digest|diff`` — no simulation runs."""
    from repro.spec import SpecError, diff_specs, load_spec_file

    if args.action == "diff":
        if len(args.files) != 2:
            print("spec diff takes exactly two files", file=sys.stderr)
            return 2
        try:
            a, b = (load_spec_file(path) for path in args.files)
        except SpecError as exc:
            print(f"invalid spec: {exc}", file=sys.stderr)
            return 2
        differences = diff_specs(a, b)
        if not differences:
            print("specs are canonically identical "
                  f"(digest {a.digest()[:12]})")
            return 0
        for path, left, right in differences:
            print(f"{path}: {left!r} != {right!r}")
        return 1
    status = 0
    for path in args.files:
        try:
            spec = load_spec_file(path)
        except SpecError as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            status = 1
            continue
        if args.action == "validate":
            print(f"{path}: OK scenario={spec.scenario} "
                  f"digest={spec.digest()[:12]}")
        elif args.action == "canon":
            print(spec.canonical_json())
        elif args.action == "digest":
            prefix = f"{path}: " if len(args.files) > 1 else ""
            print(f"{prefix}{spec.digest()}")
    return status


def _run_one(name: str, duration: Optional[float],
             fmt: str = "table") -> None:
    fn, _description, takes_duration = FIGURES[name]
    kwargs = {}
    if duration is not None and takes_duration:
        kwargs["duration"] = duration
    started = time.time()
    result = fn(**kwargs)
    if fmt == "markdown":
        print(result.render_markdown())
    else:
        print(result.render())
    print(f"[{name}: {time.time() - started:.1f}s wall]\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the Rio (EuroSys '23) evaluation figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")
    claims = sub.add_parser(
        "claims", help="grade every headline claim (reproduction scorecard)"
    )
    claims.add_argument("--duration", type=float, default=2.5e-3,
                        help="virtual seconds per configuration")
    claims.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the figure sweeps")
    claims.add_argument("--cache", action="store_true",
                        help="memoize sweep cells in the on-disk cache")
    claims.add_argument("--cache-dir", default=None,
                        help="cache root (default: results/.cache)")
    run = sub.add_parser(
        "run", help="run one figure (or 'all'), or a ScenarioSpec JSON file"
    )
    run.add_argument("figure",
                     help="figure name from 'list', 'all', or a path to a "
                     "ScenarioSpec JSON file (legacy WorkloadSpec/fault-plan"
                     "/reproducer JSON is upgraded on load)")
    run.add_argument("--duration", type=float, default=None,
                     help="virtual seconds per configuration (figure mode "
                     "only: a spec carries its own durations)")
    run.add_argument("--format", choices=("table", "markdown"),
                     default="table", help="output format")
    run.add_argument("--jobs", type=int, default=1,
                     help="spec mode: worker processes for the sweep cells")
    run_cache = run.add_mutually_exclusive_group()
    run_cache.add_argument("--cache", dest="cache", action="store_true",
                           default=False,
                           help="spec mode: memoize cells AND the reduced "
                           "scenario outcome in the on-disk cache")
    run_cache.add_argument("--no-cache", dest="cache", action="store_false",
                           help="always recompute (default)")
    run.add_argument("--cache-dir", default=None,
                     help="cache root (default: results/.cache, or "
                     "$REPRO_CACHE_DIR)")
    run.add_argument("--reproducers", default=None, metavar="DIR",
                     help="spec mode: dump a minimal replayable spec per "
                     "failure into DIR (otherwise failures print their "
                     "reproducer specs inline)")
    spc = sub.add_parser(
        "spec",
        help="validate / canonicalize / digest / diff ScenarioSpec files "
        "without running them",
    )
    spc.add_argument("action",
                     choices=("validate", "canon", "digest", "diff"),
                     help="validate: load+check each file; canon: print "
                     "the canonical JSON; digest: print the stable cache "
                     "digest; diff: field-level differences of two specs")
    spc.add_argument("files", nargs="+", metavar="FILE",
                     help="spec JSON file(s); legacy WorkloadSpec/"
                     "fault-plan/reproducer JSON is upgraded on load")
    swp = sub.add_parser(
        "sweep",
        help="run figures on the parallel sweep runner (workers + cache)",
    )
    swp.add_argument("figure", help="figure name from 'list', or 'all'")
    swp.add_argument("--jobs", type=int, default=1,
                     help="worker processes (runs are CPU-bound; match "
                     "host cores)")
    cache_group = swp.add_mutually_exclusive_group()
    cache_group.add_argument("--cache", dest="cache", action="store_true",
                             default=True,
                             help="memoize results on disk (default)")
    cache_group.add_argument("--no-cache", dest="cache",
                             action="store_false",
                             help="always recompute; touch no cache files")
    swp.add_argument("--cache-dir", default=None,
                     help="cache root (default: results/.cache, or "
                     "$REPRO_CACHE_DIR)")
    swp.add_argument("--clear-cache", action="store_true",
                     help="drop this code version's cached results first")
    swp.add_argument("--duration", type=float, default=None,
                     help="virtual seconds per configuration")
    swp.add_argument("--format", choices=("table", "markdown"),
                     default="table", help="output format")
    chk = sub.add_parser(
        "check",
        help="crash-consistency check: enumerate crash points, replay "
        "recovery, validate ordering invariants",
    )
    chk.add_argument("--systems", default=None,
                     help="comma-separated systems (default: all four)")
    chk.add_argument("--layouts", default=None,
                     help="comma-separated layouts (default: per-system "
                     "matrix; see repro.check.DEFAULT_MATRIX)")
    chk.add_argument("--seeds", default="0,1,2",
                     help="comma-separated workload seeds")
    chk.add_argument("--streams", type=int, default=2)
    chk.add_argument("--groups", type=int, default=4,
                     help="ordered groups per stream")
    chk.add_argument("--writes", type=int, default=2,
                     help="writes per group")
    chk.add_argument("--depth", type=int, default=2,
                     help="submission depth per stream")
    chk.add_argument("--flush-every", type=int, default=2,
                     help="fsync every Nth group (0: never)")
    chk.add_argument("--max-points", type=int, default=20,
                     help="crash points sampled per cell (0: all)")
    chk.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the cell sweep")
    chk_cache = chk.add_mutually_exclusive_group()
    chk_cache.add_argument("--cache", dest="cache", action="store_true",
                           default=False,
                           help="memoize green cells in the result cache")
    chk_cache.add_argument("--no-cache", dest="cache", action="store_false",
                           help="always recompute (default)")
    chk.add_argument("--cache-dir", default=None,
                     help="cache root (default: results/.cache)")
    chk.add_argument("--no-shrink", dest="shrink", action="store_false",
                     default=True,
                     help="skip shrinking failing specs")
    chk.add_argument("--reproducers", default=None, metavar="DIR",
                     help="dump a replayable JSON reproducer per failing "
                     "cell into DIR")
    chk.add_argument("--replay", default=None, metavar="FILE",
                     help="re-run a dumped reproducer instead of the matrix")
    sat = sub.add_parser(
        "saturate",
        help="offered-load saturation sweep over the sharded "
        "multi-initiator cluster (throughput-latency + busy-cores curves)",
    )
    sat.add_argument("--systems", default=None,
                     help="comma-separated systems (default: "
                     "linux,horae,rio,barrier)")
    sat.add_argument("--loads", default=None,
                     help="comma-separated offered loads in kIOPS, "
                     "ascending (default: 25,50,100,200,400,800)")
    sat.add_argument("--layout", default="optane",
                     help="hardware layout (see harness LAYOUTS; must be "
                     "single-SSD when sweeping barrier)")
    sat.add_argument("--initiators", type=int, default=2,
                     help="initiator hosts fanning into the targets")
    sat.add_argument("--tenants", type=int, default=4,
                     help="load-generator tenants (one stream each)")
    sat.add_argument("--duration", type=float, default=2e-3,
                     help="virtual seconds of measured window per cell")
    sat.add_argument("--steering", default="pin",
                     choices=("pin", "round-robin", "least-loaded",
                              "flow-hash"),
                     help="target/initiator IRQ+completion steering policy")
    sat.add_argument("--seed", type=int, default=42)
    sat.add_argument("--engine", default="heap",
                     choices=("heap", "calendar"),
                     help="simulation engine per cell: the classic event "
                     "heap, or the calendar-queue batched dispatcher "
                     "(bit-identical results, separately cached)")
    sat.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the load-grid cells")
    sat_cache = sat.add_mutually_exclusive_group()
    sat_cache.add_argument("--cache", dest="cache", action="store_true",
                           default=True,
                           help="memoize results on disk (default)")
    sat_cache.add_argument("--no-cache", dest="cache", action="store_false",
                           help="always recompute; touch no cache files")
    sat.add_argument("--cache-dir", default=None,
                     help="cache root (default: results/.cache, or "
                     "$REPRO_CACHE_DIR)")
    sat.add_argument("--format", choices=("table", "markdown"),
                     default="table", help="output format")
    ovl = sub.add_parser(
        "overload",
        help="robustness-plane overload sweep (metastable scenario) or "
        "the gray fail-slow target scenario",
    )
    ovl.add_argument("--scenario", default="metastable",
                     choices=("metastable", "gray"),
                     help="metastable: offered-load grid past the knee, "
                     "protection off vs full; gray: degrade one target "
                     "mid-run and measure isolation")
    ovl.add_argument("--systems", default="rio",
                     help="comma-separated systems (metastable scenario)")
    ovl.add_argument("--protection", default=None,
                     help="comma-separated protection profiles "
                     "(default: off,full)")
    ovl.add_argument("--loads", default=None,
                     help="comma-separated offered loads in kIOPS "
                     "(default: 400,1100,2200)")
    ovl.add_argument("--layout", default=None,
                     help="hardware layout (default: optane for "
                     "metastable, 2optane-2targets for gray)")
    ovl.add_argument("--initiators", type=int, default=2,
                     help="initiator hosts (metastable scenario)")
    ovl.add_argument("--tenants", type=int, default=4,
                     help="load-generator tenants (one stream each)")
    ovl.add_argument("--duration", type=float, default=None,
                     help="virtual seconds of measured window per cell")
    ovl.add_argument("--degrade-factor", type=float, default=8.0,
                     help="gray scenario: mid-run service inflation of "
                     "target 0")
    ovl.add_argument("--seed", type=int, default=42)
    ovl.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the grid cells")
    ovl_cache = ovl.add_mutually_exclusive_group()
    ovl_cache.add_argument("--cache", dest="cache", action="store_true",
                           default=True,
                           help="memoize results on disk (default)")
    ovl_cache.add_argument("--no-cache", dest="cache", action="store_false",
                           help="always recompute; touch no cache files")
    ovl.add_argument("--cache-dir", default=None,
                     help="cache root (default: results/.cache, or "
                     "$REPRO_CACHE_DIR)")
    ovl.add_argument("--format", choices=("table", "markdown"),
                     default="table", help="output format")
    tnt = sub.add_parser(
        "tenants",
        help="multi-tenant traffic plane: per-class tail-latency knee "
        "curves over a Zipf/diurnal tenant mix with optional QoS "
        "admission, or the seeded noisy-neighbor storm (--storm)",
    )
    tnt.add_argument("--storm", action="store_true",
                     help="run the noisy-neighbor acceptance storm (QoS "
                     "on vs off per system: the aggressor is paced/shed "
                     "and the gold SLO must hold) instead of the curves")
    tnt.add_argument("--systems", default=None,
                     help="comma-separated systems (default: "
                     "linux,horae,rio)")
    tnt.add_argument("--loads", default=None,
                     help="comma-separated offered loads in kIOPS, "
                     "ascending (default: 25,50,100,200,400,800)")
    tnt.add_argument("--layout", default="optane",
                     help="hardware layout (see harness LAYOUTS)")
    tnt.add_argument("--initiators", type=int, default=2,
                     help="initiator hosts fanning into the targets")
    tnt.add_argument("--streams", type=int, default=4,
                     help="generator lanes (ordered streams)")
    tnt.add_argument("--tenants", dest="num_tenants", type=int, default=64,
                     help="tenant population mapped onto the streams")
    tnt.add_argument("--zipf-alpha", type=float, default=1.1,
                     help="Zipf skew of tenant selection (0: uniform)")
    tnt.add_argument("--diurnal-amplitude", type=float, default=0.0,
                     help="diurnal rate modulation depth in [0, 1)")
    tnt.add_argument("--diurnal-period", type=float, default=1e-3,
                     help="diurnal period in virtual seconds")
    tnt.add_argument("--qos", action="store_true",
                     help="arm per-tenant token buckets + weighted-fair "
                     "admission on every target")
    tnt.add_argument("--quantum", type=float, default=8.0,
                     help="weighted-fair deficit quantum (virtual work)")
    tnt.add_argument("--duration", type=float, default=None,
                     help="virtual seconds of measured window per cell "
                     "(default: 2e-3 curves, 3e-3 storm)")
    tnt.add_argument("--steering", default="pin",
                     choices=("pin", "round-robin", "least-loaded",
                              "flow-hash"),
                     help="target/initiator IRQ+completion steering policy")
    tnt.add_argument("--seed", type=int, default=42)
    tnt.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the grid cells")
    tnt_cache = tnt.add_mutually_exclusive_group()
    tnt_cache.add_argument("--cache", dest="cache", action="store_true",
                           default=True,
                           help="memoize results on disk (default)")
    tnt_cache.add_argument("--no-cache", dest="cache", action="store_false",
                           help="always recompute; touch no cache files")
    tnt.add_argument("--cache-dir", default=None,
                     help="cache root (default: results/.cache, or "
                     "$REPRO_CACHE_DIR)")
    tnt.add_argument("--format", choices=("table", "markdown"),
                     default="table", help="output format")
    qual = sub.add_parser(
        "qualify",
        help="SSD qualification matrix: block-size x queue-depth x pattern "
        "x system cells with per-cell pass/fail floors, sustained-write "
        "GC passes and ordering-oracle cells",
    )
    qual.add_argument("--profile", default="smoke",
                      choices=("smoke", "full"),
                      help="matrix shape: smoke (CI-sized) or full "
                      "(paper-scale, 4K-1MB x QD 1-256 x all systems)")
    qual.add_argument("--systems", default=None,
                      help="comma-separated systems (default: the "
                      "profile's list)")
    qual.add_argument("--layout", default=None,
                      help="hardware layout (default: flash-qual)")
    qual.add_argument("--seed", type=int, default=7)
    qual.add_argument("--jobs", type=int, default=1,
                      help="worker processes for the matrix cells")
    qual_cache = qual.add_mutually_exclusive_group()
    qual_cache.add_argument("--cache", dest="cache", action="store_true",
                            default=True,
                            help="memoize results on disk (default)")
    qual_cache.add_argument("--no-cache", dest="cache",
                            action="store_false",
                            help="always recompute; touch no cache files")
    qual.add_argument("--cache-dir", default=None,
                      help="cache root (default: results/.cache, or "
                      "$REPRO_CACHE_DIR)")
    qual.add_argument("--out-dir", default=None, metavar="DIR",
                      help="write qualify.json + qualify.md under DIR")
    qual.add_argument("--bench-out", default=None, metavar="FILE",
                      help="write the perf-trajectory artifact "
                      "(BENCH_qualify.json shape) to FILE")
    qual.add_argument("--floor", action="append", default=[],
                      metavar="CELL:NAME=VALUE",
                      help="override one floor of one cell (repeatable), "
                      "e.g. 'matrix/rio/4K/qd1/seq:min_kiops=100'")
    qual.add_argument("--format", choices=("table", "markdown"),
                      default="table", help="output format")
    trace = sub.add_parser(
        "trace", help="export request-lifecycle spans as a Chrome trace"
    )
    trace.add_argument("--fs", default="riofs",
                       choices=("ext4", "horaefs", "riofs"),
                       help="file system to run the fsync probe on")
    trace.add_argument("--layout", default="optane",
                       help="hardware layout (see harness LAYOUTS)")
    trace.add_argument("--iterations", type=int, default=20,
                       help="append+fsync iterations to trace")
    trace.add_argument("--out", default="repro.trace.json",
                       help="output path (chrome://tracing JSON)")
    trace.add_argument("--validate", action="store_true",
                       help="validate the export against the trace_event "
                       "schema before writing")
    bench = sub.add_parser(
        "bench-engine",
        help="measure the simulation engines (serial heap, calendar, "
        "sharded parallel) and emit the BENCH_engine.json trajectory "
        "artifact",
    )
    bench.add_argument("--events", type=int, default=100000,
                       help="timeout events per measurement")
    bench.add_argument("--procs", type=int, default=50,
                       help="in-phase processes (same-timestamp batch size)")
    bench.add_argument("--jobs", type=int, default=0,
                       help="parallel-engine worker processes "
                       "(default: one per host core)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed rounds per engine (best is recorded)")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="write the JSON artifact here "
                       "(default: results/BENCH_engine.json)")
    metrics = sub.add_parser(
        "metrics", help="export the metrics registry of an instrumented run"
    )
    metrics.add_argument("--fs", default="riofs",
                         choices=("ext4", "horaefs", "riofs"))
    metrics.add_argument("--layout", default="optane")
    metrics.add_argument("--iterations", type=int, default=20)
    metrics.add_argument("--format", choices=("csv", "json"), default="csv")
    metrics.add_argument("--out", default=None,
                         help="output path (default: stdout)")
    args = parser.parse_args(argv)

    if args.command == "spec":
        return _cmd_spec(args)

    if args.command == "run" and _is_spec_path(args.figure):
        return _cmd_run_spec(args)

    if args.command == "check":
        from repro.check import (
            build_matrix_specs,
            replay_reproducer,
            run_check_matrix,
        )
        from repro.harness.cache import ResultCache
        from repro.harness.sweep import SweepRunner

        if args.replay:
            report = replay_reproducer(args.replay)
            print(f"replayed {args.replay}: spec {report.spec.to_json()}")
            print(f"{report.crash_points} crash point(s), "
                  f"{len(report.failures)} failing")
            for failure in report.failures:
                for violation in failure.violations:
                    print(f"  t={failure.crash_time:.6g}: {violation}")
            return 0 if report.ok else 1

        systems = args.systems.split(",") if args.systems else None
        layouts = args.layouts.split(",") if args.layouts else None
        seeds = [int(s) for s in args.seeds.split(",") if s != ""]
        specs = build_matrix_specs(
            systems=systems,
            layouts=layouts,
            seeds=seeds,
            streams=args.streams,
            groups_per_stream=args.groups,
            writes_per_group=args.writes,
            depth=args.depth,
            flush_every=args.flush_every,
            max_points=args.max_points,
        )
        cache = ResultCache(root=args.cache_dir) if args.cache else None
        runner = SweepRunner(jobs=args.jobs, cache=cache)
        result = run_check_matrix(
            specs, runner=runner, shrink=args.shrink,
            reproducer_dir=args.reproducers,
        )
        print(result.render())
        for path in result.dumped:
            print(f"reproducer -> {path}")
        print(f"[check: {runner.stats.summary()}]")
        return 0 if result.ok else 1

    if args.command == "saturate":
        from repro.harness import sweep as sweep_mod
        from repro.harness.cache import ResultCache
        from repro.harness.saturate import (
            DEFAULT_LOADS_KIOPS,
            SATURATE_SYSTEMS,
            saturation_curves,
        )

        systems = (args.systems.split(",") if args.systems
                   else list(SATURATE_SYSTEMS))
        loads = ([float(v) for v in args.loads.split(",") if v != ""]
                 if args.loads else list(DEFAULT_LOADS_KIOPS))
        cache = ResultCache(root=args.cache_dir) if args.cache else None
        runner = sweep_mod.configure(jobs=args.jobs, cache=cache)
        started = time.time()
        result = saturation_curves(
            systems=systems, loads_kiops=loads, layout=args.layout,
            initiators=args.initiators, tenants=args.tenants,
            duration=args.duration, steering=args.steering, seed=args.seed,
            engine=args.engine,
        )
        if args.format == "markdown":
            print(result.render_markdown())
        else:
            print(result.render())
        line = (f"[saturate: {runner.stats.summary()}; "
                f"{time.time() - started:.1f}s wall")
        if cache is not None:
            line += (f"; cache {cache.root}/{cache.version}: "
                     f"{cache.hits} hit(s)]")
        else:
            line += "; cache disabled]"
        print(line)
        return 0

    if args.command == "overload":
        from repro.harness import sweep as sweep_mod
        from repro.harness.cache import ResultCache
        from repro.harness.overload import (
            DEFAULT_OVERLOAD_KIOPS,
            PROTECTIONS,
            gray_result,
            overload_curves,
        )

        cache = ResultCache(root=args.cache_dir) if args.cache else None
        runner = sweep_mod.configure(jobs=args.jobs, cache=cache)
        started = time.time()
        if args.scenario == "gray":
            kwargs = {"seed": args.seed,
                      "degrade_factor": args.degrade_factor}
            if args.duration is not None:
                kwargs["duration"] = args.duration
            result = gray_result(**kwargs)
        else:
            systems = args.systems.split(",")
            protections = (args.protection.split(",") if args.protection
                           else list(PROTECTIONS))
            loads = ([float(v) for v in args.loads.split(",") if v != ""]
                     if args.loads else list(DEFAULT_OVERLOAD_KIOPS))
            result = overload_curves(
                systems=systems, protections=protections,
                loads_kiops=loads, layout=args.layout or "optane",
                initiators=args.initiators, tenants=args.tenants,
                duration=args.duration if args.duration is not None
                else 2e-3,
                seed=args.seed,
            )
        if args.format == "markdown":
            print(result.render_markdown())
        else:
            print(result.render())
        line = (f"[overload: {runner.stats.summary()}; "
                f"{time.time() - started:.1f}s wall")
        if cache is not None:
            line += (f"; cache {cache.root}/{cache.version}: "
                     f"{cache.hits} hit(s)]")
        else:
            line += "; cache disabled]"
        print(line)
        return 0

    if args.command == "tenants":
        from repro.harness import sweep as sweep_mod
        from repro.harness.cache import ResultCache
        from repro.harness.tenants import (
            DEFAULT_TENANT_LOADS_KIOPS,
            TENANT_SYSTEMS,
            noisy_neighbor_result,
            tenant_curves,
        )

        systems = (args.systems.split(",") if args.systems
                   else list(TENANT_SYSTEMS))
        cache = ResultCache(root=args.cache_dir) if args.cache else None
        runner = sweep_mod.configure(jobs=args.jobs, cache=cache)
        started = time.time()
        ok = True
        if args.storm:
            # Trim defaults so storm cells share digests with the spec
            # compiler and with kwargs callers that leave these unset.
            kwargs: Dict[str, object] = {}
            if args.quantum != 8.0:
                kwargs["quantum"] = args.quantum
            if args.duration is not None:
                kwargs["duration"] = args.duration
            if args.seed != 42:
                kwargs["seed"] = args.seed
            result = noisy_neighbor_result(systems=systems, **kwargs)
            ok = all(
                (row["within_slo"] == "yes") == (row["qos"] == "on")
                for row in result.rows
            )
        else:
            loads = ([float(v) for v in args.loads.split(",") if v != ""]
                     if args.loads else list(DEFAULT_TENANT_LOADS_KIOPS))
            result = tenant_curves(
                systems=systems, loads_kiops=loads, layout=args.layout,
                initiators=args.initiators, streams=args.streams,
                num_tenants=args.num_tenants,
                zipf_alpha=args.zipf_alpha or None,
                diurnal_amplitude=args.diurnal_amplitude,
                diurnal_period=args.diurnal_period,
                qos=args.qos, quantum=args.quantum,
                duration=(args.duration if args.duration is not None
                          else 2e-3),
                steering=args.steering, seed=args.seed,
            )
        if args.format == "markdown":
            print(result.render_markdown())
        else:
            print(result.render())
        line = (f"[tenants: {runner.stats.summary()}; "
                f"{time.time() - started:.1f}s wall")
        if cache is not None:
            line += (f"; cache {cache.root}/{cache.version}: "
                     f"{cache.hits} hit(s)]")
        else:
            line += "; cache disabled]"
        print(line)
        return 0 if ok else 1

    if args.command == "qualify":
        from repro.harness import sweep as sweep_mod
        from repro.harness.cache import ResultCache
        from repro.harness.qualify import (
            DEFAULT_LAYOUT,
            bench_artifact,
            qualify_report,
            write_report,
        )

        floors_override: Dict[str, Dict[str, float]] = {}
        for item in args.floor:
            try:
                cell_key, assignment = item.rsplit(":", 1)
                floor_name, floor_value = assignment.split("=", 1)
                floors_override.setdefault(cell_key, {})[floor_name] = (
                    float(floor_value)
                )
            except ValueError:
                print(f"bad --floor {item!r}; expected CELL:NAME=VALUE",
                      file=sys.stderr)
                return 2
        cache = ResultCache(root=args.cache_dir) if args.cache else None
        runner = sweep_mod.configure(jobs=args.jobs, cache=cache)
        started = time.time()
        kwargs = {"seed": args.seed,
                  "floors_override": floors_override or None}
        if args.systems:
            kwargs["systems"] = args.systems.split(",")
        kwargs["layout"] = args.layout or DEFAULT_LAYOUT
        report = qualify_report(profile=args.profile, **kwargs)
        if args.format == "markdown":
            print(report.render_markdown())
        else:
            print(report.render())
        if args.out_dir:
            for path in write_report(report, args.out_dir):
                print(f"report -> {path}")
        if args.bench_out:
            import json as json_mod

            with open(args.bench_out, "w") as fh:
                json_mod.dump(bench_artifact(report), fh, indent=2,
                              sort_keys=True)
                fh.write("\n")
            print(f"bench artifact -> {args.bench_out}")
        line = (f"[qualify: {runner.stats.summary()}; "
                f"{time.time() - started:.1f}s wall")
        if cache is not None:
            line += (f"; cache {cache.root}/{cache.version}: "
                     f"{cache.hits} hit(s)]")
        else:
            line += "; cache disabled]"
        print(line)
        return 0 if report.ok else 1

    if args.command == "trace":
        from repro.harness.obs import traced_fsync_run
        from repro.sim.obs.export import (
            validate_chrome_trace,
            write_chrome_trace,
        )

        probe = traced_fsync_run(args.fs, layout=args.layout,
                                 iterations=args.iterations,
                                 with_tracer=True)
        doc = write_chrome_trace(probe.obs, args.out,
                                 tracer=probe.env.tracer)
        if args.validate:
            validate_chrome_trace(doc)
            print("trace_event schema: OK")
        print(f"{len(probe.obs.spans)} spans "
              f"({len(doc['traceEvents'])} trace events) -> {args.out}")
        return 0

    if args.command == "metrics":
        from repro.harness.obs import traced_fsync_run
        from repro.sim.obs.export import metrics_csv, metrics_json

        probe = traced_fsync_run(args.fs, layout=args.layout,
                                 iterations=args.iterations)
        render = metrics_csv if args.format == "csv" else metrics_json
        text = render(probe.obs.metrics)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"metrics -> {args.out}")
        else:
            print(text, end="")
        return 0

    if args.command == "bench-engine":
        import json

        from repro.harness.bench_engine import bench_engines

        report = bench_engines(
            events=args.events, procs=args.procs,
            jobs=args.jobs or None, repeats=args.repeats,
        )
        out = args.out or os.path.join("results", "BENCH_engine.json")
        os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        for point in report["engines"]:
            print(f"{point['engine']:>16}: "
                  f"{point['events_per_sec']:>12,.0f} events/s "
                  f"({point['speedup_vs_serial']:.2f}x serial)")
        print(f"[bench-engine: host cores={report['host']['cpus']}; "
              f"artifact -> {out}]")
        return 0

    if args.command == "list":
        width = max(len(name) for name in FIGURES)
        for name, (_fn, description, _d) in FIGURES.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    if args.command == "claims":
        from repro.harness.claims import evaluate_claims
        from repro.harness.cache import ResultCache

        cache = (ResultCache(root=args.cache_dir)
                 if getattr(args, "cache", False) else None)
        report = evaluate_claims(duration=args.duration,
                                 jobs=args.jobs or None, cache=cache)
        print(report.render())
        return 0 if report.passed == report.total else 1

    if args.command == "sweep":
        from repro.harness import sweep as sweep_mod
        from repro.harness.cache import ResultCache

        cache = ResultCache(root=args.cache_dir) if args.cache else None
        if cache is not None and args.clear_cache:
            print(f"cleared {cache.clear()} cached result(s) "
                  f"[{cache.root}/{cache.version}]")
        runner = sweep_mod.configure(jobs=args.jobs, cache=cache)
        names = list(FIGURES) if args.figure == "all" else [args.figure]
        for name in names:
            if name not in FIGURES:
                print(f"unknown figure {name!r}; try 'python -m repro list'",
                      file=sys.stderr)
                return 2
        for name in names:
            _run_one(name, args.duration, args.format)
        line = f"[sweep: {runner.stats.summary()}"
        if cache is not None:
            line += (f"; cache {cache.root}/{cache.version}: "
                     f"{cache.hits} hit(s), {cache.corrupt_dropped} "
                     f"corrupt dropped]")
        else:
            line += "; cache disabled]"
        print(line)
        return 0

    if args.figure == "all":
        for name in FIGURES:
            _run_one(name, args.duration, args.format)
        return 0
    if args.figure not in FIGURES:
        print(f"unknown figure {args.figure!r}; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    _run_one(args.figure, args.duration, args.format)
    return 0
