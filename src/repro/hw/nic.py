"""RDMA NIC model: a full-duplex bandwidth-limited port.

The testbed NIC is a 200 Gbps Mellanox ConnectX-6 (§6.1) — 25 GB/s each
way, far above any single SSD's bandwidth, which is why the paper can say
"the concurrency of NICs is usually larger than SSDs installed on the same
server" (§4.3.1).  Queue pairs and delivery ordering live in
:mod:`repro.net.fabric`; this class only owns the shared TX/RX pipes that
serialize wire occupancy per direction.
"""

from __future__ import annotations

from repro.sim.engine import Environment
from repro.sim.resources import Resource

__all__ = ["Nic", "NIC_BANDWIDTH"]

#: 200 Gbps in bytes/second.
NIC_BANDWIDTH = 25e9


class Nic:
    """One RDMA NIC port with independent TX and RX bandwidth pipes."""

    def __init__(
        self,
        env: Environment,
        bandwidth: float = NIC_BANDWIDTH,
        name: str = "nic",
    ):
        if bandwidth <= 0:
            raise ValueError("NIC bandwidth must be positive")
        self.env = env
        self.bandwidth = bandwidth
        self.name = name
        #: Gray-failure service inflation (>= 1): multiplies wire time, as
        #: a NIC negotiating down / retraining its link would.  Set via
        #: :meth:`repro.nvmeof.target.TargetServer.degrade`.
        self.inflation = 1.0
        self._tx = Resource(env, capacity=1)
        self._rx = Resource(env, capacity=1)
        self.bytes_sent = 0
        self.bytes_received = 0

    def occupy_tx(self, nbytes: int):
        """Generator: hold the TX pipe for the wire time of ``nbytes``."""
        yield self._tx.request()
        try:
            yield self.env.timeout(nbytes / self.bandwidth * self.inflation)
            self.bytes_sent += nbytes
        finally:
            self._tx.release()

    def occupy_rx(self, nbytes: int):
        """Generator: hold the RX pipe for the wire time of ``nbytes``."""
        yield self._rx.request()
        try:
            yield self.env.timeout(nbytes / self.bandwidth * self.inflation)
            self.bytes_received += nbytes
        finally:
            self._rx.release()

    def __repr__(self) -> str:
        return f"<Nic {self.name} {self.bandwidth / 1e9:.0f} GB/s>"
