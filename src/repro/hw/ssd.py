"""NVMe SSD models: multi-queue, write cache, FLUSH, PLP, crash semantics.

Three device profiles reproduce the paper's testbed (§6.1):

* :data:`FLASH_PM981` — Samsung PM981.  A client flash SSD with a *volatile*
  write cache and **no** power-loss protection.  Writes complete once data
  lands in the cache; persistence happens as the cache drains to flash in
  the background, in no particular order ("the NVMe SSD may freely re-order
  requests", §2.2).  A FLUSH command is a device-wide synchronous drain of
  everything admitted before it, plus FTL-mapping persistence — the
  "prohibitive" barrier of Lesson 1 (§3.2).

* :data:`OPTANE_905P` / :data:`OPTANE_P4800X` — Intel Optane SSDs with
  power-loss protection: data is durable as soon as the completion is
  reported, and FLUSH is (nearly) free (Lesson 2).

Performance is governed by three mechanisms, matching how real devices
behave: a per-command concurrency limit (``chips`` — channel/CMB
parallelism, capping IOPS), a serialized media pipe (capping bandwidth) and
a fixed per-command latency.

Crash semantics: :meth:`NvmeSsd.crash` discards the volatile cache and all
in-flight commands while preserving durable media, which is exactly the
post-crash state space of §4.8.

Device realism (qualification states): profiles may additionally declare a
logical ``capacity_bytes`` with an over-provisioned spare area.  Once the
device fills past ``gc_threshold`` of its physical space, steady-state
garbage collection activates: every host batch drained to media drags
relocated valid data along, inflating media service time by the greedy-GC
write-amplification factor ``WA ~ 1/(1-u)`` (capped at ``gc_wa_cap``).
Wear accounting (host + GC bytes programmed) is monotone, survives power
cycles, and is exported — together with cache pressure, stall counts and
GC state — as a SMART-like health snapshot (:meth:`NvmeSsd.smart`) and as
``MetricsRegistry`` gauges.  All of it defaults *off* (``capacity_bytes=0``
disables utilization/GC/wear) so the first-order profiles behave exactly
as before.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.sim.rng import DeterministicRNG

__all__ = [
    "SsdProfile",
    "DiskIO",
    "NvmeSsd",
    "CrashedError",
    "FLASH_PM981",
    "FLASH_PM981_QUAL",
    "OPTANE_905P",
    "OPTANE_P4800X",
    "OPTANE_P5800X",
    "BLOCK_SIZE",
]

#: Logical block size used throughout the reproduction (bytes).
BLOCK_SIZE = 4096


@dataclass(frozen=True)
class SsdProfile:
    """Latency/bandwidth/durability parameters of one SSD model."""

    name: str
    #: Power-loss protection: data durable at completion, FLUSH free.
    plp: bool
    #: Fixed per-command service latency (seconds).
    write_latency: float
    read_latency: float
    #: Host interface (PCIe DMA) bandwidth in bytes/second.
    interface_bandwidth: float
    #: Aggregate media program bandwidth in bytes/second (drain rate for
    #: cached flash, direct write rate for Optane).
    media_bandwidth: float
    #: Concurrent command slots (channel parallelism).
    chips: int
    #: Volatile write cache capacity in bytes (0 for PLP devices).
    cache_capacity: int
    #: Fixed FLUSH overhead (FTL mapping persistence etc.), seconds.
    flush_base_latency: float
    #: Maximum transfer size of a single command (bytes) — requests larger
    #: than this must be split by the block layer (§4.5).
    max_transfer: int
    # -- device-realism knobs (all inert by default) -------------------
    #: Logical namespace capacity in bytes.  0 (the default) disables
    #: utilization, GC and wear-percentage accounting entirely.
    capacity_bytes: int = 0
    #: Physical spare area beyond the logical capacity (fraction).
    overprovision: float = 0.07
    #: Physical utilization at which steady-state GC activates.
    gc_threshold: float = 0.80
    #: Cap on the GC write-amplification factor.
    gc_wa_cap: float = 4.0
    #: Rated endurance in full-physical-device program/erase-equivalent
    #: passes (0 = unrated: wear bytes still accumulate, wear_pct is 0).
    endurance_cycles: int = 0

    def __post_init__(self):
        if self.plp and self.cache_capacity:
            raise ValueError("PLP profiles model no volatile cache")
        if self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        if self.overprovision < 0:
            raise ValueError("overprovision must be >= 0")
        if not 0.0 < self.gc_threshold < 1.0:
            raise ValueError("gc_threshold must be in (0, 1)")
        if self.gc_wa_cap < 1.0:
            raise ValueError("gc_wa_cap must be >= 1")
        if self.endurance_cycles < 0:
            raise ValueError("endurance_cycles must be >= 0")


FLASH_PM981 = SsdProfile(
    name="PM981-flash",
    plp=False,
    write_latency=15e-6,
    read_latency=80e-6,
    interface_bandwidth=3.2e9,
    media_bandwidth=2.0e9,
    chips=8,
    cache_capacity=64 * 1024 * 1024,
    flush_base_latency=350e-6,
    max_transfer=512 * 1024,
    capacity_bytes=256 * 1024 ** 3,
    endurance_cycles=600,
)

#: Qualification variant of the PM981: identical service latencies and
#: bandwidths, but a deliberately small namespace and write cache so short
#: deterministic runs reach the states a 256 GB drive only shows after
#: hours of preconditioning — cache eviction pressure, cache-full stalls
#: and steady-state GC (the regime `repro qualify` exercises).
FLASH_PM981_QUAL = SsdProfile(
    name="PM981-qual",
    plp=False,
    write_latency=15e-6,
    read_latency=80e-6,
    interface_bandwidth=3.2e9,
    media_bandwidth=2.0e9,
    chips=8,
    cache_capacity=2 * 1024 * 1024,
    flush_base_latency=350e-6,
    max_transfer=512 * 1024,
    capacity_bytes=64 * 1024 * 1024,
    overprovision=0.07,
    gc_threshold=0.80,
    gc_wa_cap=4.0,
    endurance_cycles=600,
)

OPTANE_905P = SsdProfile(
    name="905P-optane",
    plp=True,
    write_latency=10e-6,
    read_latency=10e-6,
    interface_bandwidth=2.6e9,
    media_bandwidth=2.2e9,
    chips=7,
    cache_capacity=0,
    flush_base_latency=1e-6,
    max_transfer=128 * 1024,
)

#: A PCIe 4.0-class drive (Intel P5800X), used by the sensitivity study:
#: the paper predicts that "for storage arrays and newer and faster SSDs
#: … [synchronous ordering] needs more computation resources" (§3.1).
OPTANE_P5800X = SsdProfile(
    name="P5800X-optane",
    plp=True,
    write_latency=5e-6,
    read_latency=5e-6,
    interface_bandwidth=7.0e9,
    media_bandwidth=6.2e9,
    chips=10,
    cache_capacity=0,
    flush_base_latency=1e-6,
    max_transfer=128 * 1024,
)

OPTANE_P4800X = SsdProfile(
    name="P4800X-optane",
    plp=True,
    write_latency=10e-6,
    read_latency=10e-6,
    interface_bandwidth=2.4e9,
    media_bandwidth=2.0e9,
    chips=7,
    cache_capacity=0,
    flush_base_latency=1e-6,
    max_transfer=128 * 1024,
)


@dataclass
class DiskIO:
    """One command at the SSD interface.

    ``payload`` optionally carries one opaque object per block so file-system
    and recovery tests can verify *content*, not just completion.

    ``barrier`` marks a barrier write (the BarrierFS / barrier-enabled-SSD
    interface of §2.2): barrier writes persist in submission order relative
    to each other, without a FLUSH — at the cost of serializing them
    through the device.
    """

    op: str  # "write" | "read" | "flush"
    lba: int = 0
    nblocks: int = 0
    payload: Optional[List[Any]] = None
    fua: bool = False
    barrier: bool = False
    #: Parent span (the target's ``target.admit``) for the ``ssd.service``
    #: span; None unless an Observability is attached.
    obs_parent: Any = None

    def __post_init__(self):
        if self.op not in ("write", "read", "flush"):
            raise ValueError(f"unknown SSD op: {self.op}")
        if self.op != "flush" and self.nblocks <= 0:
            raise ValueError("read/write needs nblocks >= 1")
        if self.payload is not None and len(self.payload) != self.nblocks:
            raise ValueError("payload length must equal nblocks")

    @property
    def nbytes(self) -> int:
        return self.nblocks * BLOCK_SIZE


@dataclass
class _CacheEntry:
    seq: int
    lba: int
    payload: Any
    version: int
    barrier: bool = False


class CrashedError(Exception):
    """Raised for commands submitted to (or in flight on) a crashed SSD."""


class NvmeSsd:
    """One simulated NVMe SSD (a single namespace)."""

    def __init__(
        self,
        env: Environment,
        profile: SsdProfile,
        rng: Optional[DeterministicRNG] = None,
        name: str = "ssd",
    ):
        self.env = env
        self.profile = profile
        self.name = name
        self.rng = rng or DeterministicRNG(7).fork(name)
        # Durable state: survives crashes.
        self._media: Dict[int, Any] = {}
        self._media_version: Dict[int, int] = {}
        self._version_counter = 0
        self.crashed = False
        self._epoch = 0
        self.commands_served = 0
        self.flushes_served = 0
        # Wear/endurance accounting.  Flash wear is physical: it survives
        # power cycles (not reset by _init_volatile) and is monotone by
        # construction — the property suite checks both.
        self.media_host_bytes = 0    # host data programmed to media
        self.media_gc_bytes = 0      # extra GC relocation traffic
        self.cache_evictions = 0     # cache entries applied to media
        self.cache_stalls = 0        # writes that waited for cache space
        self.cache_stall_time = 0.0  # total time writes spent stalled
        #: Gray-failure (fail-slow) multiplier on every service latency
        #: (>= 1, default 1 = healthy).  Mutable because the profile is
        #: frozen; set via :meth:`repro.nvmeof.target.TargetServer.degrade`.
        self.service_inflation = 1.0
        #: Optional hook fired after every durable-media mutation (PLP
        #: persist or cache-drain batch apply).  The crash-consistency
        #: checker uses it to snapshot state at persistence events; None
        #: (the default) keeps the hot paths a single attribute check.
        self.on_persist = None
        obs = env.obs
        if obs is not None:
            m = obs.metrics
            m.register_gauge(f"ssd.{name}.commands_served",
                             lambda: self.commands_served)
            m.register_gauge(f"ssd.{name}.flushes_served",
                             lambda: self.flushes_served)
            m.register_gauge(f"ssd.{name}.dirty_bytes",
                             lambda: self._cache_bytes)
            # SMART-like health surface (device realism).
            m.register_gauge(f"ssd.{name}.cache_pressure",
                             lambda: self.cache_pressure)
            m.register_gauge(f"ssd.{name}.cache_stalls",
                             lambda: self.cache_stalls)
            m.register_gauge(f"ssd.{name}.utilization",
                             lambda: self.utilization())
            m.register_gauge(f"ssd.{name}.write_amp",
                             lambda: self.write_amplification())
            m.register_gauge(f"ssd.{name}.gc_active",
                             lambda: 1.0 if self.gc_active else 0.0)
            m.register_gauge(f"ssd.{name}.wear_pct",
                             lambda: self.wear_pct())
        self._init_volatile()

    # ------------------------------------------------------------------
    # Volatile machinery (rebuilt on every power cycle)
    # ------------------------------------------------------------------

    def _init_volatile(self) -> None:
        env = self.env
        self._slots = Resource(env, capacity=self.profile.chips)
        self._interface = Resource(env, capacity=1)
        self._media_pipe = Resource(env, capacity=1)
        #: Barrier writes serialize through one lane (order = persistence
        #: order); this is the §2.2 cost of the barrier interface.
        self._barrier_lane = Resource(env, capacity=1)
        self._barrier_fifo: deque = deque()
        #: Barrier-order tickets: reserved synchronously at command
        #: admission (see reserve_barrier_ticket) or at submit(), so the
        #: device's contract — barrier writes persist in *submission*
        #: order — survives the concurrent service stages (RDMA data
        #: fetch, latency jitter), which would otherwise let a small
        #: barrier write overtake a large earlier one.
        self._barrier_next_ticket = 0
        self._barrier_turn = 0
        self._barrier_turn_waiters: Dict[int, Event] = {}
        self._barrier_abandoned: set = set()
        self._cache: Dict[int, _CacheEntry] = {}
        self._drain_queue: deque = deque()
        self._cache_bytes = 0
        self._cache_seq = 0
        self._drained_below = 0  # all cache seqs < this are durable
        self._pending_drain_seqs: Set[int] = set()
        self._space_waiters: List[Tuple[int, Event]] = []
        self._drain_waiters: List[Tuple[int, Event]] = []
        self._drain_kick: Optional[Event] = None
        if not self.profile.plp and self.profile.cache_capacity:
            env.process(self._drain_loop(self._epoch))

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def submit(self, io: DiskIO) -> Event:
        """Submit a command; returns an event firing at completion.

        The completion event's value is the :class:`DiskIO` itself (reads
        get their ``payload`` filled in).  Commands in flight during a crash
        never complete, as on real hardware.
        """
        done = Event(self.env)
        if self.crashed:
            done.fail(CrashedError(f"{self.name} is crashed"))
            return done
        if io.op == "write" and io.barrier:
            # Claim the barrier-order ticket unless the submitter reserved
            # one earlier (a target reserves at command admission, before
            # the size-dependent data fetch can scramble arrival order).
            if getattr(io, "_barrier_ticket", None) is None:
                io._barrier_ticket = self.reserve_barrier_ticket()  # type: ignore[attr-defined]
        self.env.process(self._serve(io, done, self._epoch))
        return done

    def reserve_barrier_ticket(self) -> int:
        """Claim the next slot in the device's barrier persist order.

        Barrier writes persist strictly in ticket order; callers that can
        observe the intended submission order earlier than :meth:`submit`
        (e.g. an NVMe-oF target whose concurrent command handling fetches
        write data with size-dependent RDMA READs) reserve here and attach
        the ticket to the :class:`DiskIO` as ``_barrier_ticket``.
        """
        ticket = self._barrier_next_ticket
        self._barrier_next_ticket += 1
        return ticket

    def crash(self) -> None:
        """Power failure: lose the volatile cache and in-flight commands."""
        self.crashed = True
        self._epoch += 1

    def restart(self) -> None:
        """Power the device back on; durable media is preserved."""
        if not self.crashed:
            raise RuntimeError(f"{self.name} is not crashed")
        self.crashed = False
        self._init_volatile()

    # -- ground-truth inspection (used by recovery logic and tests) --------

    def durable_payload(self, lba: int) -> Any:
        """Content of ``lba`` on persistent media (None if never persisted)."""
        return self._media.get(lba)

    def durable_version(self, lba: int) -> int:
        """Monotonic version of the durable content at ``lba`` (0 = never)."""
        return self._media_version.get(lba, 0)

    def is_durable(self, lba: int, min_version: int = 1) -> bool:
        return self._media_version.get(lba, 0) >= min_version

    def current_payload(self, lba: int) -> Any:
        """Content a read would return right now (cache overrides media)."""
        entry = self._cache.get(lba)
        if entry is not None:
            return entry.payload
        return self._media.get(lba)

    def discard(self, lba: int, nblocks: int = 1) -> None:
        """Erase blocks (used by recovery roll-back; instantaneous here —
        the I/O cost is charged by the recovery harness)."""
        for block in range(lba, lba + nblocks):
            self._media.pop(block, None)
            self._media_version.pop(block, None)
            self._cache.pop(block, None)

    @property
    def dirty_bytes(self) -> int:
        return self._cache_bytes

    # -- device-realism surface: utilization, GC, wear, SMART --------------

    @property
    def physical_bytes(self) -> int:
        """Physical media size: logical capacity plus the spare area."""
        p = self.profile
        return int(p.capacity_bytes * (1.0 + p.overprovision))

    def utilization(self) -> float:
        """Physical utilization: fraction of physical blocks holding live
        logical data (0.0 for profiles without a declared capacity)."""
        if not self.profile.capacity_bytes:
            return 0.0
        return min(1.0, len(self._media) * BLOCK_SIZE / self.physical_bytes)

    @property
    def gc_active(self) -> bool:
        """Steady-state GC is running (flash only, past the threshold)."""
        return (
            bool(self.profile.capacity_bytes)
            and not self.profile.plp
            and self.utilization() >= self.profile.gc_threshold
        )

    def write_amplification(self) -> float:
        """Current GC write-amplification factor (1.0 while GC is idle).

        Greedy GC under uniform writes relocates ``u/(1-u)`` valid bytes
        per host byte at physical utilization ``u``, so the media pipe
        serves ``WA = 1/(1-u)`` bytes per host byte, capped at the
        profile's ``gc_wa_cap``.
        """
        if not self.gc_active:
            return 1.0
        u = self.utilization()
        if u >= 1.0:
            return self.profile.gc_wa_cap
        return min(self.profile.gc_wa_cap, 1.0 / (1.0 - u))

    def wear_pct(self) -> float:
        """Endurance consumed, as a percentage of rated program bytes."""
        p = self.profile
        if not p.capacity_bytes or not p.endurance_cycles:
            return 0.0
        rated = self.physical_bytes * p.endurance_cycles
        return 100.0 * (self.media_host_bytes + self.media_gc_bytes) / rated

    @property
    def cache_pressure(self) -> float:
        """Dirty fraction of the write cache (0.0 on cacheless devices)."""
        if not self.profile.cache_capacity:
            return 0.0
        return self._cache_bytes / self.profile.cache_capacity

    def smart(self) -> Dict[str, float]:
        """SMART-like health snapshot: plain numbers, JSON-encodable."""
        return {
            "commands_served": float(self.commands_served),
            "flushes_served": float(self.flushes_served),
            "dirty_bytes": float(self._cache_bytes),
            "cache_pressure": self.cache_pressure,
            "cache_stalls": float(self.cache_stalls),
            "cache_stall_time": self.cache_stall_time,
            "cache_evictions": float(self.cache_evictions),
            "media_host_bytes": float(self.media_host_bytes),
            "media_gc_bytes": float(self.media_gc_bytes),
            "write_amp": self.write_amplification(),
            "utilization": self.utilization(),
            "gc_active": 1.0 if self.gc_active else 0.0,
            "wear_pct": self.wear_pct(),
            "service_inflation": self.service_inflation,
            "power_cycles": float(self._epoch),
        }

    def prefill(self, fraction: float) -> None:
        """Fill ``fraction`` of the logical capacity directly on media.

        Qualification sweeps start from the steady state a long-lived
        drive reaches (GC active) without simulating hours of fill
        traffic: pure state mutation — no simulated time passes, no wear
        is charged, and every prefilled version predates any run write.
        Idempotent per block; a no-op on profiles without a capacity.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("prefill fraction must be in [0, 1]")
        nblocks = int(self.profile.capacity_bytes // BLOCK_SIZE * fraction)
        for lba in range(nblocks):
            if lba in self._media:
                continue
            self._version_counter += 1
            self._media[lba] = ("prefill", lba)
            self._media_version[lba] = self._version_counter

    # -- durable-state snapshot/restore (crash-consistency checker) --------

    def capture_durable_state(self) -> Dict[str, Any]:
        """Copy of exactly what survives a power failure right now."""
        return {
            "media": dict(self._media),
            "media_version": dict(self._media_version),
            "version_counter": self._version_counter,
            "media_host_bytes": self.media_host_bytes,
            "media_gc_bytes": self.media_gc_bytes,
        }

    def restore_durable_state(self, state: Dict[str, Any]) -> None:
        """Overwrite durable media with a captured snapshot.

        Used on a freshly built (never-written) device to materialize a
        crash point; volatile state is untouched, matching the post-crash
        power-on condition.
        """
        self._media = dict(state["media"])
        self._media_version = dict(state["media_version"])
        self._version_counter = state["version_counter"]
        self.media_host_bytes = state.get("media_host_bytes", 0)
        self.media_gc_bytes = state.get("media_gc_bytes", 0)

    # ------------------------------------------------------------------
    # Command service
    # ------------------------------------------------------------------

    def _serve(self, io: DiskIO, done: Event, epoch: int):
        obs = self.env.obs
        span = None
        if obs is not None:
            attrs = dict(
                host=self.name.split("-")[0], dev=self.name,
                op=io.op, lba=io.lba, n=io.nblocks,
            )
            # Health surface on the span: only annotated when the device
            # is actually in the degraded state, so traces from first-order
            # profiles (and their goldens) are unchanged.
            if self.gc_active:
                attrs["gc"] = 1
                attrs["wa"] = round(self.write_amplification(), 2)
            span = obs.spans.open("ssd.service", parent=io.obs_parent, **attrs)
        try:
            if io.op == "flush":
                yield from self._serve_flush(epoch)
            elif io.op == "write":
                yield from self._serve_write(io, epoch)
            else:
                yield from self._serve_read(io, epoch)
        except CrashedError:
            # In-flight during a power failure: on real hardware nobody
            # ever sees this completion — the event silently never fires.
            if span is not None:
                obs.spans.close(span, crashed=1)
            return
        if epoch != self._epoch:
            if span is not None:
                obs.spans.close(span, lost=1)
            return  # crashed while in flight: never complete
        self.commands_served += 1
        self.env.trace("ssd", io.op, dev=self.name, lba=io.lba, n=io.nblocks)
        if span is not None:
            obs.spans.close(span)
        done.succeed(io)

    def _check_epoch(self, epoch: int) -> None:
        if epoch != self._epoch:
            raise CrashedError(f"{self.name} crashed mid-command")

    def _service_time(self, base: float) -> float:
        """One service latency, inflated while the device is degraded
        (fail-slow gray failure).  Healthy devices multiply by 1.0 — no
        extra RNG draws, no behaviour change."""
        return base * self.service_inflation

    def _serve_write(self, io: DiskIO, epoch: int):
        profile = self.profile
        # Concurrency slot (channel parallelism).
        yield self._slots.request()
        try:
            # Host DMA over the interface.
            yield self._interface.request()
            try:
                yield self.env.timeout(
                    self._service_time(io.nbytes / profile.interface_bandwidth)
                )
            finally:
                self._interface.release()
            self._check_epoch(epoch)

            if profile.plp:
                # Straight to persistent media.  Barrier writes serialize
                # through one lane so their persistence order matches
                # their submission order (§2.2's barrier interface).
                if io.barrier:
                    yield from self._await_barrier_turn(io, epoch)
                    yield self._barrier_lane.request()
                try:
                    yield self._media_pipe.request()
                    try:
                        yield self.env.timeout(self._service_time(
                            io.nbytes / profile.media_bandwidth
                        ))
                    finally:
                        self._media_pipe.release()
                    self._check_epoch(epoch)
                    yield self.env.timeout(self._service_time(
                        self.rng.jitter(profile.write_latency, 0.05)
                    ))
                    self._check_epoch(epoch)
                    self._persist_blocks(io)
                    if io.barrier:
                        self._advance_barrier_turn(io)
                finally:
                    if io.barrier and epoch == self._epoch:
                        self._barrier_lane.release()
            else:
                # Into the volatile write cache (waiting for space if full).
                yield from self._wait_for_cache_space(io.nbytes, epoch)
                yield self.env.timeout(self._service_time(
                    self.rng.jitter(profile.write_latency, 0.05)
                ))
                self._check_epoch(epoch)
                if io.barrier:
                    # Admit to the cache (and the FIFO drain lane) in
                    # submission order: the latency jitter above must not
                    # reorder barrier writes.
                    yield from self._await_barrier_turn(io, epoch)
                self._insert_cache(io, barrier=io.barrier)
                if io.barrier:
                    self._advance_barrier_turn(io)
                if io.fua:
                    # Force-unit-access: durable before completing.
                    yield from self._serve_flush(epoch)
        finally:
            if epoch == self._epoch:
                self._slots.release()

    def _await_barrier_turn(self, io: DiskIO, epoch: int):
        """Generator: park until every earlier barrier write persisted."""
        ticket = io._barrier_ticket  # type: ignore[attr-defined]
        while self._barrier_turn < ticket:
            self._check_epoch(epoch)
            waiter = self._barrier_turn_waiters.get(ticket)
            if waiter is None or waiter.triggered:
                waiter = Event(self.env)
                self._barrier_turn_waiters[ticket] = waiter
            yield waiter
        self._check_epoch(epoch)

    def _advance_barrier_turn(self, io: DiskIO) -> None:
        ticket = io._barrier_ticket  # type: ignore[attr-defined]
        self._barrier_turn = max(self._barrier_turn, ticket + 1)
        self._wake_barrier_turn()

    def release_barrier_ticket(self, ticket: int) -> None:
        """Abandon a reserved ticket that will never reach :meth:`submit`
        (e.g. a retransmitted command suppressed as a duplicate); the
        persist order skips over it instead of wedging its successors."""
        self._barrier_abandoned.add(ticket)
        self._wake_barrier_turn()

    def _wake_barrier_turn(self) -> None:
        while self._barrier_turn in self._barrier_abandoned:
            self._barrier_abandoned.discard(self._barrier_turn)
            self._barrier_turn += 1
        successor = self._barrier_turn_waiters.pop(self._barrier_turn, None)
        if successor is not None and not successor.triggered:
            successor.succeed()

    def _serve_read(self, io: DiskIO, epoch: int):
        profile = self.profile
        yield self._slots.request()
        try:
            yield self.env.timeout(
                self._service_time(self.rng.jitter(profile.read_latency, 0.05))
            )
            self._check_epoch(epoch)
            yield self._interface.request()
            try:
                yield self.env.timeout(
                    self._service_time(io.nbytes / profile.interface_bandwidth)
                )
            finally:
                self._interface.release()
            self._check_epoch(epoch)
            io.payload = [
                self.current_payload(lba) for lba in range(io.lba, io.lba + io.nblocks)
            ]
        finally:
            if epoch == self._epoch:
                self._slots.release()

    def _serve_flush(self, epoch: int):
        self.flushes_served += 1
        if self.profile.plp or not self.profile.cache_capacity:
            yield self.env.timeout(self._service_time(self.profile.flush_base_latency))
            self._check_epoch(epoch)
            return
        # Snapshot: everything admitted so far must drain before we return.
        barrier_seq = self._cache_seq
        if self._lowest_undrained() < barrier_seq:
            waiter = Event(self.env)
            self._drain_waiters.append((barrier_seq, waiter))
            self._kick_drain()
            yield waiter
            self._check_epoch(epoch)
        yield self.env.timeout(self._service_time(
            self.rng.jitter(self.profile.flush_base_latency, 0.1)
        ))
        self._check_epoch(epoch)

    # ------------------------------------------------------------------
    # Volatile write cache + background drain
    # ------------------------------------------------------------------

    def _wait_for_cache_space(self, nbytes: int, epoch: int):
        stalled_at = None
        while self._cache_bytes + nbytes > self.profile.cache_capacity:
            self._check_epoch(epoch)
            if stalled_at is None:
                # Eviction pressure made this write stall: count the IO
                # once, and its total stalled time on exit (health surface).
                stalled_at = self.env.now
                self.cache_stalls += 1
            waiter = Event(self.env)
            self._space_waiters.append((nbytes, waiter))
            self._kick_drain()
            yield waiter
        self._check_epoch(epoch)
        if stalled_at is not None:
            self.cache_stall_time += self.env.now - stalled_at

    def _insert_cache(self, io: DiskIO, barrier: bool = False) -> None:
        for offset in range(io.nblocks):
            lba = io.lba + offset
            payload = io.payload[offset] if io.payload is not None else None
            self._version_counter += 1
            old = self._cache.get(lba)
            if old is not None:
                # Overwrite in cache: the new copy inherits the old entry's
                # flush obligation (a FLUSH issued after the old write must
                # not return until this LBA has a durable copy).
                seq = old.seq
                self._cache_seq += 1  # keep seq numbering monotonic overall
            else:
                self._cache_bytes += BLOCK_SIZE
                seq = self._cache_seq
                self._cache_seq += 1
            entry = _CacheEntry(
                seq=seq,
                lba=lba,
                payload=payload,
                version=self._version_counter,
                barrier=barrier,
            )
            self._cache[lba] = entry
            if barrier:
                self._barrier_fifo.append(entry)
            else:
                self._drain_queue.append(entry)
            self._pending_drain_seqs.add(entry.seq)
        self._kick_drain()

    def _lowest_undrained(self) -> int:
        if not self._pending_drain_seqs:
            return self._cache_seq
        return min(self._pending_drain_seqs)

    def _kick_drain(self) -> None:
        if self._drain_kick is not None and not self._drain_kick.triggered:
            self._drain_kick.succeed()

    def _drain_loop(self, epoch: int):
        """Continuously move dirty cache entries to flash, media-bandwidth
        limited, in a randomized order (the SSD is free to reorder)."""
        drain_window = 32
        batch_blocks = 16
        while epoch == self._epoch:
            if not self._drain_queue and not self._barrier_fifo:
                self._drain_kick = Event(self.env)
                yield self._drain_kick
                continue
            # Barrier writes drain strictly FIFO (their contract, §2.2);
            # they take priority so the order chain keeps moving.
            batch: List[_CacheEntry] = []
            while self._barrier_fifo and len(batch) < batch_blocks:
                entry = self._barrier_fifo[0]
                live = self._cache.get(entry.lba)
                if live is entry:
                    batch.append(entry)
                    self._barrier_fifo.popleft()
                elif live is not None and live.seq == entry.seq:
                    break  # superseded mid-drain: successor keeps the slot
                else:
                    self._pending_drain_seqs.discard(entry.seq)
                    self._barrier_fifo.popleft()
            # Fill the rest with a randomized window of normal entries
            # (the SSD is free to reorder those).  Superseded entries
            # (overwritten in cache) are retired for free.
            window: List[_CacheEntry] = []
            while self._drain_queue and len(window) + len(batch) < drain_window:
                entry = self._drain_queue.popleft()
                live = self._cache.get(entry.lba)
                if live is entry:
                    window.append(entry)
                elif live is None or live.seq != entry.seq:
                    # Stale node with no live successor carrying its seq.
                    self._pending_drain_seqs.discard(entry.seq)
            if not window and not batch:
                self._wake_waiters()
                continue
            self.rng.shuffle(window)
            take = max(0, batch_blocks - len(batch))
            batch.extend(window[:take])
            # Entries not drained this round go back to the front, oldest
            # first, so flush barriers still terminate.
            for entry in sorted(window[take:], key=lambda e: -e.seq):
                self._drain_queue.appendleft(entry)
            nbytes = BLOCK_SIZE * len(batch)
            # Steady-state GC: past the threshold every host batch drags
            # relocated valid data through the media pipe with it, so the
            # drain serves WA x the host bytes (the sustained-write regime
            # qualification cells run the PM981 in).
            wa = self.write_amplification()
            yield self._media_pipe.request()
            try:
                yield self.env.timeout(
                    nbytes * wa / self.profile.media_bandwidth
                )
            finally:
                if epoch == self._epoch:
                    self._media_pipe.release()
            if epoch != self._epoch:
                return
            self.media_host_bytes += nbytes
            self.media_gc_bytes += int(nbytes * (wa - 1.0))
            self.cache_evictions += len(batch)
            for entry in batch:
                live = self._cache.get(entry.lba)
                if live is entry:
                    del self._cache[entry.lba]
                    self._cache_bytes -= BLOCK_SIZE
                    self._media[entry.lba] = entry.payload
                    self._media_version[entry.lba] = entry.version
                    self._pending_drain_seqs.discard(entry.seq)
                elif live is None or live.seq != entry.seq:
                    self._pending_drain_seqs.discard(entry.seq)
                # else: overwritten mid-drain by a successor that inherited
                # this seq — the obligation stays until the successor drains.
            if self.on_persist is not None:
                self.on_persist(self)
            self._wake_waiters()

    def _wake_waiters(self) -> None:
        # Space waiters (FIFO, as long as space remains).
        while self._space_waiters:
            nbytes, waiter = self._space_waiters[0]
            if self._cache_bytes + nbytes > self.profile.cache_capacity:
                break
            self._space_waiters.pop(0)
            waiter.succeed()
        # Flush barriers whose snapshot fully drained.
        low = self._lowest_undrained()
        remaining = []
        for barrier_seq, waiter in self._drain_waiters:
            if low >= barrier_seq:
                waiter.succeed()
            else:
                remaining.append((barrier_seq, waiter))
        self._drain_waiters = remaining

    def _persist_blocks(self, io: DiskIO) -> None:
        self.media_host_bytes += io.nbytes
        for offset in range(io.nblocks):
            lba = io.lba + offset
            payload = io.payload[offset] if io.payload is not None else None
            self._version_counter += 1
            self._media[lba] = payload
            self._media_version[lba] = self._version_counter
        if self.on_persist is not None:
            self.on_persist(self)

    def __repr__(self) -> str:
        return f"<NvmeSsd {self.name} ({self.profile.name})>"
