"""Hardware models: CPU cores, NVMe SSDs, PMR, RDMA NICs.

Every model charges virtual time (and CPU busy time where appropriate) that
is calibrated from the paper's testbed (§6.1): Intel Xeon Gold 5220 servers,
Samsung PM981 flash SSDs, Intel 905P / P4800X Optane SSDs, 2 MB PMR with a
0.6 µs 32 B persistent-MMIO write, and 200 Gbps ConnectX-6 RDMA NICs.
"""

from repro.hw.cpu import Core, CpuSet
from repro.hw.pmr import PersistentMemoryRegion
from repro.hw.ssd import (
    FLASH_PM981,
    FLASH_PM981_QUAL,
    OPTANE_905P,
    OPTANE_P4800X,
    NvmeSsd,
    SsdProfile,
)

__all__ = [
    "Core",
    "CpuSet",
    "PersistentMemoryRegion",
    "NvmeSsd",
    "SsdProfile",
    "FLASH_PM981",
    "FLASH_PM981_QUAL",
    "OPTANE_905P",
    "OPTANE_P4800X",
]
