"""CPU core models with busy-time accounting.

The paper's CPU-efficiency metric (§6.1) is throughput divided by CPU
utilization as reported by ``top``.  We reproduce it by charging every piece
of software work (block layer, driver command building, RDMA posts,
interrupt handlers, MMIO persists, file-system logic) to a :class:`Core`,
which serializes work on that core and integrates busy time into a per-core
:class:`~repro.sim.stats.BusyTracker`.

Utilization for a server is expressed in *busy cores* (the sum of per-core
utilizations, like summing ``top``'s per-core percentages), so "CPU
efficiency" is operations per second per busy core.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.sim.stats import BusyTracker

__all__ = [
    "Core",
    "CoreSteering",
    "CpuSet",
    "CONTEXT_SWITCH_COST",
    "STEERING_POLICIES",
]

#: One sleep/wake transition on a ~2.2 GHz Xeon (seconds).  Synchronous
#: ordering pays two of these per wait; this is part of the per-operation
#: software cost the paper's Lesson 3 (§3.2) is about.
CONTEXT_SWITCH_COST = 1.5e-6


class Core:
    """A single CPU core: a serial execution resource with busy accounting."""

    def __init__(self, env: Environment, index: int):
        self.env = env
        self.index = index
        self.tracker = BusyTracker(env)
        self._resource = Resource(env, capacity=1)

    def run(self, duration: float):
        """Generator: occupy this core for ``duration`` seconds of work.

        Usage: ``yield from core.run(0.5e-6)``.  Work on the same core is
        serialized FIFO; busy time accrues only while work actually runs.
        """
        if duration < 0:
            raise ValueError(f"negative CPU work: {duration}")
        yield self._resource.request()
        self.tracker.begin()
        try:
            yield self.env.timeout(duration)
        finally:
            self.tracker.end()
            self._resource.release()

    def context_switch(self):
        """Generator: charge one sleep/wake context-switch pair."""
        yield from self.run(2 * CONTEXT_SWITCH_COST)

    @property
    def queued_work(self) -> int:
        """Number of work items waiting for this core."""
        return self._resource.queued

    def __repr__(self) -> str:
        return f"<Core {self.index}>"


#: Affinity-aware IRQ/completion steering policies (scale-out plane).
STEERING_POLICIES = ("pin", "round-robin", "least-loaded", "flow-hash")


def _flow_hash(key: int) -> int:
    """Stable 64-bit scatter of a flow key.

    Python's ``hash(int)`` is (nearly) the identity, which would collapse
    flow-hash steering into modulo pinning; blake2b gives an
    avalanche-quality spread that is identical across processes and runs
    (no ``PYTHONHASHSEED`` dependence), which the bit-identity guarantees
    of the sweep runner rely on.
    """
    digest = hashlib.blake2b(
        key.to_bytes(8, "little", signed=True), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class CoreSteering:
    """Maps flow keys to cores of a fixed subset under one policy.

    The target and initiator drivers ask "which core takes this
    interrupt?" once per message; the answer is this object's
    :meth:`select`.  Policies:

    ``pin``
        ``cores[key % n]`` — static modulo pinning, the historical
        behaviour (one flow, one core, forever).  Deterministic per key.
    ``round-robin``
        Cores in rotation regardless of key: spreads load evenly but
        migrates flows across cores (cold caches, no IRQ coalescing).
    ``least-loaded``
        The core with the shortest run queue at selection time (ties:
        lowest index) — work-stealing-style balance.
    ``flow-hash``
        ``cores[blake2b(key) % n]`` — RSS-style hashing: flows stay
        pinned (coalescing still works) but hot neighbouring keys spread
        instead of striding.
    """

    def __init__(self, cores: Sequence[Core], policy: str = "pin"):
        if not cores:
            raise ValueError("steering needs at least one core")
        if policy not in STEERING_POLICIES:
            raise ValueError(
                f"unknown steering policy {policy!r}; "
                f"one of {STEERING_POLICIES}"
            )
        self.cores = list(cores)
        self.policy = policy
        self._rr_next = 0
        #: selections per core index — observability for the saturation
        #: harness and the property suite.
        self.selections: dict = {}
        #: Core indices the health plane has quarantined (e.g. a core
        #: whose IRQ affinity points at a degraded NIC path).  Never
        #: selected while at least one non-quarantined core remains.
        self._quarantined: set = set()
        #: Tenant-class isolation (multi-tenant plane): class name -> core
        #: sub-pool.  Flows steered with a class confined to a pool cannot
        #: land outside it, so an aggressor class's interrupt storm stays
        #: off the quiet classes' cores.  Unassigned classes (and calls
        #: without a class) use the full pool — the historical behaviour.
        self._class_pools: Dict[str, List[Core]] = {}

    def assign_class(self, class_name: str, core_indices: Sequence[int]) -> None:
        """Confine flows of ``class_name`` to the given core subset."""
        wanted = set(core_indices)
        chosen = [c for c in self.cores if c.index in wanted]
        if not chosen:
            raise ValueError(
                f"class {class_name!r} pool selects none of this steering's "
                f"cores {[c.index for c in self.cores]}"
            )
        self._class_pools[class_name] = chosen

    def class_pool(self, class_name: str) -> List[Core]:
        """The cores ``class_name`` is confined to (full pool if none)."""
        return list(self._class_pools.get(class_name, self.cores))

    def quarantine(self, core_index: int) -> None:
        """Exclude a core from selection (health-plane steering)."""
        if any(c.index == core_index for c in self.cores):
            self._quarantined.add(core_index)

    def release(self, core_index: int) -> None:
        """Return a quarantined core to the selection pool."""
        self._quarantined.discard(core_index)

    def _pool(self, tenant_class: Optional[str] = None) -> List[Core]:
        base = self.cores
        if tenant_class is not None:
            base = self._class_pools.get(tenant_class, self.cores)
        if not self._quarantined:
            return base
        healthy = [c for c in base if c.index not in self._quarantined]
        return healthy if healthy else base

    def select(self, key: int, tenant_class: Optional[str] = None) -> Core:
        """The core that handles the message with flow key ``key``.

        ``tenant_class`` (multi-tenant plane) confines the choice to the
        class's assigned sub-pool, if one was installed via
        :meth:`assign_class`; otherwise it is ignored.
        """
        pool = self._pool(tenant_class)
        n = len(pool)
        if self.policy == "pin":
            core = pool[key % n]
        elif self.policy == "round-robin":
            core = pool[self._rr_next % n]
            self._rr_next += 1
        elif self.policy == "least-loaded":
            core = min(
                pool, key=lambda c: (c.queued_work, c.index)
            )
        else:  # flow-hash
            core = pool[_flow_hash(key) % n]
        self.selections[core.index] = self.selections.get(core.index, 0) + 1
        return core

    def __repr__(self) -> str:
        return (
            f"<CoreSteering {self.policy} over "
            f"{len(self.cores)} core(s)>"
        )


class CpuSet:
    """All cores of one server.

    ``pick(i)`` wraps around, so workloads can pin thread *i* to core
    ``i % ncores`` the way the paper's FIO/db_bench threads land on cores.
    """

    def __init__(self, env: Environment, ncores: int, name: str = "cpu"):
        if ncores < 1:
            raise ValueError("a server needs at least one core")
        self.env = env
        self.name = name
        self.cores: List[Core] = [Core(env, i) for i in range(ncores)]
        obs = env.obs
        if obs is not None:
            for core in self.cores:
                obs.metrics.register_gauge(
                    f"cpu.{name}.core{core.index}.busy_s",
                    lambda t=core.tracker: t.busy_time,
                )
            obs.metrics.register_gauge(
                f"cpu.{name}.busy_s", self.busy_time
            )

    def __len__(self) -> int:
        return len(self.cores)

    def pick(self, index: int) -> Core:
        return self.cores[index % len(self.cores)]

    def least_loaded(self) -> Core:
        """The core with the shortest run queue (ties: lowest index)."""
        return min(self.cores, key=lambda core: (core.queued_work, core.index))

    def steering(
        self, policy: str = "pin", cores: Optional[Sequence[Core]] = None
    ) -> CoreSteering:
        """A :class:`CoreSteering` over ``cores`` (default: all of them)."""
        return CoreSteering(cores if cores is not None else self.cores, policy)

    # -- measurement -------------------------------------------------------

    def start_window(self) -> None:
        for core in self.cores:
            core.tracker.start_window()

    def stop_window(self) -> None:
        for core in self.cores:
            core.tracker.stop_window()

    def busy_time(self) -> float:
        """Total busy core-seconds inside the measurement window."""
        return sum(core.tracker.busy_time for core in self.cores)

    def busy_cores(self, elapsed: Optional[float] = None) -> float:
        """Average number of simultaneously busy cores over the window."""
        if elapsed is not None:
            if elapsed <= 0:
                return 0.0
            return self.busy_time() / elapsed
        return sum(core.tracker.utilization() for core in self.cores)
