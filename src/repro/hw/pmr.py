"""Persistent Memory Region (PMR) model.

The paper stores Rio's ordering attributes (and Horae's ordering metadata)
in a 2 MB byte-addressable persistent region on each target: either a
PMR-capable NVMe SSD (NVMe 1.4) or capacitor-backed in-SSD DRAM remapped
through a PCIe BAR (§5).  Writes are persistent MMIO stores — an MMIO write
followed by a read-back — measured at ~0.6 µs for a 32 B attribute (§6.1).

Contents survive crashes; :meth:`PersistentMemoryRegion.crash` only drops
in-flight (not yet persisted) stores.

The region is plain bytes-addressable storage here; the circular-log
discipline Rio layers on top of it lives in :mod:`repro.core.target`
(:class:`~repro.core.target.AttributeLog`) where head/tail pointers are
managed in host memory, exactly as §4.3.2 describes.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional

from repro.sim.engine import Environment

__all__ = ["PersistentMemoryRegion", "PMR_SIZE", "PMR_WRITE_LATENCY"]

#: Default PMR capacity per target server (bytes), per §4.1/§6.1.
PMR_SIZE = 2 * 1024 * 1024

#: Persistent-MMIO latency for one 32 B store (seconds), per §6.1.
PMR_WRITE_LATENCY = 0.6e-6


class PersistentMemoryRegion:
    """A small byte-addressable persistent region on a target server.

    Storage is modelled at *record* granularity: callers write an opaque
    record object at a byte offset with a declared size.  This keeps the
    simulation cheap while preserving the two properties that matter —
    persistence across crashes and the per-store MMIO latency charged to
    the CPU core doing the store.
    """

    def __init__(
        self,
        env: Environment,
        size: int = PMR_SIZE,
        write_latency: float = PMR_WRITE_LATENCY,
        name: str = "pmr",
    ):
        if size <= 0:
            raise ValueError("PMR size must be positive")
        self.env = env
        self.size = size
        self.write_latency = write_latency
        self.name = name
        self._records: Dict[int, tuple] = {}  # offset -> (nbytes, record)
        self.writes = 0
        #: Optional hook fired after every persistent store (including
        #: in-place ``persist_instant`` updates such as Rio's persist-bit
        #: toggles).  The crash-consistency checker snapshots here; None
        #: keeps the store paths a single attribute check.
        self.on_persist = None

    def persist(self, core, offset: int, nbytes: int, record: Any):
        """Generator: persistently store ``record`` at ``offset``.

        Charges ``write_latency`` (scaled by record size in 32 B units) to
        ``core`` — persistent MMIO is CPU-driven, unlike DMA.  Once this
        generator finishes, the record is durable.
        """
        self._check_range(offset, nbytes)
        units = max(1, (nbytes + 31) // 32)
        yield from core.run(self.write_latency * units)
        self._records[offset] = (nbytes, record)
        self.writes += 1
        if self.on_persist is not None:
            self.on_persist(self)

    def persist_instant(self, offset: int, nbytes: int, record: Any) -> None:
        """Store without charging latency (setup/test helper)."""
        self._check_range(offset, nbytes)
        self._records[offset] = (nbytes, record)
        if self.on_persist is not None:
            self.on_persist(self)

    def read(self, offset: int) -> Optional[Any]:
        """The record stored at ``offset`` (None if empty)."""
        entry = self._records.get(offset)
        return entry[1] if entry else None

    def erase(self, offset: int) -> None:
        self._records.pop(offset, None)

    def clear(self) -> None:
        """Wipe the region (re-initialization, not crash)."""
        self._records.clear()

    def records(self) -> Dict[int, Any]:
        """Snapshot of offset -> record (recovery scans this)."""
        return {offset: record for offset, (_n, record) in self._records.items()}

    def crash(self) -> None:
        """Power failure: persisted records survive by definition."""

    # -- snapshot/restore (crash-consistency checker) ----------------------

    def capture_state(self) -> Dict[int, tuple]:
        """Deep copy of the persisted records.

        A deep copy is load-bearing: Rio's persist-bit toggle mutates the
        stored record object in place, so a shallow snapshot taken before
        the toggle would silently acquire it afterwards.
        """
        return copy.deepcopy(self._records)

    def restore_state(self, state: Dict[int, tuple]) -> None:
        """Overwrite the region with a captured snapshot."""
        self._records = copy.deepcopy(state)

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes <= 0 or offset + nbytes > self.size:
            raise ValueError(
                f"PMR access out of range: offset={offset} nbytes={nbytes} "
                f"size={self.size}"
            )
