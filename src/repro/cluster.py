"""Testbed assembly: initiator + target servers + fabric + namespaces.

Reproduces the paper's physical setup (§6.1): one initiator and up to two
target servers, each with 2×18-core Xeon Gold 5220 CPUs, connected by
200 Gbps ConnectX-6 RDMA; target 1 holds a PM981 flash and a 905P Optane
SSD, target 2 a PM981 and a P4800X; each target has a 2 MB PMR.

:class:`Cluster` is the one-stop constructor used by the experiment
harness, the examples and the integration tests::

    env = Environment()
    cluster = Cluster(env, target_ssds=((FLASH_PM981, OPTANE_905P),))
    layer = BlockLayer(env, cluster.driver, cluster.volume())
    core = cluster.initiator.cpus.pick(0)

``target_ssds`` is one inner sequence per target server; ``transport``
selects ``"rdma"`` or ``"tcp"``; pass a
:class:`~repro.nvmeof.initiator.DriverHardening` to arm timeouts/retries
(the fault plane's recovery side).  Striped (multi-SSD) block access goes
through :meth:`Cluster.volume`; :meth:`Cluster.namespaces_with_profile`
picks out namespaces by device model.

For where this testbed sits in the overall stack — and what the layers it
wires together actually do — see ``docs/architecture.md``.  The
multi-initiator variant of this assembly lives in :mod:`repro.multi`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.block.volume import LogicalVolume
from repro.hw.cpu import CpuSet
from repro.hw.nic import Nic
from repro.hw.pmr import PersistentMemoryRegion
from repro.hw.ssd import NvmeSsd, SsdProfile
from repro.net.fabric import Fabric
from repro.nvmeof.costs import DEFAULT_COSTS, CpuCosts
from repro.nvmeof.initiator import (
    DriverHardening,
    InitiatorDriver,
    InitiatorServer,
    RemoteNamespace,
)
from repro.nvmeof.target import TargetServer
from repro.sim.engine import Environment
from repro.sim.rng import DeterministicRNG

__all__ = ["Cluster"]

#: 2 × 18 cores per server, as in the paper's testbed.
DEFAULT_CORES = 36


class Cluster:
    """A connected initiator/targets testbed over one RDMA fabric."""

    def __init__(
        self,
        env: Environment,
        target_ssds: Sequence[Sequence[SsdProfile]],
        initiator_cores: int = DEFAULT_CORES,
        target_cores: int = DEFAULT_CORES,
        num_qps: Optional[int] = None,
        costs: CpuCosts = DEFAULT_COSTS,
        seed: int = 42,
        transport: str = "rdma",
        pmr_size: Optional[int] = None,
        hardening: Optional[DriverHardening] = None,
        steering: str = "pin",
        qp_steering: str = "pin",
    ):
        if not target_ssds:
            raise ValueError("need at least one target server")
        self.env = env
        self.costs = costs
        self.transport = transport
        self.steering = steering
        self.rng = DeterministicRNG(seed)
        num_qps = num_qps or initiator_cores

        self.initiator = InitiatorServer(
            env,
            name="initiator",
            cpus=CpuSet(env, initiator_cores, name="initiator-cpu"),
            nic=Nic(env, name="initiator-nic"),
        )
        self.driver = InitiatorDriver(
            env, self.initiator, costs=costs, hardening=hardening,
            steering=steering,
        )
        self.fabric = Fabric(env, self.rng.fork("fabric"), transport=transport)

        self.targets: List[TargetServer] = []
        self.namespaces: List[RemoteNamespace] = []
        for tid, profiles in enumerate(target_ssds):
            if not profiles:
                raise ValueError(f"target {tid} has no SSDs")
            name = f"target{tid}"
            ssds = [
                NvmeSsd(
                    env,
                    profile,
                    rng=self.rng.fork(f"{name}-ssd{sid}"),
                    name=f"{name}-ssd{sid}",
                )
                for sid, profile in enumerate(profiles)
            ]
            target = TargetServer(
                env,
                name=name,
                cpus=CpuSet(env, target_cores, name=f"{name}-cpu"),
                nic=Nic(env, name=f"{name}-nic"),
                ssds=ssds,
                pmr=PersistentMemoryRegion(
                    env,
                    **({"size": pmr_size} if pmr_size else {}),
                    name=f"{name}-pmr",
                ),
                costs=costs,
                steering=steering,
            )
            qps = self.fabric.connect(self.initiator.nic, target.nic, num_qps)
            initiator_eps = [qp.endpoints[0] for qp in qps]
            target_eps = [qp.endpoints[1] for qp in qps]
            target.attach_connection(target_eps)
            self.driver.register_connection(initiator_eps)
            self.targets.append(target)
            for sid in range(len(ssds)):
                self.namespaces.append(
                    RemoteNamespace(target, nsid=sid, endpoints=initiator_eps,
                                    qp_steering=qp_steering)
                )

    # ------------------------------------------------------------------

    def volume(
        self,
        namespaces: Optional[List[RemoteNamespace]] = None,
        stripe_blocks: int = 1,
    ) -> LogicalVolume:
        """A logical volume over ``namespaces`` (default: all of them)."""
        return LogicalVolume(namespaces or self.namespaces, stripe_blocks)

    def namespaces_with_profile(self, profile_name: str) -> List[RemoteNamespace]:
        """All namespaces backed by SSDs of the given profile."""
        return [
            ns
            for ns in self.namespaces
            if ns.target.ssds[ns.nsid].profile.name == profile_name
        ]

    # -- measurement helpers -------------------------------------------------

    def start_cpu_window(self) -> None:
        self.initiator.cpus.start_window()
        for target in self.targets:
            target.cpus.start_window()

    def stop_cpu_window(self) -> None:
        self.initiator.cpus.stop_window()
        for target in self.targets:
            target.cpus.stop_window()

    def initiator_busy_cores(self, elapsed: float) -> float:
        return self.initiator.cpus.busy_cores(elapsed)

    def target_busy_cores(self, elapsed: float) -> float:
        return sum(t.cpus.busy_cores(elapsed) for t in self.targets)
