"""NVMe over Fabrics (RDMA transport): command codec, initiator, target.

This package models the Linux NVMe over RDMA drivers the paper modifies
(§2.1, §5): I/O commands and completions travel as two-sided RDMA SENDs
(which cost target CPU); data blocks move by one-sided RDMA READ (which
bypass it).  :mod:`repro.nvmeof.command` implements the bit-level command
layout including Rio's use of reserved fields (Table 1).

Ordering behaviour is *pluggable*: a :class:`~repro.nvmeof.target.TargetPolicy`
installed on each target server adds the Rio (or Horae) processing steps —
the stock policy is the orderless Linux data path.
"""

from repro.nvmeof.command import NvmeCommand, NvmeResponse, RioFields
from repro.nvmeof.costs import CpuCosts
from repro.nvmeof.initiator import InitiatorDriver, InitiatorServer, RemoteNamespace
from repro.nvmeof.target import TargetPolicy, TargetServer

__all__ = [
    "NvmeCommand",
    "NvmeResponse",
    "RioFields",
    "CpuCosts",
    "InitiatorDriver",
    "InitiatorServer",
    "RemoteNamespace",
    "TargetPolicy",
    "TargetServer",
]
