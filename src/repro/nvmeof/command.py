"""NVMe-oF command and response codec, including Rio's field layout.

Implements Table 1 of the paper: Rio transfers ordering attributes inside
the *reserved* fields of standard NVMe-oF I/O commands, so no protocol
change and no extra messages are needed:

=========== =================== ==============================
Dword:bits  NVMe-oF              Rio NVMe-oF
=========== =================== ==============================
00:10-13    reserved             Rio op code (e.g. submit)
02:00-31    reserved             start sequence (seq)
03:00-31    reserved             end sequence (seq)
04:00-31    metadata (reserved)  previous group (prev)
05:00-15    metadata (reserved)  number of requests (num)
05:16-31    metadata (reserved)  stream ID
12:16-19    reserved             special flags (e.g. boundary)
=========== =================== ==============================

The codec packs/unpacks real 64-byte submission-queue entries (and 16-byte
completion-queue entries), proving the layout fits.  The simulator carries
the object form on its virtual wire for speed; the byte form is exercised
by the protocol test-suite.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = [
    "OP_FLUSH",
    "OP_WRITE",
    "OP_READ",
    "RIO_OP_NONE",
    "RIO_OP_SUBMIT",
    "RIO_OP_RECOVERY",
    "FLAG_BOUNDARY",
    "FLAG_SPLIT",
    "FLAG_IPU",
    "FLAG_MERGED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "STATUS_QFULL",
    "STATUS_DEADLINE",
    "STATUS_BROWNOUT",
    "RioFields",
    "NvmeCommand",
    "NvmeResponse",
]

# NVMe I/O opcodes (NVM command set).
OP_FLUSH = 0x00
OP_WRITE = 0x01
OP_READ = 0x02

# Rio op codes carried in dword0 bits 10-13.
RIO_OP_NONE = 0x0
RIO_OP_SUBMIT = 0x1
RIO_OP_RECOVERY = 0x2

# Rio special flags carried in dword12 bits 16-19.
FLAG_BOUNDARY = 0x1  # final request of an ordered group (§4.2)
FLAG_SPLIT = 0x2  # fragment of a divided request (§4.5)
FLAG_IPU = 0x4  # in-place update: no automatic roll-back (§4.4.2)

# Completion status codes carried in the CQE status field (and mirrored
# onto BlockRequest.status / Bio.status up the stack).
STATUS_OK = 0x00
#: Host-side expiry: the command's retry budget ran out before any
#: response arrived (mirrors NVMe "Command Abort Requested", 0x07).
STATUS_TIMEOUT = 0x07
#: Target admission control shed this command instead of queueing it
#: (SCSI TASK SET FULL analogue).  Retryable: the driver re-posts the same
#: command after a backoff, so ordering attributes are preserved.
STATUS_QFULL = 0x06
#: Host-side fast-fail: the request's remaining deadline budget was below
#: the expected service cost, so the driver failed it locally instead of
#: spending fabric and target CPU on a doomed command.
STATUS_DEADLINE = 0x0B
#: Host-side fast-fail: the circuit breaker for the stream's target is
#: open (fail-slow/erroring target) and ordered streams cannot migrate,
#: so the stream surfaces a brownout error instead of wedging.
STATUS_BROWNOUT = 0x0C
FLAG_MERGED = 0x8  # covers several merged requests (atomic unit)

_MASK_32 = 0xFFFF_FFFF
_MASK_16 = 0xFFFF

_SQE_STRUCT = struct.Struct("<16I")  # 64-byte submission queue entry
_CQE_STRUCT = struct.Struct("<4I")  # 16-byte completion queue entry


@dataclass
class RioFields:
    """The ordering-attribute projection carried in one command."""

    rio_op: int = RIO_OP_NONE
    start_seq: int = 0
    end_seq: int = 0
    prev: int = 0
    num: int = 0
    stream_id: int = 0
    flags: int = 0

    def __post_init__(self):
        if not 0 <= self.rio_op <= 0xF:
            raise ValueError(f"rio_op must fit 4 bits: {self.rio_op}")
        if not 0 <= self.flags <= 0xF:
            raise ValueError(f"flags must fit 4 bits: {self.flags}")
        for name in ("start_seq", "end_seq", "prev"):
            value = getattr(self, name)
            if not 0 <= value <= _MASK_32:
                raise ValueError(f"{name} must fit 32 bits: {value}")
        for name in ("num", "stream_id"):
            value = getattr(self, name)
            if not 0 <= value <= _MASK_16:
                raise ValueError(f"{name} must fit 16 bits: {value}")

    @property
    def boundary(self) -> bool:
        return bool(self.flags & FLAG_BOUNDARY)

    @property
    def split(self) -> bool:
        return bool(self.flags & FLAG_SPLIT)

    @property
    def ipu(self) -> bool:
        return bool(self.flags & FLAG_IPU)

    @property
    def merged(self) -> bool:
        return bool(self.flags & FLAG_MERGED)


@dataclass
class NvmeCommand:
    """One NVMe-oF submission-queue entry plus simulator-side context."""

    opcode: int
    cid: int
    nsid: int = 0
    slba: int = 0
    nblocks: int = 0  # 1-based count (encoded 0-based per spec)
    fua: bool = False
    #: A FLUSH follows this write before the response (block-layer postflush).
    flush_after: bool = False
    #: Barrier write: in-order persistence on barrier-enabled SSDs (§2.2).
    barrier: bool = False
    rio: Optional[RioFields] = None
    #: Simulator-side: data payload travels by RDMA READ, not in the SQE.
    payload: Optional[List[Any]] = None
    #: Simulator-side: the originating block request (for completion fan-out).
    context: Any = None

    WIRE_SIZE = 64  # bytes of the SQE on the fabric

    def __post_init__(self):
        if self.opcode not in (OP_FLUSH, OP_WRITE, OP_READ):
            raise ValueError(f"unsupported opcode: {self.opcode:#x}")
        if self.opcode != OP_FLUSH and self.nblocks < 1:
            raise ValueError("read/write command needs nblocks >= 1")
        if self.nblocks > 0x10000:
            raise ValueError("nblocks exceeds the 16-bit NLB field")

    # ------------------------------------------------------------------
    # Bit-level codec (Table 1)
    # ------------------------------------------------------------------

    def pack(self) -> bytes:
        """Encode the 64-byte SQE with Rio fields in reserved space."""
        dwords = [0] * 16
        rio = self.rio or RioFields()
        dwords[0] = (
            (self.opcode & 0xFF)
            | ((rio.rio_op & 0xF) << 10)
            | ((self.cid & _MASK_16) << 16)
        )
        dwords[1] = self.nsid & _MASK_32
        dwords[2] = rio.start_seq & _MASK_32
        dwords[3] = rio.end_seq & _MASK_32
        dwords[4] = rio.prev & _MASK_32
        dwords[5] = (rio.num & _MASK_16) | ((rio.stream_id & _MASK_16) << 16)
        dwords[10] = self.slba & _MASK_32
        dwords[11] = (self.slba >> 32) & _MASK_32
        nlb = (self.nblocks - 1) if self.nblocks else 0
        dwords[12] = (
            (nlb & _MASK_16)
            | ((rio.flags & 0xF) << 16)
            | ((1 << 30) if self.fua else 0)
            | ((1 << 20) if self.flush_after else 0)
            | ((1 << 21) if self.barrier else 0)
        )
        return _SQE_STRUCT.pack(*dwords)

    @classmethod
    def unpack(cls, data: bytes) -> "NvmeCommand":
        """Decode a 64-byte SQE produced by :meth:`pack`."""
        if len(data) != cls.WIRE_SIZE:
            raise ValueError(f"SQE must be {cls.WIRE_SIZE} bytes, got {len(data)}")
        dwords = list(_SQE_STRUCT.unpack(data))
        opcode = dwords[0] & 0xFF
        rio_op = (dwords[0] >> 10) & 0xF
        cid = (dwords[0] >> 16) & _MASK_16
        rio = RioFields(
            rio_op=rio_op,
            start_seq=dwords[2],
            end_seq=dwords[3],
            prev=dwords[4],
            num=dwords[5] & _MASK_16,
            stream_id=(dwords[5] >> 16) & _MASK_16,
            flags=(dwords[12] >> 16) & 0xF,
        )
        slba = dwords[10] | (dwords[11] << 32)
        nblocks = (dwords[12] & _MASK_16) + 1 if opcode != OP_FLUSH else 0
        return cls(
            opcode=opcode,
            cid=cid,
            nsid=dwords[1],
            slba=slba,
            nblocks=nblocks,
            fua=bool(dwords[12] & (1 << 30)),
            flush_after=bool(dwords[12] & (1 << 20)),
            barrier=bool(dwords[12] & (1 << 21)),
            rio=rio,
        )

    @property
    def nbytes(self) -> int:
        from repro.hw.ssd import BLOCK_SIZE

        return self.nblocks * BLOCK_SIZE

    def __repr__(self) -> str:
        kind = {OP_FLUSH: "FLUSH", OP_WRITE: "WRITE", OP_READ: "READ"}[self.opcode]
        return f"<NvmeCommand {kind} cid={self.cid} lba={self.slba} n={self.nblocks}>"


@dataclass
class NvmeResponse:
    """One 16-byte completion-queue entry."""

    cid: int
    status: int = 0  # 0 = success
    sq_head: int = 0
    result: int = 0

    WIRE_SIZE = 16

    def pack(self) -> bytes:
        return _CQE_STRUCT.pack(
            self.result & _MASK_32,
            0,
            self.sq_head & _MASK_16,
            (self.cid & _MASK_16) | ((self.status & 0x7FFF) << 17),
        )

    @classmethod
    def unpack(cls, data: bytes) -> "NvmeResponse":
        if len(data) != cls.WIRE_SIZE:
            raise ValueError(f"CQE must be {cls.WIRE_SIZE} bytes, got {len(data)}")
        result, _rsvd, dword2, dword3 = _CQE_STRUCT.unpack(data)
        return cls(
            cid=dword3 & _MASK_16,
            status=(dword3 >> 17) & 0x7FFF,
            sq_head=dword2 & _MASK_16,
            result=result,
        )
