"""Per-operation CPU cost constants for the I/O stack (seconds).

These calibrate the paper's Lesson 3 (§3.2): at NVMe/RDMA speeds the CPU
cycles spent per command — building WQEs, ringing doorbells, servicing
RECVs and interrupts — become a first-order performance term.  Values are
in line with published per-command costs for Linux NVMe-oF on ~2.2 GHz
Xeons (a two-sided SEND round costs roughly 1–2 µs of combined CPU).

All costs are grouped here so ablations and sensitivity studies can scale
them in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuCosts", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CpuCosts:
    """CPU seconds charged per operation, by stack layer."""

    # -- initiator side -----------------------------------------------------
    #: Block-layer handling of one bio (queueing, accounting).
    block_layer_per_bio: float = 0.30e-6
    #: Checking/applying a merge for one bio in the plug/ORDER queue.
    merge_per_bio: float = 0.12e-6
    #: Building one NVMe-oF command and posting the RDMA SEND.
    command_build_and_post: float = 0.70e-6
    #: Completion interrupt + callback for one response.
    completion_interrupt: float = 0.80e-6
    #: Rio sequencer: creating/compacting one ordering attribute.
    sequencer_per_bio: float = 0.15e-6

    # -- target side ----------------------------------------------------------
    #: Processing one received two-sided SEND (RECV completion, lookup).
    recv_process: float = 0.50e-6
    #: Posting the one-sided RDMA READ for a command's data.
    rdma_read_post: float = 0.20e-6
    #: Submitting one command to the local NVMe SSD.
    nvme_submit: float = 0.30e-6
    #: Handling one local NVMe completion.
    nvme_completion: float = 0.40e-6
    #: Building and posting the completion-response SEND.
    response_post: float = 0.30e-6

    # -- interrupt amortization ----------------------------------------------
    #: Fixed cost of taking one interrupt (entry/exit, cache pollution).
    #: Back-to-back messages within the coalescing window share it — which
    #: is why synchronous, low-rate I/O burns disproportionate CPU per op
    #: while pipelined traffic amortizes it (part of Lesson 3).
    irq_entry: float = 1.2e-6
    irq_coalesce_window: float = 5e-6
    #: Toggling the persist field: a posted MMIO store (no read-back — a
    #: later dependent read fences it), much cheaper than the full
    #: persistent append.
    pmr_toggle: float = 0.15e-6

    # -- NVMe over TCP (the no-RDMA transport; §4.5 Principle 2) -------------
    #: Kernel socket-stack cost per message per side (skb handling,
    #: segmentation, softirq) on top of the normal processing.
    tcp_stack_per_message: float = 1.8e-6
    #: Copy cost per 4 KB of inline data (no one-sided DMA with TCP: data
    #: is copied through the socket on both ends).
    tcp_copy_per_block: float = 0.40e-6

    @property
    def initiator_per_command(self) -> float:
        """Asynchronous-path initiator CPU for one command."""
        return self.command_build_and_post + self.completion_interrupt

    @property
    def target_per_command(self) -> float:
        """Asynchronous-path target CPU for one write command."""
        return (
            self.recv_process
            + self.rdma_read_post
            + self.nvme_submit
            + self.nvme_completion
            + self.response_post
        )


DEFAULT_COSTS = CpuCosts()
