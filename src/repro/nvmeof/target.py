"""NVMe-oF target server: driver, SSDs, PMR, and pluggable ordering policy.

The target driver receives I/O commands as two-sided SENDs (costing CPU on
the IRQ core of the arrival queue pair), fetches write data with one-sided
RDMA READs (no CPU), submits to the local NVMe SSD and responds with a SEND
(§2.1, Figure 1(a)).

Ordering behaviour is injected through :class:`TargetPolicy` hooks:

* ``before_submit``  — Rio's in-order submission point (§4.3.1) and
  persistent-ordering-attribute store (§4.3.2, step ⑤ of Figure 4);
* ``after_completion`` — Rio's persist-field toggle (step ⑦);
* ``on_control``     — out-of-band messages (Horae's control path, recovery
  RPCs).

The stock :class:`TargetPolicy` does nothing, which *is* the orderless
Linux data path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.hw.cpu import Core, CoreSteering, CpuSet
from repro.hw.nic import Nic
from repro.hw.pmr import PersistentMemoryRegion
from repro.hw.ssd import CrashedError, DiskIO, NvmeSsd
from repro.net.fabric import Message, QpEndpoint
from repro.nvmeof.command import (
    OP_FLUSH,
    OP_READ,
    OP_WRITE,
    STATUS_QFULL,
    NvmeCommand,
    NvmeResponse,
)
from repro.nvmeof.costs import DEFAULT_COSTS, CpuCosts
from repro.sim.engine import Environment, Event

__all__ = ["TargetPolicy", "TargetContext", "TargetServer"]


class TargetContext:
    """Everything a policy hook needs about one in-flight command.

    ``core`` handles the receive path (RECV completion, data fetch, SSD
    submission); ``completion_core`` handles the SSD interrupt path
    (completion, persist toggling, response) — separate vectors, as on the
    real target, so one queue pair does not serialize the whole server.
    """

    def __init__(
        self,
        target: "TargetServer",
        endpoint: QpEndpoint,
        core: Core,
        completion_core: Optional[Core] = None,
    ):
        self.target = target
        self.endpoint = endpoint
        self.core = core
        self.completion_core = completion_core or core
        #: Set by a policy's ``before_submit`` when the command is a
        #: duplicate of one already admitted (a retransmission): the target
        #: skips the SSD entirely and acknowledges immediately, keeping
        #: retried ordered writes idempotent.
        self.duplicate = False
        #: ``target.admit`` span for the command being handled (set by the
        #: target server only when an Observability is attached); policies
        #: and SSD submissions parent their spans under it.
        self.obs_span: Any = None

    @property
    def env(self) -> Environment:
        return self.target.env

    @property
    def pmr(self) -> PersistentMemoryRegion:
        return self.target.pmr


class TargetPolicy:
    """No-op ordering policy: the stock (orderless) NVMe-oF target."""

    def attach(self, target: "TargetServer") -> None:
        """Called when installed on a target."""

    def on_receive(self, ctx: TargetContext, cmd: NvmeCommand):
        """Hook after command reception, before data fetch."""
        return
        yield  # pragma: no cover - makes this a generator function

    def before_submit(self, ctx: TargetContext, cmd: NvmeCommand):
        """Hook before the command is submitted to the SSD."""
        return
        yield  # pragma: no cover

    def after_completion(self, ctx: TargetContext, cmd: NvmeCommand):
        """Hook after SSD completion (and post-flush), before the response."""
        return
        yield  # pragma: no cover

    def on_control(self, ctx: TargetContext, message: Message):
        """Hook for non-I/O (control/RPC) messages."""
        return
        yield  # pragma: no cover

    def on_restart(self) -> None:
        """Reset volatile policy state after a target power cycle."""


class TargetServer:
    """One remote storage server: CPU, NIC, SSD array, PMR."""

    def __init__(
        self,
        env: Environment,
        name: str,
        cpus: CpuSet,
        nic: Nic,
        ssds: List[NvmeSsd],
        pmr: Optional[PersistentMemoryRegion] = None,
        costs: CpuCosts = DEFAULT_COSTS,
        steering: str = "pin",
    ):
        if not ssds:
            raise ValueError("a target server needs at least one SSD")
        self.env = env
        self.name = name
        self.cpus = cpus
        self.nic = nic
        self.ssds = ssds
        self.pmr = pmr if pmr is not None else PersistentMemoryRegion(env)
        self.costs = costs
        # IRQ/completion steering (scale-out plane): receive IRQs land on
        # the lower half of the cores, SSD-completion vectors on the upper
        # half — separate subsets, so a flooded receive path cannot starve
        # completions.  ``pin`` with flow key = global endpoint index
        # reproduces the historical static assignment
        # (``pick(i % half)`` / ``pick(half + i % half)``) bit-exactly.
        half = max(1, len(cpus) // 2)
        irq_cores = cpus.cores[:half]
        completion_cores = cpus.cores[half:2 * half] or irq_cores
        self.steering_policy = steering
        self.irq_steering = CoreSteering(irq_cores, steering)
        self.completion_steering = CoreSteering(completion_cores, steering)
        self.policy: TargetPolicy = TargetPolicy()
        #: Optional admission controller (overload plane); installed via
        #: :meth:`install_admission`.  None = admit everything (stock
        #: behaviour, zero extra work).
        self.admission = None
        #: Optional tenant -> class-name resolver (multi-tenant plane);
        #: installed via :meth:`install_tenant_steering`.  None = steer
        #: by flow key alone (stock behaviour).
        self.tenant_classifier = None
        self.crashed = False
        self.endpoints: List[QpEndpoint] = []
        self.commands_received = 0
        self.commands_shed = 0
        self.duplicates_suppressed = 0
        #: Power-cycle count: the epoch column of the audit log (replays
        #: after a restart legitimately reuse per-server positions).
        self.restarts = 0
        #: Audit of every *ordered* write actually applied to an SSD:
        #: (stream_id, server_pos, restart_epoch, virtual time).  The chaos
        #: harness asserts no (stream, pos) is applied twice per epoch and
        #: that per-stream positions are submitted in order.
        self.audit_log: List[Tuple[int, int, int, float]] = []
        self._stall_until = 0.0
        self._stall_done = None
        self._last_irq: Dict[int, float] = {}

    def install_policy(self, policy: TargetPolicy) -> None:
        self.policy = policy
        policy.attach(self)

    def install_admission(self, config=None) -> None:
        """Arm admission control (overload plane).  ``config`` is an
        :class:`~repro.robust.admission.AdmissionConfig`, an
        :class:`~repro.robust.admission.AdmissionController`, or None for
        the defaults."""
        from repro.robust.admission import AdmissionController

        if isinstance(config, AdmissionController):
            self.admission = config
        else:
            self.admission = AdmissionController(config)
        obs = self.env.obs
        if obs is not None:
            obs.metrics.register_gauge(
                f"target.{self.name}.commands_shed", lambda: self.commands_shed
            )

    def install_tenant_steering(self, classifier, shares) -> None:
        """Confine tenant classes to core sub-pools (multi-tenant plane).

        ``classifier`` maps a tenant id to a class name;  ``shares`` maps
        class names to fractional ``(lo, hi)`` slices of each steering
        pool, e.g. ``{"gold": (0.0, 0.5), "bronze": (0.5, 1.0)}`` keeps a
        bronze interrupt storm off the lower half of both the IRQ and the
        completion cores.  Classes not in ``shares`` keep the full pool.
        """
        self.tenant_classifier = classifier
        for steering in (self.irq_steering, self.completion_steering):
            n = len(steering.cores)
            for class_name, (lo, hi) in shares.items():
                if not 0.0 <= lo < hi <= 1.0:
                    raise ValueError(
                        f"share for {class_name!r} must satisfy 0 <= lo < hi <= 1"
                    )
                start = int(lo * n)
                stop = max(start + 1, int(hi * n))
                steering.assign_class(
                    class_name,
                    [c.index for c in steering.cores[start:stop]],
                )

    def _tenant_class_of(self, message: Message):
        if self.tenant_classifier is None or message.kind != "nvme_cmd":
            return None
        request = getattr(message.payload, "context", None)
        tenant = getattr(request, "tenant", None) if request is not None else None
        if tenant is None:
            return None
        return self.tenant_classifier(tenant)

    def attach_connection(self, endpoints: List[QpEndpoint]) -> None:
        """Register receive handling for target-side QP endpoints.

        The flow key of each endpoint is its *global* index across every
        attached connection, so two initiators fanning into one target
        land on staggered cores rather than re-colliding on core 0.
        """
        base = len(self.endpoints)
        for offset, endpoint in enumerate(endpoints):
            endpoint.set_receive_handler(
                self._make_handler(endpoint, base + offset)
            )
            self.endpoints.append(endpoint)

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Power failure of the whole server (§6.5's injected error)."""
        self.crashed = True
        for ssd in self.ssds:
            ssd.crash()
        for endpoint in self.endpoints:
            endpoint.crash()
        self.pmr.crash()

    def restart(self) -> None:
        if not self.crashed:
            raise RuntimeError(f"{self.name} is not crashed")
        self.crashed = False
        self.restarts += 1
        for ssd in self.ssds:
            ssd.restart()
        for endpoint in self.endpoints:
            endpoint.restart()
        self.policy.on_restart()
        if self.admission is not None:
            # Per-server positions are legitimately replayed in the new
            # restart epoch — stale suffix markers must not shed them.
            self.admission.reset_markers()

    # ------------------------------------------------------------------
    # Gray failure: fail-slow service degradation
    # ------------------------------------------------------------------

    def degrade(self, factor: float) -> None:
        """Inflate this server's service times by ``factor`` (a gray
        failure: everything still completes, just slower — a dying disk,
        thermal throttling, a misbehaving NIC firmware)."""
        if factor < 1.0:
            raise ValueError("degrade factor must be >= 1")
        self.env.trace("fault", "degrade", target=self.name, factor=factor)
        for ssd in self.ssds:
            ssd.service_inflation = factor
        self.nic.inflation = factor

    def restore(self) -> None:
        """End a :meth:`degrade` episode."""
        self.env.trace("fault", "degrade_end", target=self.name)
        for ssd in self.ssds:
            ssd.service_inflation = 1.0
        self.nic.inflation = 1.0

    # ------------------------------------------------------------------
    # Transient faults: stall + duplicate audit
    # ------------------------------------------------------------------

    def stall(self, duration: float) -> None:
        """Freeze message processing for ``duration`` seconds.

        Models a wedged target (GC pause, dying disk, livelocked IRQ core):
        newly arriving messages queue up behind a gate and are processed in
        arrival order once the stall ends.  Commands already past the gate
        keep executing.  Overlapping stalls extend each other.
        """
        until = self.env.now + duration
        self.env.trace("fault", "target_stall", target=self.name,
                       duration=duration, until=until)
        self._stall_until = max(self._stall_until, until)
        if self._stall_done is None or self._stall_done.triggered:
            self._stall_done = Event(self.env)
            self.env.process(self._stall_timer())

    def _stall_timer(self):
        while self.env.now < self._stall_until:
            yield self.env.timeout(self._stall_until - self.env.now)
        done, self._stall_done = self._stall_done, None
        self.env.trace("fault", "target_stall_end", target=self.name)
        done.succeed()

    def duplicate_applies(self) -> List[Tuple[int, int, int]]:
        """(stream, pos, epoch) keys applied to an SSD more than once."""
        seen = set()
        dups = []
        for stream_id, pos, epoch, _when in self.audit_log:
            key = (stream_id, pos, epoch)
            if key in seen:
                dups.append(key)
            seen.add(key)
        return dups

    def submission_order_violations(self) -> List[Tuple[int, int, int]]:
        """Audit entries whose per-stream position went backwards or
        repeated within one restart epoch (in-order submission broken)."""
        highest: Dict[Tuple[int, int], int] = {}
        violations = []
        for stream_id, pos, epoch, _when in self.audit_log:
            key = (stream_id, epoch)
            last = highest.get(key, -1)
            if pos <= last:
                violations.append((stream_id, pos, epoch))
            highest[key] = max(last, pos)
        return violations

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def _make_handler(self, endpoint: QpEndpoint, flow: int):
        def handler(message: Message):
            yield from self._handle_message(endpoint, flow, message)

        return handler

    def _handle_message(
        self,
        endpoint: QpEndpoint,
        flow: int,
        message: Message,
    ):
        if self.crashed:
            return
        # Steer per message: static policies (pin, flow-hash) resolve to
        # the same core every time, dynamic ones (round-robin,
        # least-loaded) re-decide at interrupt time.
        tenant_class = self._tenant_class_of(message)
        core = self.irq_steering.select(flow, tenant_class)
        completion_core = self.completion_steering.select(flow, tenant_class)
        if self._stall_done is not None and not self._stall_done.triggered:
            yield self._stall_done  # wedged target: park until it recovers
            if self.crashed:
                return
        ctx = TargetContext(self, endpoint, core, completion_core)
        yield from core.run(self._irq_cost(core))
        obs = self.env.obs
        if obs is not None and message.kind == "nvme_cmd":
            cmd = message.payload
            req = cmd.context
            parent = None
            if req is not None and getattr(req, "obs", None):
                parent = req.obs.get("fabric")
            ctx.obs_span = obs.spans.open(
                "target.admit", parent=parent, host=self.name,
                cid=cmd.cid, qp=endpoint.qp.index,
            )
        try:
            if message.kind == "nvme_cmd":
                yield from self._handle_command(ctx, message.payload)
            else:
                yield from core.run(self.costs.recv_process)
                yield from self.policy.on_control(ctx, message)
        except CrashedError:
            # The server lost power while this command was in flight: on
            # real hardware nothing more happens — no response is sent.
            return
        finally:
            if ctx.obs_span is not None and obs is not None:
                extra = {}
                if ctx.duplicate:
                    extra["duplicate"] = 1
                if self.crashed:
                    extra["crashed"] = 1
                obs.spans.close(ctx.obs_span, **extra)

    def _irq_cost(self, core: Core) -> float:
        """Interrupt entry cost, amortized under coalescing (Lesson 3)."""
        now = self.env.now
        last = self._last_irq.get(core.index, -1.0)
        self._last_irq[core.index] = now
        if last >= 0 and now - last < self.costs.irq_coalesce_window:
            return 0.0
        return self.costs.irq_entry

    def _device_pressure(self, cmd: NvmeCommand) -> float:
        """Write-cache pressure of the command's destination device.

        Cache-stall backpressure: when the destination SSD's volatile
        write cache is nearly full, an incoming write admitted anyway
        would park in the target holding an SSD slot while the cache
        drains (GC-inflated, at QD 256 for the whole stall).  With
        admission armed and a ``cache_pressure_limit`` configured, the
        controller sheds it at the door instead — one receive plus one
        QFULL response — and the driver's backoff becomes the flow
        control.  Reads and flushes never shed on cache pressure.
        """
        if cmd.opcode != OP_WRITE:
            return 0.0
        return self.ssds[cmd.nsid].cache_pressure

    def _handle_command(self, ctx: TargetContext, cmd: NvmeCommand):
        core = ctx.core
        self.commands_received += 1
        yield from core.run(self.costs.recv_process)
        if self.admission is None:
            yield from self._execute_command(ctx, cmd)
            return
        # Admission decision *before* the policy hooks, the barrier-ticket
        # reservation and the data fetch: a shed command costs one receive
        # and one response, never an RDMA READ or an SSD slot.
        token, reason = self.admission.admit(
            cmd, self.env.now, pressure=self._device_pressure(cmd)
        )
        if token is None:
            self.commands_shed += 1
            self.env.trace(
                "target", "shed", target=self.name, cid=cmd.cid,
                opcode=cmd.opcode, cause=reason,
            )
            yield from ctx.completion_core.run(self.costs.response_post)
            ctx.endpoint.post_send(
                Message(
                    kind="nvme_resp",
                    payload=(NvmeResponse(cid=cmd.cid, status=STATUS_QFULL), None),
                    nbytes=NvmeResponse.WIRE_SIZE,
                )
            )
            return
        try:
            yield from self._execute_command(ctx, cmd)
        finally:
            # Runs on the normal exit *and* while unwinding a CrashedError:
            # every admitted command is completed exactly once.
            self.admission.complete(token, self.env.now)

    def _execute_command(self, ctx: TargetContext, cmd: NvmeCommand):
        core, endpoint = ctx.core, ctx.endpoint
        yield from self.policy.on_receive(ctx, cmd)
        if self.crashed:
            return

        barrier_ticket = None
        if cmd.opcode == OP_WRITE:
            if cmd.barrier:
                # Reserve the device's barrier-order slot *now*, while
                # command handling is still serialized in QP delivery
                # order: the data fetch below takes size-dependent time,
                # so concurrently handled commands reach ssd.submit() in
                # scrambled order.
                barrier_ticket = self.ssds[cmd.nsid].reserve_barrier_ticket()
            if endpoint.qp.transport == "tcp":
                # NVMe/TCP: the data arrived inline; pay the socket stack
                # and the copy out of the receive buffers.
                yield from core.run(
                    self.costs.tcp_stack_per_message
                    + self.costs.tcp_copy_per_block * cmd.nblocks
                )
            else:
                # Fetch data blocks by one-sided RDMA READ (no target CPU
                # beyond posting the work request).
                yield from core.run(self.costs.rdma_read_post)
                yield from endpoint.rdma_read(cmd.nbytes)
            if self.crashed:
                return

        yield from self.policy.before_submit(ctx, cmd)
        if self.crashed:
            return
        if ctx.duplicate:
            # A retransmission of an already-admitted ordered write: never
            # re-applied (idempotent retry).  Acknowledge immediately — the
            # original execution owns persistence and ordering.
            self.duplicates_suppressed += 1
            if barrier_ticket is not None:
                self.ssds[cmd.nsid].release_barrier_ticket(barrier_ticket)
            yield from ctx.completion_core.run(self.costs.response_post)
            endpoint.post_send(
                Message(
                    kind="nvme_resp",
                    payload=(NvmeResponse(cid=cmd.cid), None),
                    nbytes=NvmeResponse.WIRE_SIZE,
                )
            )
            return

        ssd = self.ssds[cmd.nsid]
        attr = getattr(cmd.context, "attr", None) if cmd.context is not None else None
        if attr is not None and cmd.opcode == OP_WRITE:
            self.audit_log.append(
                (attr.stream_id, attr.server_pos, self.restarts, self.env.now)
            )
        yield from core.run(self.costs.nvme_submit)
        if cmd.opcode == OP_FLUSH:
            io = DiskIO(op="flush")
        elif cmd.opcode == OP_WRITE:
            io = DiskIO(
                op="write",
                lba=cmd.slba,
                nblocks=cmd.nblocks,
                payload=cmd.payload,
                fua=cmd.fua,
                barrier=cmd.barrier,
            )
            if barrier_ticket is not None:
                io._barrier_ticket = barrier_ticket  # type: ignore[attr-defined]
        else:
            io = DiskIO(op="read", lba=cmd.slba, nblocks=cmd.nblocks)
        io.obs_parent = ctx.obs_span
        yield ssd.submit(io)
        yield from ctx.completion_core.run(self.costs.nvme_completion)

        if cmd.flush_after:
            yield ssd.submit(DiskIO(op="flush", obs_parent=ctx.obs_span))
            yield from ctx.completion_core.run(self.costs.nvme_completion)
        if self.crashed:
            return

        yield from self.policy.after_completion(ctx, cmd)
        if self.crashed:
            return

        response_nbytes = NvmeResponse.WIRE_SIZE
        if cmd.opcode == OP_READ:
            if endpoint.qp.transport == "tcp":
                # Read data rides inline in the response PDU.
                yield from ctx.completion_core.run(
                    self.costs.tcp_stack_per_message
                    + self.costs.tcp_copy_per_block * cmd.nblocks
                )
                response_nbytes += cmd.nbytes
            else:
                # Ship the data back with a one-sided RDMA WRITE.
                yield from endpoint.rdma_write(cmd.nbytes)
            response_payload: Any = (NvmeResponse(cid=cmd.cid), io.payload)
        else:
            response_payload = (NvmeResponse(cid=cmd.cid), None)
        yield from ctx.completion_core.run(self.costs.response_post)
        endpoint.post_send(
            Message(
                kind="nvme_resp",
                payload=response_payload,
                nbytes=response_nbytes,
            )
        )

    def __repr__(self) -> str:
        return f"<TargetServer {self.name} ssds={len(self.ssds)}>"
