"""NVMe-oF initiator: server, driver, remote namespaces.

The initiator driver turns block requests into NVMe-oF commands, posts them
as two-sided SENDs on the queue pair the block layer selected (Rio's
Principle 2 keys on this), and completes them when the response SEND comes
back through the completion interrupt handler.

Data for writes never passes through this driver: the *target* pulls it
with a one-sided RDMA READ, so only the 64-byte command costs initiator
CPU — which is exactly why merging k requests into one command divides the
per-byte CPU cost by k (Lesson 3, Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Dict, List, Optional

from repro.block.request import BlockRequest
from repro.hw.cpu import Core, CpuSet
from repro.hw.nic import Nic
from repro.net.fabric import Message, QpEndpoint, QueuePair
from repro.nvmeof.command import (
    OP_FLUSH,
    OP_READ,
    OP_WRITE,
    STATUS_TIMEOUT,
    NvmeCommand,
    NvmeResponse,
    RioFields,
)
from repro.nvmeof.costs import DEFAULT_COSTS, CpuCosts
from repro.sim.engine import Environment, Event

__all__ = [
    "InitiatorServer",
    "RemoteNamespace",
    "InitiatorDriver",
    "DriverHardening",
    "RpcTimeout",
    "RECONNECT_DELAY",
]

#: Latency of tearing down and re-arming a broken queue pair (modem-level
#: RC reconnect: destroy QP, re-exchange, transition to RTS).
RECONNECT_DELAY = 20e-6


class RpcTimeout(Exception):
    """A control-plane RPC exhausted its retry budget without a reply."""


@dataclass
class DriverHardening:
    """Transient-fault hardening knobs for :class:`InitiatorDriver`.

    Everything defaults to *off* so that a stock driver schedules no extra
    events and behaves bit-identically to the unhardened one — the fault
    plane must be zero-cost when inactive.

    ``command_timeout``/``rpc_timeout``
        Per-attempt expiry in virtual seconds (None disables the watchdog).
    ``max_retries``
        Retransmissions allowed after the first attempt; when exhausted the
        command error-completes with ``STATUS_TIMEOUT`` (an RPC waiter
        fails with :class:`RpcTimeout`).
    ``backoff``
        Multiplier applied to the expiry after every retry (exponential
        backoff; deterministic — no jitter, the simulation is seeded).
    ``watch_liveness``
        Register every pending completion with
        :meth:`repro.sim.engine.Environment.watch_liveness`, so an orphaned
        waiter raises a diagnosable ``SimDeadlock`` instead of hanging.
    """

    command_timeout: Optional[float] = None
    rpc_timeout: Optional[float] = None
    max_retries: int = 0
    backoff: float = 2.0
    watch_liveness: bool = False


@dataclass
class _PendingCommand:
    """Driver-side state of one in-flight NVMe-oF command."""

    done: Event
    cmd: NvmeCommand
    ns: "RemoteNamespace"
    request: Optional[BlockRequest]
    endpoint: QpEndpoint
    nbytes: int
    attempts: int = 0
    liveness_token: Optional[int] = None
    #: ``fabric.transfer`` span (observability attached only).
    span: Any = None


@dataclass
class _PendingRpc:
    """Driver-side state of one in-flight control-plane RPC."""

    waiter: Event
    rpc_id: int
    kind: str
    payload: Any
    nbytes: int
    endpoint: QpEndpoint
    attempts: int = 0
    liveness_token: Optional[int] = None


class InitiatorServer:
    """The host running applications, the file system and the block layer."""

    def __init__(self, env: Environment, name: str, cpus: CpuSet, nic: Nic):
        self.env = env
        self.name = name
        self.cpus = cpus
        self.nic = nic

    def __repr__(self) -> str:
        return f"<InitiatorServer {self.name} cores={len(self.cpus)}>"


class RemoteNamespace:
    """One remote SSD as seen from the initiator.

    Bundles the target server, the namespace id on that target, and the
    initiator-side queue-pair endpoints of the connection to that target.

    ``qp_steering`` selects how block-layer queue indices map onto queue
    pairs: ``"pin"`` (default) is the historical modulo mapping, and
    ``"flow-hash"`` scatters flows RSS-style while keeping each flow on
    one QP.  Both are *stable per flow key* — which is what ordered
    streams need, since per-QP FIFO delivery is Rio's Principle 2.
    (``"round-robin"``/``"least-loaded"`` are rejected here: migrating a
    stream between QPs mid-flight forfeits FIFO delivery, so they are
    only meaningful for target-side interrupt steering.)
    """

    def __init__(
        self,
        target,
        nsid: int,
        endpoints: List[QpEndpoint],
        qp_steering: str = "pin",
    ):
        if not endpoints:
            raise ValueError("a namespace needs at least one queue pair")
        if qp_steering not in ("pin", "flow-hash"):
            raise ValueError(
                f"qp_steering must be 'pin' or 'flow-hash', "
                f"not {qp_steering!r} (ordered streams need a stable "
                f"per-flow queue pair)"
            )
        self.target = target
        self.nsid = nsid
        self.endpoints = endpoints
        self.qp_steering = qp_steering

    @property
    def num_queues(self) -> int:
        return len(self.endpoints)

    def endpoint_for(self, qp_index: int) -> QpEndpoint:
        if self.qp_steering == "flow-hash":
            from repro.hw.cpu import _flow_hash

            return self.endpoints[_flow_hash(qp_index) % len(self.endpoints)]
        return self.endpoints[qp_index % len(self.endpoints)]

    def __repr__(self) -> str:
        return f"<RemoteNamespace {self.target.name}/ns{self.nsid}>"


class InitiatorDriver:
    """Builds commands, posts SENDs, dispatches completion interrupts."""

    def __init__(
        self,
        env: Environment,
        server: InitiatorServer,
        costs: CpuCosts = DEFAULT_COSTS,
        hardening: Optional[DriverHardening] = None,
        steering: str = "pin",
    ):
        self.env = env
        self.server = server
        self.costs = costs
        self.hardening = hardening if hardening is not None else DriverHardening()
        #: Completion-IRQ steering over the host's cores.  ``pin`` with
        #: flow key = per-connection endpoint index reproduces the
        #: historical ``cpus.pick(index)`` assignment bit-exactly.
        self.irq_steering = server.cpus.steering(steering)
        self._cids = count(1)
        self._rpc_ids = count(1)
        self._pending: Dict[int, _PendingCommand] = {}
        self._pending_rpcs: Dict[int, _PendingRpc] = {}
        self.commands_sent = 0
        self.retries = 0
        self.rpc_retries = 0
        self.commands_timed_out = 0
        self.rpcs_timed_out = 0
        self.reconnects = 0
        self.commands_resubmitted = 0
        self._registered_endpoints: set = set()
        self._last_irq: Dict[int, float] = {}
        obs = env.obs
        if obs is not None:
            m = obs.metrics
            m.register_gauge("driver.pending_commands", self.pending_count)
            m.register_gauge("driver.pending_rpcs", self.pending_rpc_count)
            m.register_gauge("driver.commands_sent", lambda: self.commands_sent)
            m.register_gauge("driver.retries", lambda: self.retries)
            m.register_gauge("driver.commands_timed_out",
                             lambda: self.commands_timed_out)
            m.register_gauge("driver.reconnects", lambda: self.reconnects)
            m.register_gauge("driver.commands_resubmitted",
                             lambda: self.commands_resubmitted)

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------

    def register_connection(self, endpoints: List[QpEndpoint]) -> None:
        """Install response handling on initiator-side endpoints."""
        for index, endpoint in enumerate(endpoints):
            if id(endpoint) in self._registered_endpoints:
                continue
            self._registered_endpoints.add(id(endpoint))
            endpoint.set_receive_handler(self._make_handler(index))
            endpoint.qp.on_breakdown(self._on_qp_breakdown)

    def _make_handler(self, flow: int):
        def handler(message: Message):
            irq_core = self.irq_steering.select(flow)
            yield from self._handle_response(irq_core, message)

        return handler

    def _irq_cost(self, core: Core) -> float:
        """Completion-interrupt entry cost, amortized under coalescing."""
        now = self.env.now
        last = self._last_irq.get(core.index, -1.0)
        self._last_irq[core.index] = now
        if last >= 0 and now - last < self.costs.irq_coalesce_window:
            return 0.0
        return self.costs.irq_entry

    def _handle_response(self, core: Core, message: Message):
        yield from core.run(self._irq_cost(core))
        if message.kind == "nvme_resp":
            response, read_payload = message.payload
            entry = self._pending.pop(response.cid, None)
            if entry is None:
                return  # duplicate/stale response (retry, replay)
            self._unwatch(entry)
            done, cmd = entry.done, entry.cmd
            obs = self.env.obs
            cspan = None
            if obs is not None and entry.span is not None:
                cspan = obs.spans.open(
                    "completion", parent=entry.span, host="initiator",
                    cid=cmd.cid, core=core.index,
                )
            yield from core.run(self.costs.completion_interrupt)
            if read_payload is not None:
                cmd.payload = read_payload
            if response.status and entry.request is not None:
                entry.request.status = response.status
            if obs is not None and entry.span is not None:
                obs.spans.close(cspan, status=response.status)
                obs.spans.close(entry.span, status=response.status,
                                attempts=entry.attempts)
            if not done.triggered:
                done.succeed(cmd)
        elif message.kind == "rpc_resp":
            rpc_id, payload = message.payload
            entry = self._pending_rpcs.pop(rpc_id, None)
            yield from core.run(self.costs.completion_interrupt)
            if entry is not None:
                self._unwatch(entry)
                if not entry.waiter.triggered:
                    entry.waiter.succeed(payload)

    def _unwatch(self, entry) -> None:
        if entry.liveness_token is not None:
            self.env.unwatch_liveness(entry.liveness_token)
            entry.liveness_token = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, core: Core, ns: RemoteNamespace, request: BlockRequest):
        """Generator: turn ``request`` into a command and post it.

        Charges the per-command CPU cost on ``core`` and returns the
        completion :class:`Event` (value: the command).  Callers wait with
        ``done = yield from driver.submit(...)`` then ``yield done``.
        """
        obs = self.env.obs
        fspan = None
        if obs is not None:
            fspan = obs.spans.open(
                "fabric.transfer",
                parent=request.bios[0].obs_span if request.bios else None,
                host="initiator", op=request.op, target=ns.target.name,
                stream=request.stream_id,
                bios=tuple(b.bio_id for b in request.bios),
            )
            if request.obs is None:
                request.obs = {}
            request.obs["fabric"] = fspan
        yield from core.run(self.costs.command_build_and_post)
        cmd = self.command_from_request(request, ns)
        done = Event(self.env)
        endpoint = ns.endpoint_for(request.qp_index)
        if fspan is not None:
            fspan.attrs["cid"] = cmd.cid
            fspan.attrs["qp"] = endpoint.qp.index
        nbytes = NvmeCommand.WIRE_SIZE
        if endpoint.qp.transport == "tcp":
            # NVMe/TCP: data travels inline through the socket — the host
            # pays stack + copy CPU, and the wire carries the data here
            # (there is no later one-sided READ).
            data_blocks = cmd.nblocks if cmd.opcode == OP_WRITE else 0
            yield from core.run(
                self.costs.tcp_stack_per_message
                + self.costs.tcp_copy_per_block * data_blocks
            )
            nbytes += cmd.nbytes if cmd.opcode == OP_WRITE else 0
        entry = _PendingCommand(
            done=done, cmd=cmd, ns=ns, request=request,
            endpoint=endpoint, nbytes=nbytes, span=fspan,
        )
        self._pending[cmd.cid] = entry
        self.commands_sent += 1
        endpoint.post_send(Message(kind="nvme_cmd", payload=cmd, nbytes=nbytes))
        cfg = self.hardening
        if cfg.watch_liveness:
            entry.liveness_token = self.env.watch_liveness(
                done,
                f"nvme cid={cmd.cid} op={cmd.opcode} "
                f"target={ns.target.name} qp={endpoint.qp.index}",
            )
        if cfg.command_timeout is not None:
            self.env.process(self._command_watchdog(entry))
        return done

    def command_from_request(
        self, request: BlockRequest, ns: RemoteNamespace
    ) -> NvmeCommand:
        """Map a block request onto one NVMe-oF command (Table 1 fields)."""
        opcode = {"write": OP_WRITE, "read": OP_READ, "flush": OP_FLUSH}[request.op]
        rio: Optional[RioFields] = None
        if request.attr is not None:
            rio = request.attr.to_rio_fields()
        return NvmeCommand(
            opcode=opcode,
            cid=next(self._cids),
            nsid=ns.nsid,
            slba=request.lba,
            nblocks=request.nblocks,
            fua=request.fua,
            flush_after=request.flush and request.op == "write",
            barrier=request.barrier,
            rio=rio,
            payload=request.payload,
            context=request,
        )

    # ------------------------------------------------------------------
    # Control-plane RPC (Horae control path, recovery)
    # ------------------------------------------------------------------

    def rpc(
        self,
        core: Core,
        endpoint: QpEndpoint,
        kind: str,
        payload: Any,
        nbytes: int = 32,
    ):
        """Generator: two-sided control round trip; returns the reply event.

        Used for Horae's ordering-metadata SENDs and for recovery RPCs.
        The target policy answers via an ``rpc_resp`` message carrying the
        same rpc id.
        """
        yield from core.run(self.costs.command_build_and_post)
        rpc_id = next(self._rpc_ids)
        waiter = Event(self.env)
        entry = _PendingRpc(
            waiter=waiter, rpc_id=rpc_id, kind=kind, payload=payload,
            nbytes=nbytes, endpoint=endpoint,
        )
        self._pending_rpcs[rpc_id] = entry
        endpoint.post_send(
            Message(kind=kind, payload=(rpc_id, payload), nbytes=nbytes)
        )
        cfg = self.hardening
        if cfg.watch_liveness:
            entry.liveness_token = self.env.watch_liveness(
                waiter, f"rpc {kind} id={rpc_id} qp={endpoint.qp.index}"
            )
        if cfg.rpc_timeout is not None:
            self.env.process(self._rpc_watchdog(entry))
        return waiter

    # ------------------------------------------------------------------
    # Transient-fault hardening: expiry, retries, reconnect
    # ------------------------------------------------------------------

    def _command_watchdog(self, entry: _PendingCommand):
        """Per-command expiry: retry with exponential backoff, then
        error-complete (``STATUS_TIMEOUT``) when the budget runs out.

        A retry re-posts the *same* command (same CID, same ordering
        attribute): the target's duplicate suppression makes re-execution
        of ordered writes idempotent, and the driver drops whichever
        response arrives second.
        """
        cfg = self.hardening
        delay = cfg.command_timeout
        while True:
            expiry = self.env.timeout(delay)
            yield self.env.any_of([entry.done, expiry])
            if entry.done.triggered:
                expiry.cancel()  # disarm: don't leak a live heap entry
                return
            if entry.cmd.cid not in self._pending:
                return  # completed/aborted concurrently
            if entry.attempts >= cfg.max_retries:
                self._pending.pop(entry.cmd.cid, None)
                self._unwatch(entry)
                self.commands_timed_out += 1
                if entry.request is not None:
                    entry.request.status = STATUS_TIMEOUT
                if entry.span is not None:
                    obs = self.env.obs
                    if obs is not None:
                        obs.spans.close(entry.span, status=STATUS_TIMEOUT,
                                        aborted=1, attempts=entry.attempts)
                self.env.trace(
                    "driver", "command_abort", cid=entry.cmd.cid,
                    attempts=entry.attempts, cause="retry budget exhausted",
                )
                if not entry.done.triggered:
                    entry.done.succeed(entry.cmd)
                return
            entry.attempts += 1
            self.retries += 1
            delay *= cfg.backoff
            self.env.trace(
                "driver", "retry", cid=entry.cmd.cid, attempt=entry.attempts,
                next_timeout=delay, cause="command expiry",
            )
            self._repost_command(entry)

    def _rpc_watchdog(self, entry: _PendingRpc):
        cfg = self.hardening
        delay = cfg.rpc_timeout
        while True:
            expiry = self.env.timeout(delay)
            yield self.env.any_of([entry.waiter, expiry])
            if entry.waiter.triggered:
                expiry.cancel()  # disarm: don't leak a live heap entry
                return
            if entry.rpc_id not in self._pending_rpcs:
                return
            if entry.attempts >= cfg.max_retries:
                self._pending_rpcs.pop(entry.rpc_id, None)
                self._unwatch(entry)
                self.rpcs_timed_out += 1
                self.env.trace(
                    "driver", "rpc_abort", rpc_id=entry.rpc_id,
                    kind=entry.kind, attempts=entry.attempts,
                    cause="retry budget exhausted",
                )
                if not entry.waiter.triggered:
                    entry.waiter.fail(RpcTimeout(
                        f"rpc {entry.kind!r} id={entry.rpc_id} got no reply "
                        f"after {entry.attempts + 1} attempts"
                    ))
                return
            entry.attempts += 1
            self.rpc_retries += 1
            delay *= cfg.backoff
            self.env.trace(
                "driver", "rpc_retry", rpc_id=entry.rpc_id, kind=entry.kind,
                attempt=entry.attempts, next_timeout=delay,
                cause="rpc expiry",
            )
            self._repost_rpc(entry)

    def _repost_command(self, entry: _PendingCommand) -> None:
        """Retransmit without CPU charge (timer/IRQ context)."""
        request = entry.request
        if request is not None and request.qp_index is not None:
            entry.endpoint = entry.ns.endpoint_for(request.qp_index)
        entry.endpoint.post_send(
            Message(kind="nvme_cmd", payload=entry.cmd, nbytes=entry.nbytes)
        )

    def _repost_rpc(self, entry: _PendingRpc) -> None:
        entry.endpoint.post_send(
            Message(
                kind=entry.kind,
                payload=(entry.rpc_id, entry.payload),
                nbytes=entry.nbytes,
            )
        )

    def _on_qp_breakdown(self, qp: QueuePair) -> None:
        self.env.process(self._reconnect_and_resubmit(qp))

    def _reconnect_and_resubmit(self, qp: QueuePair):
        """Epoch-bumping reconnect after a QP breakdown.

        The breakdown already bumped both endpoints' epochs (discarding
        everything in flight).  After the reconnect delay, every pending
        command that was traveling on the broken QP is resubmitted in
        original submission order (CIDs are monotonic), so the per-QP FIFO
        delivery the ordering design leans on (Principle 2) is restored.
        """
        self.reconnects += 1
        yield self.env.timeout(RECONNECT_DELAY)
        self.env.trace("driver", "reconnect", qp=qp.index,
                       cause="qp breakdown")
        commands = sorted(
            (e for e in self._pending.values() if e.endpoint.qp is qp),
            key=lambda e: e.cmd.cid,
        )
        for entry in commands:
            self.commands_resubmitted += 1
            self.env.trace("driver", "resubmit", cid=entry.cmd.cid,
                           qp=qp.index, cause="qp breakdown")
            self._repost_command(entry)
        rpcs = sorted(
            (e for e in self._pending_rpcs.values() if e.endpoint.qp is qp),
            key=lambda e: e.rpc_id,
        )
        for entry in rpcs:
            self.env.trace("driver", "resubmit_rpc", rpc_id=entry.rpc_id,
                           kind=entry.kind, qp=qp.index,
                           cause="qp breakdown")
            self._repost_rpc(entry)

    # ------------------------------------------------------------------
    # Bookkeeping / leak checks
    # ------------------------------------------------------------------

    def pending_count(self) -> int:
        return len(self._pending)

    def pending_rpc_count(self) -> int:
        return len(self._pending_rpcs)

    def assert_no_leaks(self) -> None:
        """Raise if any pending-table entry leaked (used by tests after a
        workload has fully quiesced)."""
        if self._pending or self._pending_rpcs:
            cids = sorted(self._pending)[:8]
            rpcs = sorted(self._pending_rpcs)[:8]
            raise AssertionError(
                f"driver leaked {len(self._pending)} pending command(s) "
                f"(cids {cids}) and {len(self._pending_rpcs)} pending "
                f"rpc(s) (ids {rpcs})"
            )
