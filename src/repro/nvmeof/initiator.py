"""NVMe-oF initiator: server, driver, remote namespaces.

The initiator driver turns block requests into NVMe-oF commands, posts them
as two-sided SENDs on the queue pair the block layer selected (Rio's
Principle 2 keys on this), and completes them when the response SEND comes
back through the completion interrupt handler.

Data for writes never passes through this driver: the *target* pulls it
with a one-sided RDMA READ, so only the 64-byte command costs initiator
CPU — which is exactly why merging k requests into one command divides the
per-byte CPU cost by k (Lesson 3, Figure 3).
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, List, Optional, Tuple

from repro.block.request import BlockRequest
from repro.hw.cpu import Core, CpuSet
from repro.hw.nic import Nic
from repro.net.fabric import Message, QpEndpoint
from repro.nvmeof.command import (
    OP_FLUSH,
    OP_READ,
    OP_WRITE,
    NvmeCommand,
    NvmeResponse,
    RioFields,
)
from repro.nvmeof.costs import DEFAULT_COSTS, CpuCosts
from repro.sim.engine import Environment, Event

__all__ = ["InitiatorServer", "RemoteNamespace", "InitiatorDriver"]


class InitiatorServer:
    """The host running applications, the file system and the block layer."""

    def __init__(self, env: Environment, name: str, cpus: CpuSet, nic: Nic):
        self.env = env
        self.name = name
        self.cpus = cpus
        self.nic = nic

    def __repr__(self) -> str:
        return f"<InitiatorServer {self.name} cores={len(self.cpus)}>"


class RemoteNamespace:
    """One remote SSD as seen from the initiator.

    Bundles the target server, the namespace id on that target, and the
    initiator-side queue-pair endpoints of the connection to that target.
    """

    def __init__(self, target, nsid: int, endpoints: List[QpEndpoint]):
        if not endpoints:
            raise ValueError("a namespace needs at least one queue pair")
        self.target = target
        self.nsid = nsid
        self.endpoints = endpoints

    @property
    def num_queues(self) -> int:
        return len(self.endpoints)

    def endpoint_for(self, qp_index: int) -> QpEndpoint:
        return self.endpoints[qp_index % len(self.endpoints)]

    def __repr__(self) -> str:
        return f"<RemoteNamespace {self.target.name}/ns{self.nsid}>"


class InitiatorDriver:
    """Builds commands, posts SENDs, dispatches completion interrupts."""

    def __init__(
        self,
        env: Environment,
        server: InitiatorServer,
        costs: CpuCosts = DEFAULT_COSTS,
    ):
        self.env = env
        self.server = server
        self.costs = costs
        self._cids = count(1)
        self._rpc_ids = count(1)
        self._pending: Dict[int, Tuple[Event, NvmeCommand]] = {}
        self._pending_rpcs: Dict[int, Event] = {}
        self.commands_sent = 0
        self._registered_endpoints: set = set()
        self._last_irq: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------

    def register_connection(self, endpoints: List[QpEndpoint]) -> None:
        """Install response handling on initiator-side endpoints."""
        for index, endpoint in enumerate(endpoints):
            if id(endpoint) in self._registered_endpoints:
                continue
            self._registered_endpoints.add(id(endpoint))
            irq_core = self.server.cpus.pick(index)
            endpoint.set_receive_handler(self._make_handler(irq_core))

    def _make_handler(self, irq_core: Core):
        def handler(message: Message):
            yield from self._handle_response(irq_core, message)

        return handler

    def _irq_cost(self, core: Core) -> float:
        """Completion-interrupt entry cost, amortized under coalescing."""
        now = self.env.now
        last = self._last_irq.get(core.index, -1.0)
        self._last_irq[core.index] = now
        if last >= 0 and now - last < self.costs.irq_coalesce_window:
            return 0.0
        return self.costs.irq_entry

    def _handle_response(self, core: Core, message: Message):
        yield from core.run(self._irq_cost(core))
        if message.kind == "nvme_resp":
            response, read_payload = message.payload
            entry = self._pending.pop(response.cid, None)
            if entry is None:
                return  # duplicate/stale response (post-recovery replay)
            done, cmd = entry
            yield from core.run(self.costs.completion_interrupt)
            if read_payload is not None:
                cmd.payload = read_payload
            if not done.triggered:
                done.succeed(cmd)
        elif message.kind == "rpc_resp":
            rpc_id, payload = message.payload
            waiter = self._pending_rpcs.pop(rpc_id, None)
            yield from core.run(self.costs.completion_interrupt)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(payload)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, core: Core, ns: RemoteNamespace, request: BlockRequest):
        """Generator: turn ``request`` into a command and post it.

        Charges the per-command CPU cost on ``core`` and returns the
        completion :class:`Event` (value: the command).  Callers wait with
        ``done = yield from driver.submit(...)`` then ``yield done``.
        """
        yield from core.run(self.costs.command_build_and_post)
        cmd = self.command_from_request(request, ns)
        done = Event(self.env)
        self._pending[cmd.cid] = (done, cmd)
        self.commands_sent += 1
        endpoint = ns.endpoint_for(request.qp_index)
        nbytes = NvmeCommand.WIRE_SIZE
        if endpoint.qp.transport == "tcp":
            # NVMe/TCP: data travels inline through the socket — the host
            # pays stack + copy CPU, and the wire carries the data here
            # (there is no later one-sided READ).
            data_blocks = cmd.nblocks if cmd.opcode == OP_WRITE else 0
            yield from core.run(
                self.costs.tcp_stack_per_message
                + self.costs.tcp_copy_per_block * data_blocks
            )
            nbytes += cmd.nbytes if cmd.opcode == OP_WRITE else 0
        endpoint.post_send(Message(kind="nvme_cmd", payload=cmd, nbytes=nbytes))
        return done

    def command_from_request(
        self, request: BlockRequest, ns: RemoteNamespace
    ) -> NvmeCommand:
        """Map a block request onto one NVMe-oF command (Table 1 fields)."""
        opcode = {"write": OP_WRITE, "read": OP_READ, "flush": OP_FLUSH}[request.op]
        rio: Optional[RioFields] = None
        if request.attr is not None:
            rio = request.attr.to_rio_fields()
        return NvmeCommand(
            opcode=opcode,
            cid=next(self._cids),
            nsid=ns.nsid,
            slba=request.lba,
            nblocks=request.nblocks,
            fua=request.fua,
            flush_after=request.flush and request.op == "write",
            barrier=request.barrier,
            rio=rio,
            payload=request.payload,
            context=request,
        )

    # ------------------------------------------------------------------
    # Control-plane RPC (Horae control path, recovery)
    # ------------------------------------------------------------------

    def rpc(
        self,
        core: Core,
        endpoint: QpEndpoint,
        kind: str,
        payload: Any,
        nbytes: int = 32,
    ):
        """Generator: two-sided control round trip; returns the reply event.

        Used for Horae's ordering-metadata SENDs and for recovery RPCs.
        The target policy answers via an ``rpc_resp`` message carrying the
        same rpc id.
        """
        yield from core.run(self.costs.command_build_and_post)
        rpc_id = next(self._rpc_ids)
        waiter = Event(self.env)
        self._pending_rpcs[rpc_id] = waiter
        endpoint.post_send(
            Message(kind=kind, payload=(rpc_id, payload), nbytes=nbytes)
        )
        return waiter

    def pending_count(self) -> int:
        return len(self._pending)
